//! Moderate-scale stress tests: the whole pipeline at sizes well beyond
//! the unit-test fixtures (hundreds of disks, tens of thousands of
//! items). Structural assertions only — timings belong to the benches.

use dmig::prelude::*;
use dmig::workloads::{capacities, disk_ops, random};

#[test]
fn even_solver_at_scale() {
    // 200 disks, 12 000 items, even capacities: exactly Δ' rounds.
    let g = random::uniform_multigraph(200, 12_000, 7);
    let caps = capacities::random_even(200, 4, 7);
    let p = MigrationProblem::new(g, caps).unwrap();
    let s = EvenOptimalSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), p.delta_prime());
}

#[test]
fn general_solver_at_scale() {
    // 150 disks, 10 000 items, mixed parity: meets the lower bound on
    // loose random instances (E4's regime).
    let g = random::uniform_multigraph(150, 10_000, 11);
    let caps = capacities::mixed_parity(150, 1, 5, 11);
    let p = MigrationProblem::new(g, caps).unwrap();
    let s = GeneralSolver::default().solve(&p).unwrap();
    s.validate(&p).unwrap();
    let lb = bounds::lower_bound(&p);
    assert!(s.makespan() <= lb + 2, "{} vs lb {lb}", s.makespan());
}

#[test]
fn bipartite_solver_at_scale() {
    // A large drain: 120 disks losing 10, 8 000 items.
    let g = disk_ops::disk_removal(120, 10, 8_000, 13);
    let caps = capacities::mixed_parity(120, 1, 6, 13);
    let p = MigrationProblem::new(g, caps).unwrap();
    let s = BipartiteOptimalSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), p.delta_prime());
}

#[test]
fn simulation_at_scale() {
    let g = random::uniform_multigraph(100, 6_000, 17);
    let p = MigrationProblem::new(g, capacities::random_even(100, 3, 17)).unwrap();
    let s = EvenOptimalSolver.solve(&p).unwrap();
    let cluster = Cluster::uniform(100, 1.0);
    let r = simulate_rounds(&p, &s, &cluster).unwrap();
    assert_eq!(r.num_rounds(), s.makespan());
    assert!((r.volume - 6_000.0).abs() < 1e-6);
    assert!(r.total_time >= s.makespan() as f64);
}

#[test]
fn gamma_prime_at_scale() {
    // Exact Γ' via parametric min-cut on a dense instance.
    let g = random::uniform_multigraph(120, 10_000, 19);
    let p = MigrationProblem::new(g, capacities::mixed_parity(120, 1, 5, 19)).unwrap();
    let lb2 = bounds::lb2(&p);
    let lb1 = bounds::lb1(&p);
    assert!(lb2 >= 1);
    assert!(lb2 <= lb1, "the mediant dominance must hold at scale too");
}
