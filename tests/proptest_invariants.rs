//! Property-based tests over the whole pipeline: random instances in,
//! validated schedules and invariant checks out.

use dmig::prelude::*;
use proptest::prelude::*;

/// Strategy: a random loop-free multigraph as an edge list over `n` nodes,
/// plus per-node capacities.
fn instance_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<u32>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n - 1), 0..60).prop_map(move |raw| {
            raw.into_iter()
                .map(|(u, v)| {
                    // Shift v past u to rule out self-loops.
                    let v = if v >= u { v + 1 } else { v };
                    (u, v)
                })
                .collect::<Vec<_>>()
        });
        let caps = proptest::collection::vec(1u32..6, n);
        (Just(n), edges, caps)
    })
}

fn build_problem(n: usize, edges: &[(usize, usize)], caps: &[u32]) -> MigrationProblem {
    let mut g = Multigraph::with_nodes(n);
    for &(u, v) in edges {
        g.add_edge(u.into(), v.into());
    }
    MigrationProblem::new(g, Capacities::from_vec(caps.to_vec())).expect("loop-free, caps ≥ 1")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every solver produces a feasible schedule meeting the lower bound.
    #[test]
    fn solvers_always_feasible((n, edges, caps) in instance_strategy()) {
        let p = build_problem(n, &edges, &caps);
        let lb = bounds::lower_bound(&p);
        for solver in all_solvers() {
            if let Ok(s) = solver.solve(&p) {
                prop_assert!(s.validate(&p).is_ok(), "{} invalid", solver.name());
                prop_assert!(s.makespan() >= lb);
            }
        }
    }

    /// Even capacities: the §IV algorithm is exactly optimal.
    #[test]
    fn even_solver_exactly_optimal((n, edges, caps) in instance_strategy()) {
        let even: Vec<u32> = caps.iter().map(|&c| 2 * c).collect();
        let p = build_problem(n, &edges, &even);
        let s = EvenOptimalSolver.solve(&p).expect("even capacities");
        prop_assert!(s.validate(&p).is_ok());
        prop_assert_eq!(s.makespan(), p.delta_prime());
    }

    /// The flow-based Γ' matches the exponential reference, and never
    /// exceeds Δ'.
    #[test]
    fn gamma_prime_exact((n, edges, caps) in instance_strategy()) {
        let p = build_problem(n, &edges, &caps);
        let flow = bounds::lb2(&p);
        prop_assert_eq!(flow, bounds::lb2_bruteforce(&p));
        prop_assert!(flow <= bounds::lb1(&p));
    }

    /// The general solver respects the Shannon/Saia 1.5 envelope and never
    /// loses to Saia by more than a round (strict dominance is NOT a
    /// theorem: on adversarial fat triangles the escalation path can end
    /// one round behind the split-and-color route — found by fuzzing).
    #[test]
    fn general_within_envelope((n, edges, caps) in instance_strategy()) {
        let p = build_problem(n, &edges, &caps);
        let general = GeneralSolver::default().solve(&p).expect("infallible");
        let saia = SaiaSolver.solve(&p).expect("infallible");
        prop_assert!(general.makespan() <= saia.makespan() + 1);
        let lb1 = bounds::lb1(&p);
        prop_assert!(general.makespan() <= (3 * lb1).div_ceil(2) + 1);
    }

    /// Simulated time of a schedule is at least volume / aggregate
    /// bandwidth and at least the longest single transfer.
    #[test]
    fn simulation_lower_bounds((n, edges, caps) in instance_strategy()) {
        let p = build_problem(n, &edges, &caps);
        if p.num_items() == 0 {
            return Ok(());
        }
        let s = GreedySolver.solve(&p).expect("infallible");
        let cluster = Cluster::uniform(n, 1.0);
        let r = simulate_rounds(&p, &s, &cluster).expect("feasible");
        // Each round moves at least one item and takes ≥ 1 time unit.
        prop_assert!(r.total_time >= s.makespan() as f64 - 1e-9);
        prop_assert!(r.total_time >= p.delta_prime() as f64 - 1e-9);
        let adaptive = simulate_adaptive(&p, &s, &cluster).expect("feasible");
        prop_assert!(adaptive.total_time <= r.total_time + 1e-9);
    }

    /// The component-parallel solver is bit-for-bit deterministic: the
    /// schedule is identical at every thread count, and the merged makespan
    /// is the maximum of the per-component makespans.
    #[test]
    fn parallel_solver_deterministic_across_threads(
        comps in proptest::collection::vec(instance_strategy(), 1..4),
    ) {
        // One graph holding every generated instance on its own node block
        // (so the instance has ≥ `comps.len()` connected components), with
        // doubled capacities so the even-optimal solver applies.
        let total: usize = comps.iter().map(|(n, _, _)| n).sum();
        let mut g = Multigraph::with_nodes(total);
        let mut caps = Vec::with_capacity(total);
        let mut offset = 0usize;
        for (n, edges, c) in &comps {
            for &(u, v) in edges {
                g.add_edge((offset + u).into(), (offset + v).into());
            }
            caps.extend(c.iter().map(|&x| 2 * x));
            offset += n;
        }
        let p = MigrationProblem::new(g, Capacities::from_vec(caps)).expect("valid blocks");

        let seq = ParallelSolver::with_threads(Box::new(EvenOptimalSolver), 1)
            .solve(&p)
            .expect("even capacities");
        prop_assert!(seq.validate(&p).is_ok());
        for threads in [2usize, 4, 7] {
            let par = ParallelSolver::with_threads(Box::new(EvenOptimalSolver), threads)
                .solve(&p)
                .expect("even capacities");
            prop_assert_eq!(&seq, &par, "schedule differs at {} threads", threads);
        }

        let parts = split_components(&p);
        let max_span = parts
            .iter()
            .map(|part| EvenOptimalSolver.solve(&part.problem).expect("even").makespan())
            .max()
            .unwrap_or(0);
        prop_assert_eq!(seq.makespan(), max_span);
    }

    /// Schedules partition the items: every item exactly once.
    #[test]
    fn schedules_partition_items((n, edges, caps) in instance_strategy()) {
        let p = build_problem(n, &edges, &caps);
        let s = GeneralSolver::default().solve(&p).expect("infallible");
        let mut seen = vec![false; p.num_items()];
        for round in s.rounds() {
            for &e in round {
                prop_assert!(!seen[e.index()]);
                seen[e.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
