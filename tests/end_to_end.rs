//! Cross-crate pipeline tests: workload generation → bounds → solving →
//! validation → simulation, exercised as a user would.

use dmig::prelude::*;
use dmig::workloads::{capacities, disk_ops, random, reconfigure};

fn suite(seed: u64) -> Vec<MigrationProblem> {
    vec![
        MigrationProblem::new(
            random::uniform_multigraph(16, 120, seed),
            capacities::mixed_parity(16, 1, 5, seed),
        )
        .unwrap(),
        MigrationProblem::new(
            random::power_law_multigraph(20, 200, 1.3, seed),
            capacities::tiered(20, 6, 1, 0.3, seed),
        )
        .unwrap(),
        MigrationProblem::new(
            reconfigure::partial_rebalance(18, 300, 0.4, seed),
            capacities::random_even(18, 3, seed),
        )
        .unwrap(),
        MigrationProblem::new(
            disk_ops::disk_addition(12, 3, 150, seed),
            capacities::mixed_parity(15, 1, 4, seed),
        )
        .unwrap(),
        MigrationProblem::new(
            reconfigure::hot_spot_drain(14, 5, 120, seed),
            capacities::one_slow(14, 4, 1, 2),
        )
        .unwrap(),
    ]
}

#[test]
fn every_solver_yields_feasible_schedules_everywhere() {
    for seed in [1u64, 2, 3] {
        for p in suite(seed) {
            for solver in all_solvers() {
                match solver.solve(&p) {
                    Ok(s) => {
                        s.validate(&p)
                            .unwrap_or_else(|e| panic!("{} on {p}: {e}", solver.name()));
                        assert_eq!(s.num_items(), p.num_items());
                    }
                    Err(
                        SolveError::NotBipartite
                        | SolveError::OddCapacity { .. }
                        | SolveError::InstanceTooLarge { .. }
                        | SolveError::SearchBudgetExceeded { .. },
                    ) => {}
                    Err(e) => panic!("{} unexpected error: {e}", solver.name()),
                }
            }
        }
    }
}

#[test]
fn simulation_agrees_with_round_structure() {
    for p in suite(7) {
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(p.num_disks(), 1.0);
        let report = simulate_rounds(&p, &s, &cluster).unwrap();
        assert_eq!(report.num_rounds(), s.makespan());
        // With unit items and unit bandwidth, a round lasts as long as its
        // most loaded disk has transfers.
        for (round, &dur) in s.rounds().iter().zip(&report.round_durations) {
            let mut load = vec![0usize; p.num_disks()];
            for &e in round {
                let ep = p.graph().endpoints(e);
                load[ep.u.index()] += 1;
                load[ep.v.index()] += 1;
            }
            let expected = *load.iter().max().unwrap() as f64;
            assert!(
                (dur - expected).abs() < 1e-9,
                "round duration {dur} vs max load {expected}"
            );
        }
        assert!((report.volume - p.num_items() as f64).abs() < 1e-9);
        let adaptive = simulate_adaptive(&p, &s, &cluster).unwrap();
        assert!(adaptive.total_time <= report.total_time + 1e-9);
    }
}

#[test]
fn auto_never_worse_than_specialists() {
    for seed in [11u64, 12] {
        for p in suite(seed) {
            let auto = AutoSolver.solve(&p).unwrap();
            auto.validate(&p).unwrap();
            for solver in all_solvers() {
                if solver.name() == "auto" {
                    continue;
                }
                if let Ok(s) = solver.solve(&p) {
                    assert!(
                        auto.makespan() <= s.makespan(),
                        "auto ({}) lost to {} ({}) on {p}",
                        auto.makespan(),
                        solver.name(),
                        s.makespan()
                    );
                }
            }
        }
    }
}

#[test]
fn schedules_respect_per_disk_loads() {
    let p = MigrationProblem::new(
        random::uniform_multigraph(12, 150, 5),
        capacities::mixed_parity(12, 1, 4, 5),
    )
    .unwrap();
    let s = GeneralSolver::default().solve(&p).unwrap();
    for v in p.graph().nodes() {
        let cap = p.capacities().get(v) as usize;
        for (i, load) in s.disk_loads(&p, v).iter().enumerate() {
            assert!(*load <= cap, "round {i} overloads {v}: {load} > {cap}");
        }
        let total: usize = s.disk_loads(&p, v).iter().sum();
        assert_eq!(total, p.graph().degree(v));
    }
}

#[test]
fn graph_io_roundtrips_through_the_pipeline() {
    let g = random::uniform_multigraph(10, 60, 3);
    let text = dmig::graph::io::to_edge_list(&g);
    let g2 = dmig::graph::io::parse_edge_list(&text).unwrap();
    assert_eq!(g, g2);
    let p = MigrationProblem::uniform(g2, 2).unwrap();
    let s = EvenOptimalSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), p.delta_prime());
}
