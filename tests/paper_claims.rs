//! Integration tests pinning the paper's headline claims, end to end.
//!
//! Each test corresponds to a figure or theorem of *"Data Migration in
//! Heterogeneous Storage Systems"* (ICDCS 2011); see `DESIGN.md` §4 for
//! the experiment index.

use dmig::graph::builder::{complete_multigraph, cycle_multigraph};
use dmig::prelude::*;
use dmig::workloads::{capacities, disk_ops, random, reconfigure};

/// Fig. 2: `K3` with `M` parallel items. With `c_v = 2` the optimum is
/// `M` rounds / `2M` time units; one-at-a-time scheduling needs `3M`
/// rounds / `3M` time units.
#[test]
fn fig2_heterogeneity_gap() {
    for m in [1usize, 3, 10, 25] {
        let p = MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap();
        let cluster = Cluster::uniform(3, 1.0);

        let het = EvenOptimalSolver.solve(&p).unwrap();
        het.validate(&p).unwrap();
        assert_eq!(het.makespan(), m);
        let t_het = simulate_rounds(&p, &het, &cluster).unwrap().total_time;
        assert!((t_het - 2.0 * m as f64).abs() < 1e-9);

        let hom = HomogeneousSolver.solve(&p).unwrap();
        hom.validate(&p).unwrap();
        assert_eq!(hom.makespan(), 3 * m, "χ' of K3 with m parallels is 3m");
        let t_hom = simulate_rounds(&p, &hom, &cluster).unwrap().total_time;
        assert!((t_hom - 3.0 * m as f64).abs() < 1e-9);
    }
}

/// Theorem 4.1: even transfer constraints admit a schedule of exactly
/// `Δ' = max ⌈d_v/c_v⌉` rounds, across workload shapes.
#[test]
fn theorem_4_1_even_capacities_optimal() {
    let cases: Vec<MigrationProblem> = vec![
        MigrationProblem::uniform(complete_multigraph(6, 3), 4).unwrap(),
        MigrationProblem::uniform(cycle_multigraph(9, 2), 2).unwrap(),
        MigrationProblem::new(
            random::uniform_multigraph(40, 600, 1),
            capacities::random_even(40, 4, 1),
        )
        .unwrap(),
        MigrationProblem::new(
            reconfigure::load_balance_delta(30, 500, 2),
            capacities::random_even(30, 3, 2),
        )
        .unwrap(),
        MigrationProblem::new(
            disk_ops::disk_addition(20, 4, 300, 3),
            capacities::random_even(24, 4, 3),
        )
        .unwrap(),
    ];
    for p in &cases {
        let s = EvenOptimalSolver.solve(p).unwrap();
        s.validate(p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime(), "not optimal on {p}");
    }
}

/// Theorem 5.1 shape: on arbitrary capacities the general solver stays
/// within `LB + 2⌈√LB⌉ + 2` (and usually hits LB).
#[test]
fn theorem_5_1_general_near_optimal() {
    for seed in 0..10u64 {
        let n = 10 + (seed as usize % 5) * 8;
        let m = 100 + 150 * seed as usize;
        let p = MigrationProblem::new(
            random::uniform_multigraph(n, m, seed),
            capacities::mixed_parity(n, 1, 5, seed),
        )
        .unwrap();
        let s = GeneralSolver::default().solve(&p).unwrap();
        s.validate(&p).unwrap();
        let lb = bounds::lower_bound(&p);
        let sqrt_envelope = lb + 2 * (lb as f64).sqrt().ceil() as usize + 2;
        assert!(
            s.makespan() <= sqrt_envelope,
            "makespan {} vs envelope {sqrt_envelope} on {p}",
            s.makespan()
        );
    }
}

/// Saia's baseline keeps its 1.5 guarantee; the general solver tracks it
/// within one round (strict dominance is not a theorem — fuzzing finds
/// rare fat-triangle instances where escalation ends one round behind).
#[test]
fn saia_envelope_and_dominance() {
    for seed in 0..8u64 {
        let n = 8 + 2 * seed as usize;
        let p = MigrationProblem::new(
            random::uniform_multigraph(n, 40 * (seed as usize + 1), seed),
            capacities::mixed_parity(n, 1, 4, seed ^ 0xF),
        )
        .unwrap();
        let saia = SaiaSolver.solve(&p).unwrap();
        saia.validate(&p).unwrap();
        let lb1 = bounds::lb1(&p);
        assert!(
            saia.makespan() <= 3 * lb1 / 2 + 1,
            "saia beyond 1.5 envelope on {p}"
        );
        let general = GeneralSolver::default().solve(&p).unwrap();
        assert!(
            general.makespan() <= saia.makespan() + 1,
            "general must stay within one round of saia on {p}"
        );
    }
}

/// Both §III lower bounds hold for every solver's schedule, and
/// `Γ' ≤ Δ'` unconditionally.
#[test]
fn lower_bounds_hold_universally() {
    for seed in 0..6u64 {
        let n = 6 + 2 * seed as usize;
        let p = MigrationProblem::new(
            random::uniform_multigraph(n, 30 + 20 * seed as usize, seed + 50),
            capacities::mixed_parity(n, 1, 5, seed + 51),
        )
        .unwrap();
        let lb1 = bounds::lb1(&p);
        let lb2 = bounds::lb2(&p);
        assert!(lb2 <= lb1, "mediant argument violated on {p}");
        if p.num_disks() <= 18 {
            assert_eq!(lb2, bounds::lb2_bruteforce(&p));
        }
        for solver in all_solvers() {
            if let Ok(s) = solver.solve(&p) {
                s.validate(&p).unwrap();
                assert!(
                    s.makespan() >= lb1.max(lb2),
                    "{} beats the lower bound (!) on {p}",
                    solver.name()
                );
            }
        }
    }
}

/// Bipartite reconfiguration workloads are scheduled exactly optimally
/// regardless of capacity parity (the capacitated König construction).
#[test]
fn bipartite_workloads_exactly_optimal() {
    for seed in 0..6u64 {
        let g = disk_ops::disk_removal(20, 3, 200 + 30 * seed as usize, seed);
        let p = MigrationProblem::new(g, capacities::mixed_parity(20, 1, 5, seed)).unwrap();
        let s = BipartiteOptimalSolver.solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(s.makespan(), p.delta_prime());
        // Auto must find the same optimum.
        let auto = AutoSolver.solve(&p).unwrap();
        assert_eq!(auto.makespan(), p.delta_prime());
    }
}

/// The NP-hard frontier: with `c_v = 1` the problem is multigraph edge
/// coloring; on odd cycles the lower bound is off by one and every exact
/// method must pay Δ'+1.
#[test]
fn odd_cycle_hardness_frontier() {
    for n in [3usize, 5, 7, 9] {
        let p = MigrationProblem::uniform(cycle_multigraph(n, 1), 1).unwrap();
        let s = GeneralSolver::default().solve(&p).unwrap();
        s.validate(&p).unwrap();
        assert_eq!(bounds::lower_bound(&p), 2);
        assert_eq!(s.makespan(), 3, "odd cycles need 3 rounds at c=1");
    }
}
