//! Offline drop-in subset of the [`rand`](https://docs.rs/rand/0.8) API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *small* slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! combinators `gen_range` / `gen` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, deterministic and
//! fully reproducible, which is all the seeded workload generators and
//! property tests require. Stream-compatibility with upstream `rand` is
//! explicitly *not* a goal (seeds produce different sequences).

use core::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over a `[lo, hi]` interval.
///
/// The single generic `SampleRange` impl below funnels through this trait so
/// type inference can unify `T` structurally (`gen_range(0..n)` must pin the
/// result type from the range alone, exactly like upstream `rand`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Returns `hi` when the inclusive range `[lo, hi]` would overflow the
    /// half-open widening in [`SampleRange`] for `Range` (never true for the
    /// integer widths used here; floats ignore it).
    #[doc(hidden)]
    fn predecessor(self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let hi = self.end.predecessor();
        T::sample_inclusive(rng, self.start, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one sample from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform sample in `[0, width)` by widening multiply (Lemire reduction
/// without the rejection step: bias is < 2⁻⁴⁰ for the widths used in tests).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    (((u128::from(rng.next_u64())) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, width + 1) as $t)
            }

            #[inline]
            fn predecessor(self) -> $t {
                self.wrapping_sub(1)
            }
        }
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::standard_sample(rng) * (hi - lo)
    }

    #[inline]
    fn predecessor(self) -> f64 {
        self
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; a separate small generator is not worth carrying
    /// in an offline stub.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn covers_full_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
