//! Offline no-op subset of the [`serde`](https://docs.rs/serde/1) API.
//!
//! The workspace gates serialization behind a `serde` cargo feature but has
//! no crates.io access, so the derives must still *name-resolve* even though
//! nothing in-tree serializes through them yet. This stub re-exports no-op
//! `Serialize`/`Deserialize` derive macros (they expand to nothing) plus the
//! matching marker traits, which keeps every
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize))]` attribute
//! compiling. When real serialization lands, swap this vendored stub for the
//! actual crate by editing `[workspace.dependencies]`.

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// emits no impls and nothing in-tree requires the bound).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (see [`Serialize`]).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
