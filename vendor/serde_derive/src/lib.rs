//! No-op `Serialize`/`Deserialize` derive macros for the offline serde stub.
//!
//! Each derive accepts the full `#[serde(...)]` helper-attribute syntax and
//! expands to nothing: the workspace only needs the attributes to
//! name-resolve while serialization support is feature-gated off.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
