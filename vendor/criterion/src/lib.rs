//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of criterion the workspace's `harness = false` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Statistics are
//! deliberately simple — median of timed batches printed to stdout — but the
//! timing loop is real, so `cargo bench` still measures and reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to every target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        run_benchmark(&id, sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with a fixed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
    }
    samples.sort_by(f64::total_cmp);
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    println!("{label:<50} time: [{}]", format_seconds(median));
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One timed warm-up call sizes a small adaptive batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let target = Duration::from_millis(20);
        let reps = if once.is_zero() {
            8
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 64) as u64
        };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }
}

/// A benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`-style calls.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
