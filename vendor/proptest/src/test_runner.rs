//! Test configuration, RNG, and case-failure plumbing.

use core::fmt;

/// Per-`proptest!` configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the case with `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Rejects the case (treated the same as a failure in this stub).
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving every strategy.
///
/// xoshiro256++ seeded from an FNV-1a hash of the test name, so each test
/// gets an independent reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the RNG for the named test.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Creates the RNG from a raw seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, width)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[inline]
    pub fn below(&mut self, width: u64) -> u64 {
        assert!(width > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi]`.
    #[inline]
    pub fn below_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}
