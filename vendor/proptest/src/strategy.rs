//! The [`Strategy`] trait and the built-in strategies.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one concrete value from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Generates an intermediate value, builds a dependent strategy from it
    /// with `f`, and draws the final value from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            flat_map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.flat_map)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)
            ;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
