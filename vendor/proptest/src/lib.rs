//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest/1)
//! API.
//!
//! The build environment has no crates.io access, so this crate re-creates
//! exactly the surface the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], `Just`, the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (per test name), and there is **no shrinking** — a failing case
//! reports the case number so it can be replayed, which is sufficient for a
//! CI gate.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// An inclusive length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_inclusive(self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports every property-test file pulls in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion `left == right` failed: {}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion `left != right` failed\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion `left != right` failed: {}\n  both: {:?}",
            ::std::format!($($fmt)+),
            left
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        // The user writes `#[test]` inside `proptest!` (upstream convention),
        // so the attribute arrives through `$meta` — don't add another.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    ::core::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn flat_map_dependent(( n, k) in pair()) {
            prop_assert!(k < n, "k={} must stay below n={}", k, n);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0usize..5, 2..6), w in crate::collection::vec(crate::bool::ANY, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            let mapped = v.len();
            prop_assert_ne!(mapped + 1, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..3) {
            if x > 2 {
                return Ok(());
            }
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0usize..10).prop_map(|x| x * 2);
        let mut rng = crate::test_runner::TestRng::from_name("map");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
