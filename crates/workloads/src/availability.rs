//! Rack/zone availability models compiled to executable fault plans.
//!
//! The executor consumes a literal [`FaultPlan`-shaped] TOML script:
//! *this* disk dies at *this* time. Operators think one level up — "rack
//! A's machines fail together about every eight hours and take two to
//! repair" — in terms of **failure domains** with MTBF/MTTR statistics
//! and correlation. An [`AvailabilityModel`] captures that description
//! and [`AvailabilityModel::compile`] lowers it, with a seeded
//! exponential sampler, into a concrete fault-plan text the simulator
//! (`dmig-sim`) parses and validates like any hand-written plan. One
//! model plus one seed is one reproducible chaos scenario; sweeping the
//! seed sweeps scenarios drawn from the same availability statistics.
//!
//! The model TOML uses the same line-oriented subset as fault plans:
//!
//! ```toml
//! horizon = 10.0          # failures strike in [0, horizon)
//!
//! [[domain]]
//! name = "rack-a"
//! disks = "0-3"           # ranges and lists: "0-3,7"
//! mode = "degrade"        # or "crash"
//! mtbf = 4.0              # mean time between failures (exponential)
//! mttr = 1.5              # mean time to repair (exponential; degrade only)
//! factor = 0.4            # surviving bandwidth fraction while degraded
//! correlated = true       # one sampled event hits every disk at once
//!
//! [[domain]]
//! name = "old-disks"
//! disks = "4,5"
//! mode = "crash"
//! mtbf = 6.0
//!
//! [spares]
//! disks = "8-9"           # replacement pool for crash failures, in order
//!
//! [flaky]
//! probability = 0.02      # passed through to the compiled plan
//! ```
//!
//! This crate deliberately does **not** depend on `dmig-sim`: the
//! compiler emits fault-plan *text*, and the simulator's own
//! `FaultPlan::parse_checked` remains the single validation authority.
//!
//! [`FaultPlan`-shaped]: AvailabilityModel::compile

use std::collections::BTreeSet;
use std::fmt::Write as _;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// How a failure domain fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureMode {
    /// Bandwidth collapses to `factor` of nominal, then repairs.
    Degrade,
    /// Crash-stop; pending items redirect to a spare, if one is left.
    Crash,
}

/// One failure domain: a named set of disks sharing failure statistics
/// (a rack, a zone, a batch of ageing spindles).
#[derive(Clone, Debug, PartialEq)]
pub struct Domain {
    /// Human-readable name, echoed into the generated plan as a comment.
    pub name: String,
    /// Member disks (sorted, deduplicated).
    pub disks: Vec<usize>,
    /// Failure mode.
    pub mode: FailureMode,
    /// Mean time between failures (exponential inter-arrival).
    pub mtbf: f64,
    /// Mean time to repair (exponential; only meaningful for degrade).
    pub mttr: f64,
    /// Surviving bandwidth fraction while degraded, in `(0, 1)`.
    pub factor: f64,
    /// `true`: one sampled event strikes every member simultaneously
    /// (correlated rack/zone failure). `false`: members fail
    /// independently, each with its own sample stream.
    pub correlated: bool,
}

/// A parsed availability model.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AvailabilityModel {
    /// Failures are sampled in `[0, horizon)` simulated time.
    pub horizon: f64,
    /// Failure domains, in file order (compilation order).
    pub domains: Vec<Domain>,
    /// Replacement pool for crash failures, consumed in listed order.
    pub spares: Vec<usize>,
    /// Flaky-transfer probability passed through to the plan, if any.
    pub flaky: Option<f64>,
}

/// Errors from parsing or validating an availability model.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AvailabilityError {
    /// A line could not be parsed (1-based line number).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed model is semantically invalid.
    Invalid(String),
}

impl std::fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AvailabilityError::Parse { line, message } => write!(f, "line {line}: {message}"),
            AvailabilityError::Invalid(m) => write!(f, "invalid availability model: {m}"),
        }
    }
}

impl std::error::Error for AvailabilityError {}

/// Safety valve: at most this many failure events are sampled per disk,
/// so a tiny MTBF against a huge horizon cannot explode the plan.
pub const MAX_EVENTS_PER_DISK: usize = 32;

fn parse_err(line: usize, message: String) -> AvailabilityError {
    AvailabilityError::Parse { line, message }
}

/// Parses `"0-3,7"`-style disk lists: comma-separated indices and
/// inclusive ranges. Returns a sorted, deduplicated list.
fn parse_disk_list(line: usize, raw: &str) -> Result<Vec<usize>, AvailabilityError> {
    let raw = raw.trim().trim_matches('"');
    let mut out = BTreeSet::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            let lo: usize = a.trim().parse().map_err(|_| {
                parse_err(line, format!("disks: bad range start `{a}` in `{part}`"))
            })?;
            let hi: usize = b
                .trim()
                .parse()
                .map_err(|_| parse_err(line, format!("disks: bad range end `{b}` in `{part}`")))?;
            if hi < lo {
                return Err(parse_err(line, format!("disks: empty range `{part}`")));
            }
            out.extend(lo..=hi);
        } else {
            out.insert(
                part.parse().map_err(|_| {
                    parse_err(line, format!("disks: expected an index, got `{part}`"))
                })?,
            );
        }
    }
    if out.is_empty() {
        return Err(parse_err(line, "disks: the list is empty".into()));
    }
    Ok(out.into_iter().collect())
}

fn parse_number(line: usize, key: &str, raw: &str) -> Result<f64, AvailabilityError> {
    raw.parse::<f64>()
        .map_err(|_| parse_err(line, format!("{key}: expected a number, got `{raw}`")))
}

/// The section the parser is currently filling.
enum Section {
    Top,
    Domain,
    Spares,
    Flaky,
}

/// A [`Domain`] under construction.
#[derive(Default)]
struct PartialDomain {
    name: Option<String>,
    disks: Option<Vec<usize>>,
    mode: Option<FailureMode>,
    mtbf: Option<f64>,
    mttr: Option<f64>,
    factor: Option<f64>,
    correlated: Option<bool>,
}

impl PartialDomain {
    fn build(self) -> Result<Domain, AvailabilityError> {
        let need = |what: &str| AvailabilityError::Invalid(format!("[[domain]] needs `{what}`"));
        let mode = self.mode.ok_or_else(|| need("mode"))?;
        Ok(Domain {
            name: self.name.ok_or_else(|| need("name"))?,
            disks: self.disks.ok_or_else(|| need("disks"))?,
            mode,
            mtbf: self.mtbf.ok_or_else(|| need("mtbf"))?,
            // Repair statistics and degradation depth only matter for
            // degrade domains; crashes are forever.
            mttr: self.mttr.unwrap_or(1.0),
            factor: self.factor.unwrap_or(0.5),
            correlated: self.correlated.unwrap_or(false),
        })
    }
}

impl AvailabilityModel {
    /// Parses a model from the TOML subset described at module level.
    ///
    /// # Errors
    ///
    /// [`AvailabilityError::Parse`] with a line number on malformed
    /// input; [`AvailabilityError::Invalid`] when a table misses a
    /// required key.
    pub fn parse(text: &str) -> Result<AvailabilityModel, AvailabilityError> {
        let mut model = AvailabilityModel::default();
        let mut section = Section::Top;
        let mut current: Option<PartialDomain> = None;
        let flush = |current: &mut Option<PartialDomain>,
                     model: &mut AvailabilityModel|
         -> Result<(), AvailabilityError> {
            if let Some(d) = current.take() {
                model.domains.push(d.build()?);
            }
            Ok(())
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                flush(&mut current, &mut model)?;
                match header.trim() {
                    "domain" => {
                        section = Section::Domain;
                        current = Some(PartialDomain::default());
                    }
                    other => return Err(parse_err(lineno, format!("unknown table `[[{other}]]`"))),
                }
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush(&mut current, &mut model)?;
                section = match header.trim() {
                    "spares" => Section::Spares,
                    "flaky" => Section::Flaky,
                    other => return Err(parse_err(lineno, format!("unknown table `[{other}]`"))),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(parse_err(
                    lineno,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&section, key) {
                (Section::Top, "horizon") => {
                    model.horizon = parse_number(lineno, key, value)?;
                }
                (Section::Domain, _) => {
                    let d = current.as_mut().expect("domain section has a partial");
                    match key {
                        "name" => d.name = Some(value.trim_matches('"').to_string()),
                        "disks" => d.disks = Some(parse_disk_list(lineno, value)?),
                        "mode" => {
                            d.mode = Some(match value.trim_matches('"') {
                                "degrade" => FailureMode::Degrade,
                                "crash" => FailureMode::Crash,
                                other => {
                                    return Err(parse_err(
                                        lineno,
                                        format!(
                                            "mode: expected `degrade` or `crash`, got `{other}`"
                                        ),
                                    ))
                                }
                            });
                        }
                        "mtbf" => d.mtbf = Some(parse_number(lineno, key, value)?),
                        "mttr" => d.mttr = Some(parse_number(lineno, key, value)?),
                        "factor" => d.factor = Some(parse_number(lineno, key, value)?),
                        "correlated" => {
                            d.correlated = Some(match value {
                                "true" => true,
                                "false" => false,
                                other => {
                                    return Err(parse_err(
                                        lineno,
                                        format!("correlated: expected true/false, got `{other}`"),
                                    ))
                                }
                            });
                        }
                        other => {
                            return Err(parse_err(
                                lineno,
                                format!("unknown key `{other}` in [[domain]]"),
                            ))
                        }
                    }
                }
                (Section::Spares, "disks") => {
                    model.spares = parse_disk_list(lineno, value)?;
                }
                (Section::Flaky, "probability") => {
                    model.flaky = Some(parse_number(lineno, key, value)?);
                }
                _ => {
                    return Err(parse_err(
                        lineno,
                        format!("unknown key `{key}` in this table"),
                    ));
                }
            }
        }
        flush(&mut current, &mut model)?;
        Ok(model)
    }

    /// Validates the model's internal consistency (ranges and statistics;
    /// disk indices against a concrete cluster are the fault-plan
    /// loader's job).
    ///
    /// # Errors
    ///
    /// [`AvailabilityError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), AvailabilityError> {
        let bad = |m: String| Err(AvailabilityError::Invalid(m));
        if !(self.horizon > 0.0 && self.horizon.is_finite()) {
            return bad(format!(
                "horizon {} must be a positive number",
                self.horizon
            ));
        }
        if self.domains.is_empty() {
            return bad("the model has no [[domain]] tables".into());
        }
        let spare_set: BTreeSet<usize> = self.spares.iter().copied().collect();
        let mut crash_members = BTreeSet::new();
        for d in &self.domains {
            let ctx = &d.name;
            if !(d.mtbf > 0.0 && d.mtbf.is_finite()) {
                return bad(format!("domain `{ctx}`: mtbf {} must be positive", d.mtbf));
            }
            if !(d.mttr > 0.0 && d.mttr.is_finite()) {
                return bad(format!("domain `{ctx}`: mttr {} must be positive", d.mttr));
            }
            if d.mode == FailureMode::Degrade && !(d.factor > 0.0 && d.factor < 1.0) {
                return bad(format!(
                    "domain `{ctx}`: factor {} must be in (0, 1)",
                    d.factor
                ));
            }
            for &disk in &d.disks {
                if spare_set.contains(&disk) {
                    return bad(format!(
                        "domain `{ctx}`: disk {disk} is also listed as a spare"
                    ));
                }
                if d.mode == FailureMode::Crash && !crash_members.insert(disk) {
                    return bad(format!(
                        "disk {disk} is in two crash domains (it can only die once)"
                    ));
                }
            }
        }
        if let Some(p) = self.flaky {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return bad(format!("flaky probability {p} must be in [0, 1]"));
            }
        }
        Ok(())
    }

    /// Compiles the model into fault-plan TOML text under `seed`. The
    /// output is deterministic in `(model, seed)` and parses with the
    /// simulator's fault-plan loader; the compiled plan reuses `seed` as
    /// its flaky-coin seed.
    ///
    /// Sampling: failure onsets are exponential inter-arrivals with the
    /// domain's MTBF; degrade repairs are exponential with its MTTR, and
    /// the next onset is sampled after the repair completes. Correlated
    /// domains draw one stream for all members; independent domains draw
    /// one per member. Crash events consume the spare pool in listed
    /// order — once it runs dry, further crashes lose their pending
    /// items, which is exactly the scenario worth simulating.
    ///
    /// # Panics
    ///
    /// Panics if the model fails [`AvailabilityModel::validate`] — call
    /// it first for a recoverable error.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn compile(&self, seed: u64) -> String {
        self.validate().expect("compile requires a valid model");
        let mut rng = StdRng::seed_from_u64(seed);
        // Exponential sample, floored away from zero so `recover_at >
        // time` always holds in the emitted plan.
        let mut exp = |mean: f64| -> f64 {
            let u: f64 = rng.gen();
            (-mean * (1.0 - u).ln()).max(mean * 1e-6)
        };
        let mut out = String::new();
        let _ = writeln!(out, "# compiled availability model (seed {seed})");
        let _ = writeln!(out, "seed = {seed}");
        let mut crashed: BTreeSet<usize> = BTreeSet::new();
        let mut spares = self.spares.iter().copied();
        for d in &self.domains {
            let _ = writeln!(out, "\n# domain `{}`", d.name);
            // Correlated: one event stream applied to every member.
            // Independent: one stream per member. Either way the stream
            // is a sequence of (onset, repair) pairs inside the horizon.
            let groups: Vec<Vec<usize>> = if d.correlated {
                vec![d.disks.clone()]
            } else {
                d.disks.iter().map(|&x| vec![x]).collect()
            };
            for group in groups {
                let mut t = exp(d.mtbf);
                let mut events = 0;
                while t < self.horizon && events < MAX_EVENTS_PER_DISK {
                    events += 1;
                    match d.mode {
                        FailureMode::Degrade => {
                            let repair = exp(d.mttr);
                            for &disk in &group {
                                if crashed.contains(&disk) {
                                    continue;
                                }
                                let _ = writeln!(out, "[[degrade]]");
                                let _ = writeln!(out, "disk = {disk}");
                                let _ = writeln!(out, "time = {t}");
                                let _ = writeln!(out, "factor = {}", d.factor);
                                let _ = writeln!(out, "recover_at = {}", t + repair);
                            }
                            t += repair + exp(d.mtbf);
                        }
                        FailureMode::Crash => {
                            for &disk in &group {
                                if !crashed.insert(disk) {
                                    continue;
                                }
                                let _ = writeln!(out, "[[crash]]");
                                let _ = writeln!(out, "disk = {disk}");
                                let _ = writeln!(out, "time = {t}");
                                if let Some(spare) = spares.next() {
                                    let _ = writeln!(out, "replacement = {spare}");
                                }
                            }
                            // Crash-stop is forever: this stream is done.
                            break;
                        }
                    }
                }
            }
        }
        if let Some(p) = self.flaky {
            let _ = writeln!(out, "\n[flaky]\nprobability = {p}");
        }
        out
    }

    /// The highest disk index the model references (domains and spares),
    /// or `None` for a model with no disks. A cluster must have at least
    /// `max_disk() + 1` disks to host the compiled plans.
    #[must_use]
    pub fn max_disk(&self) -> Option<usize> {
        self.domains
            .iter()
            .flat_map(|d| d.disks.iter())
            .chain(self.spares.iter())
            .copied()
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "\
# two racks and a retirement batch
horizon = 10.0

[[domain]]
name = \"rack-a\"
disks = \"0-2\"
mode = \"degrade\"
mtbf = 4.0
mttr = 1.5
factor = 0.4
correlated = true

[[domain]]
name = \"old-disks\"
disks = \"3,4\"
mode = \"crash\"
mtbf = 6.0

[spares]
disks = \"6-7\"

[flaky]
probability = 0.02
";

    #[test]
    fn parses_the_sample_model() {
        let m = AvailabilityModel::parse(MODEL).unwrap();
        m.validate().unwrap();
        assert_eq!(m.horizon, 10.0);
        assert_eq!(m.domains.len(), 2);
        assert_eq!(m.domains[0].disks, vec![0, 1, 2]);
        assert!(m.domains[0].correlated);
        assert_eq!(m.domains[1].mode, FailureMode::Crash);
        assert_eq!(m.spares, vec![6, 7]);
        assert_eq!(m.flaky, Some(0.02));
        assert_eq!(m.max_disk(), Some(7));
    }

    #[test]
    fn disk_lists_support_ranges_and_commas() {
        assert_eq!(
            parse_disk_list(1, "\"0-3,7\"").unwrap(),
            vec![0, 1, 2, 3, 7]
        );
        assert_eq!(parse_disk_list(1, "5").unwrap(), vec![5]);
        assert_eq!(parse_disk_list(1, "3,1,3").unwrap(), vec![1, 3]);
        assert!(parse_disk_list(1, "3-1").is_err());
        assert!(parse_disk_list(1, "x").is_err());
        assert!(parse_disk_list(1, "\"\"").is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("[[rack]]\n", "unknown table"),
            ("[mystery]\n", "unknown table"),
            ("horizon = soon\n", "expected a number"),
            ("[[domain]]\nmode = \"explode\"\n", "degrade` or `crash"),
            ("[[domain]]\ncorrelated = maybe\n", "true/false"),
            ("gibberish\n", "key = value"),
        ] {
            let err = AvailabilityModel::parse(text).unwrap_err();
            assert!(
                matches!(err, AvailabilityError::Parse { .. }),
                "{text}: {err}"
            );
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
        let err = AvailabilityModel::parse("[[domain]]\nname = \"a\"\n").unwrap_err();
        assert!(err.to_string().contains("needs"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_models() {
        let base = AvailabilityModel::parse(MODEL).unwrap();
        let mut no_horizon = base.clone();
        no_horizon.horizon = 0.0;
        assert!(no_horizon.validate().is_err());

        let mut bad_factor = base.clone();
        bad_factor.domains[0].factor = 1.0;
        assert!(bad_factor.validate().is_err());

        let mut spare_overlap = base.clone();
        spare_overlap.spares = vec![0];
        assert!(spare_overlap
            .validate()
            .unwrap_err()
            .to_string()
            .contains("also listed as a spare"));

        let mut double_crash = base.clone();
        double_crash.domains.push(base.domains[1].clone());
        assert!(double_crash
            .validate()
            .unwrap_err()
            .to_string()
            .contains("two crash domains"));

        let mut bad_flaky = base;
        bad_flaky.flaky = Some(2.0);
        assert!(bad_flaky.validate().is_err());
    }

    #[test]
    fn compile_is_deterministic_in_model_and_seed() {
        let m = AvailabilityModel::parse(MODEL).unwrap();
        let a = m.compile(11);
        let b = m.compile(11);
        let c = m.compile(12);
        assert_eq!(a, b, "same seed must compile identically");
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.contains("seed = 11"));
        assert!(a.contains("# domain `rack-a`"));
    }

    #[test]
    fn compiled_plans_respect_the_fault_plan_invariants() {
        let m = AvailabilityModel::parse(MODEL).unwrap();
        for seed in 0..32 {
            let text = m.compile(seed);
            // Structural spot-checks without depending on dmig-sim: every
            // degrade block recovers strictly after onset, every crashed
            // disk appears at most once, and replacements come from the
            // spare pool.
            let mut crashes = Vec::new();
            let lines: Vec<&str> = text.lines().collect();
            for (i, l) in lines.iter().enumerate() {
                if *l == "[[degrade]]" {
                    let time: f64 = lines[i + 2]
                        .strip_prefix("time = ")
                        .unwrap()
                        .parse()
                        .unwrap();
                    let rec: f64 = lines[i + 4]
                        .strip_prefix("recover_at = ")
                        .unwrap()
                        .parse()
                        .unwrap();
                    assert!(rec > time, "seed {seed}: recover {rec} <= onset {time}");
                    assert!((0.0..10.0).contains(&time));
                }
                if *l == "[[crash]]" {
                    let disk: usize = lines[i + 1]
                        .strip_prefix("disk = ")
                        .unwrap()
                        .parse()
                        .unwrap();
                    crashes.push(disk);
                    if let Some(r) = lines
                        .get(i + 3)
                        .and_then(|l| l.strip_prefix("replacement = "))
                    {
                        let r: usize = r.parse().unwrap();
                        assert!(m.spares.contains(&r), "seed {seed}: replacement {r}");
                    }
                }
            }
            let unique: BTreeSet<&usize> = crashes.iter().collect();
            assert_eq!(
                unique.len(),
                crashes.len(),
                "seed {seed}: a disk died twice"
            );
        }
    }

    #[test]
    fn tiny_mtbf_is_bounded_by_the_event_cap() {
        let m = AvailabilityModel::parse(
            "horizon = 1000.0\n[[domain]]\nname = \"x\"\ndisks = \"0\"\nmode = \"degrade\"\nmtbf = 0.001\nmttr = 0.001\nfactor = 0.5\n",
        )
        .unwrap();
        let text = m.compile(1);
        let blocks = text.matches("[[degrade]]").count();
        assert!(blocks <= MAX_EVENTS_PER_DISK, "{blocks} events");
    }
}
