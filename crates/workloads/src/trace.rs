//! Migration trace files: item-level source/destination (and size) lists.
//!
//! The experimental-study line of related work (Anderson et al., WAE '01)
//! drives migration algorithms from item traces. This module defines a
//! line-oriented trace format so external traces can be replayed through
//! the planners and the simulator:
//!
//! ```text
//! # dmig trace
//! item 0 3        # item from disk 0 to disk 3, unit size
//! item 2 1 0.5    # half-size item from disk 2 to disk 1
//! ```
//!
//! Item order defines edge ids, so the sizes vector aligns with
//! `Cluster::with_item_sizes` in `dmig-sim`.

use core::fmt;

use dmig_graph::{Multigraph, NodeId};

/// A parsed trace: the transfer multigraph plus per-item sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The transfer graph (one edge per item, in file order).
    pub graph: Multigraph,
    /// Item sizes aligned with edge ids (1.0 when omitted).
    pub sizes: Vec<f64>,
}

/// Errors from trace parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceError {}

/// Parses the trace format described at module level.
///
/// The node count is inferred from the largest disk index mentioned.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed lines, self-transfers, or
/// non-positive sizes.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut items: Vec<(usize, usize, f64)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| TraceError {
            line: lineno + 1,
            message,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("item") => {
                let src: usize = parts
                    .next()
                    .ok_or_else(|| err("missing source disk".into()))?
                    .parse()
                    .map_err(|_| err("invalid source disk".into()))?;
                let dst: usize = parts
                    .next()
                    .ok_or_else(|| err("missing destination disk".into()))?
                    .parse()
                    .map_err(|_| err("invalid destination disk".into()))?;
                if src == dst {
                    return Err(err(format!("item moves from disk {src} to itself")));
                }
                let size: f64 = match parts.next() {
                    Some(tok) => tok.parse().map_err(|_| err("invalid size".into()))?,
                    None => 1.0,
                };
                if !(size.is_finite() && size > 0.0) {
                    return Err(err(format!("non-positive size {size}")));
                }
                if parts.next().is_some() {
                    return Err(err("trailing tokens".into()));
                }
                items.push((src, dst, size));
            }
            Some(other) => return Err(err(format!("unknown directive `{other}`"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    let n = items
        .iter()
        .map(|&(s, d, _)| s.max(d) + 1)
        .max()
        .unwrap_or(0);
    let mut graph = Multigraph::with_nodes(n);
    let mut sizes = Vec::with_capacity(items.len());
    for (src, dst, size) in items {
        graph.add_edge(NodeId::new(src), NodeId::new(dst));
        sizes.push(size);
    }
    Ok(Trace { graph, sizes })
}

/// Serializes a trace back to the text format.
#[must_use]
pub fn to_trace_text(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# dmig trace\n");
    for (e, ep) in trace.graph.edges() {
        let size = trace.sizes[e.index()];
        if (size - 1.0).abs() < f64::EPSILON {
            let _ = writeln!(out, "item {} {}", ep.u.index(), ep.v.index());
        } else {
            let _ = writeln!(out, "item {} {} {}", ep.u.index(), ep.v.index(), size);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_trace() {
        let t = parse_trace("# hdr\nitem 0 3\nitem 2 1 0.5\n").unwrap();
        assert_eq!(t.graph.num_nodes(), 4);
        assert_eq!(t.graph.num_edges(), 2);
        assert_eq!(t.sizes, vec![1.0, 0.5]);
    }

    #[test]
    fn roundtrip() {
        let t = parse_trace("item 0 1 2.5\nitem 1 2\nitem 0 2 0.125\n").unwrap();
        let t2 = parse_trace(&to_trace_text(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn rejects_self_transfer() {
        let err = parse_trace("item 3 3\n").unwrap_err();
        assert!(err.message.contains("itself"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_bad_size() {
        assert!(parse_trace("item 0 1 -2\n").is_err());
        assert!(parse_trace("item 0 1 nanx\n").is_err());
        assert!(parse_trace("item 0 1 0\n").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_trace("move 0 1\n").is_err());
        assert!(parse_trace("item 0\n").is_err());
        assert!(parse_trace("item 0 1 1.0 extra\n").is_err());
        assert_eq!(parse_trace("item a 1\n").unwrap_err().line, 1);
    }

    #[test]
    fn empty_trace() {
        let t = parse_trace("# nothing\n").unwrap();
        assert_eq!(t.graph.num_nodes(), 0);
        assert!(t.sizes.is_empty());
    }

    #[test]
    fn inline_comments() {
        let t = parse_trace("item 0 1 # hot shard\n").unwrap();
        assert_eq!(t.graph.num_edges(), 1);
    }
}
