//! Unstructured random transfer graphs.

use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random multigraph with `n` nodes and exactly `m` edges, endpoints
/// drawn uniformly (no self-loops). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2` while `m > 0` (no loop-free edge exists).
#[must_use]
pub fn uniform_multigraph(n: usize, m: usize, seed: u64) -> Multigraph {
    assert!(
        m == 0 || n >= 2,
        "need at least two disks to generate transfers"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..m {
        loop {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

/// A random multigraph whose endpoint popularity follows a Zipf-like
/// power law with exponent `alpha` (`alpha = 0` degenerates to uniform):
/// hot disks attract most transfers, matching skewed demand in storage
/// clusters. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2` while `m > 0`, or if `alpha` is negative or
/// non-finite.
#[must_use]
pub fn power_law_multigraph(n: usize, m: usize, alpha: f64, seed: u64) -> Multigraph {
    assert!(
        m == 0 || n >= 2,
        "need at least two disks to generate transfers"
    );
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be a non-negative finite number"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let draw = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.gen();
        cumulative.partition_point(|&c| c < x).min(n - 1)
    };
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..m {
        loop {
            let u = draw(&mut rng);
            let v = draw(&mut rng);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

/// A clustered multigraph modeling rack locality: `clusters` equally
/// sized dense blocks of contiguous nodes arranged in a ring, with
/// `inter_per_link` parallel edges between consecutive blocks and all
/// remaining edges drawn uniformly *inside* a block. Every block carries
/// a spanning path, so the graph is one connected component with exactly
/// `m` edges and no self-loops. Deterministic in `seed`.
///
/// Edges stream straight into the [`Multigraph`] (one preallocated
/// arena, no intermediate `Vec` of endpoint pairs), so `m = 1e7` builds
/// without a second copy of the edge list.
///
/// This is the shape the shard partitioner is designed for: cutting a
/// block boundary severs only the sparse ring links, so the cut fraction
/// stays near `clusters * inter_per_link / m` rather than the `1 - 1/K`
/// of a uniform random graph.
///
/// # Panics
///
/// Panics if `clusters == 0`, a block would have fewer than 2 nodes, or
/// `m` is smaller than the structural minimum (the spanning paths plus
/// the ring links).
#[must_use]
pub fn clustered_multigraph(
    n: usize,
    m: usize,
    clusters: usize,
    inter_per_link: usize,
    seed: u64,
) -> Multigraph {
    assert!(clusters > 0, "need at least one cluster");
    assert!(
        n / clusters >= 2,
        "each cluster needs at least two disks ({n} nodes / {clusters} clusters)"
    );
    let ring_links = if clusters > 1 {
        clusters * inter_per_link
    } else {
        0
    };
    let base = (n - clusters) + ring_links;
    assert!(
        m >= base,
        "need at least {base} edges for {clusters} connected clusters, got {m}"
    );

    let block = n / clusters; // first `n % clusters` blocks get one extra
    let extra = n % clusters;
    let start_of = |c: usize| c * block + c.min(extra);
    let size_of = |c: usize| block + usize::from(c < extra);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_capacity(n, m);
    // Spanning path inside each block keeps the block (and, with the
    // ring, the whole graph) connected.
    for c in 0..clusters {
        let s = start_of(c);
        for i in 0..size_of(c) - 1 {
            g.add_edge((s + i).into(), (s + i + 1).into());
        }
    }
    // Sparse ring: consecutive blocks joined by a few parallel edges.
    if clusters > 1 {
        for c in 0..clusters {
            let next = (c + 1) % clusters;
            for _ in 0..inter_per_link {
                g.add_edge(start_of(c).into(), start_of(next).into());
            }
        }
    }
    // Remaining edges are intra-cluster, block then endpoints uniform.
    for _ in base..m {
        let c = rng.gen_range(0..clusters);
        let s = start_of(c);
        let sz = size_of(c);
        loop {
            let u = s + rng.gen_range(0..sz);
            let v = s + rng.gen_range(0..sz);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::components::edges_connected;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_multigraph(10, 40, 7);
        let b = uniform_multigraph(10, 40, 7);
        assert_eq!(a, b);
        let c = uniform_multigraph(10, 40, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_edge_count_no_loops() {
        let g = uniform_multigraph(5, 100, 1);
        assert_eq!(g.num_edges(), 100);
        assert!(!g.has_loops());
    }

    #[test]
    fn zero_edges_fine() {
        let g = uniform_multigraph(1, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two disks")]
    fn one_node_with_edges_panics() {
        let _ = uniform_multigraph(1, 5, 0);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law_multigraph(20, 400, 1.5, 3);
        assert_eq!(g.num_edges(), 400);
        // The hottest disk should far exceed the average degree (40).
        let max_deg = g.max_degree();
        assert!(max_deg > 60, "expected skew, max degree {max_deg}");
    }

    #[test]
    fn power_law_alpha_zero_roughly_uniform() {
        let g = power_law_multigraph(10, 1000, 0.0, 9);
        // Expected degree 200 per node; allow generous slack.
        for v in g.nodes() {
            let d = g.degree(v);
            assert!((120..=280).contains(&d), "degree {d} too far from uniform");
        }
    }

    #[test]
    fn power_law_deterministic() {
        assert_eq!(
            power_law_multigraph(8, 50, 1.0, 4),
            power_law_multigraph(8, 50, 1.0, 4)
        );
    }

    #[test]
    fn clustered_is_connected_exact_and_deterministic() {
        let g = clustered_multigraph(100, 1_000, 8, 3, 11);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 1_000);
        assert!(!g.has_loops());
        assert!(edges_connected(&g));
        assert_eq!(g, clustered_multigraph(100, 1_000, 8, 3, 11));
        assert_ne!(g, clustered_multigraph(100, 1_000, 8, 3, 12));
    }

    #[test]
    fn clustered_single_cluster_has_no_ring() {
        let g = clustered_multigraph(10, 50, 1, 5, 2);
        assert_eq!(g.num_edges(), 50);
        assert!(edges_connected(&g));
    }

    #[test]
    fn clustered_cross_edges_stay_sparse() {
        let clusters = 8;
        let g = clustered_multigraph(80, 2_000, clusters, 2, 5);
        // Count edges whose endpoints fall in different blocks.
        let block = 80 / clusters;
        let cross = g
            .edges()
            .filter(|(_, ep)| ep.u.index() / block != ep.v.index() / block)
            .count();
        assert_eq!(cross, clusters * 2, "only the ring links cross blocks");
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn clustered_too_few_edges_panics() {
        let _ = clustered_multigraph(100, 10, 8, 3, 0);
    }
}
