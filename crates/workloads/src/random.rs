//! Unstructured random transfer graphs.

use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random multigraph with `n` nodes and exactly `m` edges, endpoints
/// drawn uniformly (no self-loops). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2` while `m > 0` (no loop-free edge exists).
#[must_use]
pub fn uniform_multigraph(n: usize, m: usize, seed: u64) -> Multigraph {
    assert!(
        m == 0 || n >= 2,
        "need at least two disks to generate transfers"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..m {
        loop {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

/// A random multigraph whose endpoint popularity follows a Zipf-like
/// power law with exponent `alpha` (`alpha = 0` degenerates to uniform):
/// hot disks attract most transfers, matching skewed demand in storage
/// clusters. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2` while `m > 0`, or if `alpha` is negative or
/// non-finite.
#[must_use]
pub fn power_law_multigraph(n: usize, m: usize, alpha: f64, seed: u64) -> Multigraph {
    assert!(
        m == 0 || n >= 2,
        "need at least two disks to generate transfers"
    );
    assert!(
        alpha.is_finite() && alpha >= 0.0,
        "alpha must be a non-negative finite number"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let draw = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.gen();
        cumulative.partition_point(|&c| c < x).min(n - 1)
    };
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..m {
        loop {
            let u = draw(&mut rng);
            let v = draw(&mut rng);
            if u != v {
                g.add_edge(u.into(), v.into());
                break;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_multigraph(10, 40, 7);
        let b = uniform_multigraph(10, 40, 7);
        assert_eq!(a, b);
        let c = uniform_multigraph(10, 40, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_edge_count_no_loops() {
        let g = uniform_multigraph(5, 100, 1);
        assert_eq!(g.num_edges(), 100);
        assert!(!g.has_loops());
    }

    #[test]
    fn zero_edges_fine() {
        let g = uniform_multigraph(1, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two disks")]
    fn one_node_with_edges_panics() {
        let _ = uniform_multigraph(1, 5, 0);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law_multigraph(20, 400, 1.5, 3);
        assert_eq!(g.num_edges(), 400);
        // The hottest disk should far exceed the average degree (40).
        let max_deg = g.max_degree();
        assert!(max_deg > 60, "expected skew, max degree {max_deg}");
    }

    #[test]
    fn power_law_alpha_zero_roughly_uniform() {
        let g = power_law_multigraph(10, 1000, 0.0, 9);
        // Expected degree 200 per node; allow generous slack.
        for v in g.nodes() {
            let d = g.degree(v);
            assert!((120..=280).contains(&d), "degree {d} too far from uniform");
        }
    }

    #[test]
    fn power_law_deterministic() {
        assert_eq!(
            power_law_multigraph(8, 50, 1.0, 4),
            power_law_multigraph(8, 50, 1.0, 4)
        );
    }
}
