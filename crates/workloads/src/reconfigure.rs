//! Load-balancing reconfiguration deltas.
//!
//! A layout maps each data item to a disk. When demand shifts, a new
//! layout is computed and every item whose placement changed contributes
//! one transfer edge `(old disk, new disk)` — exactly how the paper's §I
//! describes layout reconfiguration producing a transfer graph.

use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A reconfiguration delta: `items` data items placed uniformly at random,
/// then re-placed uniformly at random; items that moved become transfer
/// edges. Roughly a fraction `(n-1)/n` of items move. Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `n < 2` while `items > 0`.
#[must_use]
pub fn load_balance_delta(n: usize, items: usize, seed: u64) -> Multigraph {
    assert!(items == 0 || n >= 2, "need at least two disks to rebalance");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..items {
        let old = rng.gen_range(0..n);
        let new = rng.gen_range(0..n);
        if old != new {
            g.add_edge(old.into(), new.into());
        }
    }
    g
}

/// A *partial* rebalance: only a fraction `move_fraction` of items change
/// disks (demand shifted mildly). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `move_fraction` is outside `[0, 1]` or `n < 2` while
/// `items > 0`.
#[must_use]
pub fn partial_rebalance(n: usize, items: usize, move_fraction: f64, seed: u64) -> Multigraph {
    assert!(
        (0.0..=1.0).contains(&move_fraction),
        "move_fraction must be in [0, 1]"
    );
    assert!(items == 0 || n >= 2, "need at least two disks to rebalance");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..items {
        if rng.gen_bool(move_fraction) {
            let old = rng.gen_range(0..n);
            let mut new = rng.gen_range(0..n - 1);
            if new >= old {
                new += 1;
            }
            g.add_edge(old.into(), new.into());
        }
    }
    g
}

/// A hot-spot drain: a fraction of the items on one overloaded disk are
/// spread across the others — a skewed star-shaped delta.
///
/// # Panics
///
/// Panics if `n < 2` while `moved_items > 0` or `hot >= n`.
#[must_use]
pub fn hot_spot_drain(n: usize, hot: usize, moved_items: usize, seed: u64) -> Multigraph {
    assert!(moved_items == 0 || n >= 2, "need at least two disks");
    assert!(hot < n || moved_items == 0, "hot disk index out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..moved_items {
        let mut target = rng.gen_range(0..n - 1);
        if target >= hot {
            target += 1;
        }
        g.add_edge(hot.into(), target.into());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_rebalance_moves_most_items() {
        let g = load_balance_delta(10, 1000, 5);
        // E[moved] = 900; very concentrated.
        assert!((800..=970).contains(&g.num_edges()));
        assert!(!g.has_loops());
    }

    #[test]
    fn partial_rebalance_fraction_respected() {
        let g = partial_rebalance(10, 1000, 0.1, 5);
        assert!((60..=150).contains(&g.num_edges()), "got {}", g.num_edges());
        let none = partial_rebalance(10, 100, 0.0, 5);
        assert_eq!(none.num_edges(), 0);
    }

    #[test]
    fn hot_spot_is_a_star() {
        let g = hot_spot_drain(6, 2, 50, 1);
        assert_eq!(g.num_edges(), 50);
        assert_eq!(g.degree(2.into()), 50);
        for v in g.nodes() {
            if v.index() != 2 {
                assert!(g.degree(v) < 50);
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(load_balance_delta(8, 100, 3), load_balance_delta(8, 100, 3));
        assert_eq!(
            partial_rebalance(8, 100, 0.5, 3),
            partial_rebalance(8, 100, 0.5, 3)
        );
        assert_eq!(hot_spot_drain(8, 0, 30, 3), hot_spot_drain(8, 0, 30, 3));
    }
}
