//! Seeded workload generators for data-migration experiments.
//!
//! The ICDCS 2011 paper motivates migration with three operational
//! scenarios (§I): periodic load-balancing reconfiguration, disk
//! additions, and disk removals/failures. It evaluates analytically and
//! uses no production traces; these generators synthesize the same shapes
//! with deterministic seeds, so every experiment in `EXPERIMENTS.md` is
//! exactly reproducible.
//!
//! * [`random`] — unstructured random multigraphs (uniform and power-law
//!   endpoint popularity) for stress-testing the solvers.
//! * [`reconfigure`] — load-balancing deltas: items move from an old
//!   layout to a new one.
//! * [`disk_ops`] — disk-addition rebuilds and disk-removal drains
//!   (naturally bipartite transfer graphs).
//! * [`capacities`] — transfer-constraint profiles: uniform, even-only,
//!   mixed parity, skewed tiers, and the single-slow-disk profile of the
//!   bottleneck experiment (E7).
//! * [`trace`] — item-level trace files for replaying external workloads
//!   through the planners and the simulator.
//! * [`availability`] — rack/zone failure-domain models (MTBF/MTTR,
//!   correlated failures, spare pools) compiled by a seeded sampler into
//!   executable fault-plan text for `dmig-sim`'s executor.
//!
//! ```
//! use dmig_workloads::{random, capacities};
//! use dmig_core::MigrationProblem;
//!
//! let g = random::uniform_multigraph(16, 80, 42);
//! let caps = capacities::mixed_parity(16, 1, 5, 42);
//! let problem = MigrationProblem::new(g, caps)?;
//! assert_eq!(problem.num_items(), 80);
//! # Ok::<(), dmig_core::ProblemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod capacities;
pub mod disk_ops;
pub mod random;
pub mod reconfigure;
pub mod trace;
