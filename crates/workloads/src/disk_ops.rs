//! Disk addition and removal scenarios (naturally bipartite).
//!
//! Adding disks triggers a rebuild that moves items from the old disks to
//! the new ones; removing (or losing) disks triggers a drain that moves
//! their items to the survivors. Both transfer graphs are bipartite — the
//! case `dmig-core`'s bipartite-optimal solver schedules exactly.

use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Disk addition: `n_old` existing disks, `n_new` fresh ones appended as
/// nodes `n_old..n_old+n_new`; `items` data items migrate from a random
/// old disk to a random new disk. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `items > 0` and either side is empty.
#[must_use]
pub fn disk_addition(n_old: usize, n_new: usize, items: usize, seed: u64) -> Multigraph {
    assert!(
        items == 0 || (n_old > 0 && n_new > 0),
        "both old and new disks required"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n_old + n_new);
    for _ in 0..items {
        let from = rng.gen_range(0..n_old);
        let to = n_old + rng.gen_range(0..n_new);
        g.add_edge(from.into(), to.into());
    }
    g
}

/// Disk removal/failure drain: disks `0..n_removed` are being evacuated;
/// each of their `items` data items moves to a random surviving disk
/// (`n_removed..n`). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `items > 0` and there is no removed disk or no survivor.
#[must_use]
pub fn disk_removal(n: usize, n_removed: usize, items: usize, seed: u64) -> Multigraph {
    assert!(
        items == 0 || (n_removed > 0 && n_removed < n),
        "need at least one removed disk and one survivor"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for _ in 0..items {
        let from = rng.gen_range(0..n_removed);
        let to = rng.gen_range(n_removed..n);
        g.add_edge(from.into(), to.into());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::bipartite::is_bipartite;

    #[test]
    fn addition_is_bipartite() {
        let g = disk_addition(8, 2, 120, 11);
        assert_eq!(g.num_edges(), 120);
        assert!(is_bipartite(&g));
        // New disks only receive.
        for v in 8..10usize {
            assert!(g.degree(v.into()) > 0);
        }
    }

    #[test]
    fn removal_is_bipartite_and_drains() {
        let g = disk_removal(10, 3, 90, 2);
        assert_eq!(g.num_edges(), 90);
        assert!(is_bipartite(&g));
        let drained: usize = (0..3).map(|v| g.degree(v.into())).sum();
        assert_eq!(drained, 90);
    }

    #[test]
    fn deterministic() {
        assert_eq!(disk_addition(5, 2, 40, 9), disk_addition(5, 2, 40, 9));
        assert_eq!(disk_removal(7, 2, 40, 9), disk_removal(7, 2, 40, 9));
    }

    #[test]
    fn zero_items_edge_cases() {
        assert_eq!(disk_addition(0, 0, 0, 1).num_edges(), 0);
        assert_eq!(disk_removal(0, 0, 0, 1).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "survivor")]
    fn removal_without_survivors_panics() {
        let _ = disk_removal(3, 3, 1, 0);
    }
}
