//! Transfer-constraint (capacity) profiles.
//!
//! Heterogeneity is the paper's whole premise: disks added over the years
//! differ in speed, and a disk serving live traffic should take fewer
//! concurrent migrations. These profiles cover the regimes the
//! experiments sweep.

use dmig_core::Capacities;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Every disk gets constraint `c`.
#[must_use]
pub fn uniform(n: usize, c: u32) -> Capacities {
    Capacities::uniform(n, c)
}

/// Random even constraints in `{2, 4, …, 2·half_max}` — the domain of the
/// optimal even-capacity algorithm (§IV). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `half_max == 0`.
#[must_use]
pub fn random_even(n: usize, half_max: u32, seed: u64) -> Capacities {
    assert!(half_max >= 1, "half_max must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| 2 * rng.gen_range(1..=half_max)).collect()
}

/// Random constraints in `[lo, hi]`, any parity. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `lo == 0` or `lo > hi`.
#[must_use]
pub fn mixed_parity(n: usize, lo: u32, hi: u32, seed: u64) -> Capacities {
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// A tiered fleet: a fraction `fast_fraction` of disks are fast
/// (constraint `fast`), the rest slow (constraint `slow`) — modelling old
/// and new hardware generations side by side. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `fast_fraction` is outside `[0, 1]` or either constraint is 0.
#[must_use]
pub fn tiered(n: usize, fast: u32, slow: u32, fast_fraction: f64, seed: u64) -> Capacities {
    assert!(
        (0.0..=1.0).contains(&fast_fraction),
        "fast_fraction must be in [0, 1]"
    );
    assert!(fast >= 1 && slow >= 1, "constraints must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(fast_fraction) {
                fast
            } else {
                slow
            }
        })
        .collect()
}

/// Derives transfer constraints from hardware bandwidths: disk `v` gets
/// `max(1, round(per_unit · B_v))` concurrent-transfer slots, coupling the
/// scheduling input to the simulator's hardware model (a disk twice as
/// fast tolerates twice the concurrent migration load).
///
/// # Panics
///
/// Panics if `per_unit` is not strictly positive and finite, or any
/// bandwidth is not strictly positive and finite.
#[must_use]
pub fn proportional_to_bandwidth(bandwidths: &[f64], per_unit: f64) -> Capacities {
    assert!(
        per_unit.is_finite() && per_unit > 0.0,
        "per_unit must be positive and finite"
    );
    bandwidths
        .iter()
        .map(|&b| {
            assert!(
                b.is_finite() && b > 0.0,
                "bandwidths must be positive and finite"
            );
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let c = (per_unit * b).round() as u32;
            c.max(1)
        })
        .collect()
}

/// Everyone gets `fast` except disk `slow_disk`, which gets `slow` — the
/// single-bottleneck profile of experiment E7 (§I: "a slow node can be a
/// bottleneck in the schedule").
///
/// # Panics
///
/// Panics if `slow_disk >= n` or either constraint is 0.
#[must_use]
pub fn one_slow(n: usize, fast: u32, slow: u32, slow_disk: usize) -> Capacities {
    assert!(slow_disk < n, "slow disk index out of range");
    assert!(fast >= 1 && slow >= 1, "constraints must be positive");
    (0..n)
        .map(|v| if v == slow_disk { slow } else { fast })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile() {
        let c = uniform(4, 3);
        assert_eq!(c.as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn random_even_is_even() {
        let c = random_even(50, 4, 7);
        assert!(c.all_even());
        assert!(c.as_slice().iter().all(|&x| (2..=8).contains(&x)));
        assert_eq!(c, random_even(50, 4, 7));
    }

    #[test]
    fn mixed_parity_in_range() {
        let c = mixed_parity(100, 1, 5, 3);
        assert!(c.as_slice().iter().all(|&x| (1..=5).contains(&x)));
        assert!(!c.all_even() || c.as_slice().iter().all(|&x| x % 2 == 0));
    }

    #[test]
    fn tiered_has_both_tiers() {
        let c = tiered(200, 8, 1, 0.3, 5);
        let fast = c.as_slice().iter().filter(|&&x| x == 8).count();
        assert!((30..=90).contains(&fast), "fast count {fast}");
        assert!(c.as_slice().iter().all(|&x| x == 8 || x == 1));
    }

    #[test]
    fn one_slow_profile() {
        let c = one_slow(5, 4, 1, 2);
        assert_eq!(c.as_slice(), &[4, 4, 1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_slow_bad_index() {
        let _ = one_slow(3, 2, 1, 3);
    }

    #[test]
    fn proportional_scales_and_floors() {
        let c = proportional_to_bandwidth(&[1.0, 2.0, 0.1, 3.4], 2.0);
        assert_eq!(c.as_slice(), &[2, 4, 1, 7]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn proportional_rejects_bad_bandwidth() {
        let _ = proportional_to_bandwidth(&[0.0], 1.0);
    }
}
