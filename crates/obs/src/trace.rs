//! Chrome `trace_event` and HTML timeline export for span trees.
//!
//! The snapshot's span hierarchy flattens to the Trace Event Format that
//! Perfetto and `chrome://tracing` load natively: one `B`/`E` duration pair
//! per closed span (a lone `B` for spans still open at snapshot time), one
//! track (`tid`) per recorder thread ordinal, all inside a single process
//! (`pid` 0). Cross-thread parenting from PR 2 is what makes the tracks
//! meaningful: a worker's `component` span carries the worker's own `tid`,
//! so the component fan-out and the Euler-split recursion render as
//! parallel lanes under the coordinator.
//!
//! Events are emitted in a depth-first walk of the span tree. Within one
//! track that order is begin-time order with properly nested `B`/`E`
//! pairs, which is exactly what the format requires; across tracks no
//! ordering is needed (viewers sort by `ts` per track).
//!
//! [`html_timeline`] renders the same data as a dependency-free HTML page —
//! a poor man's Perfetto for hosts without a trace viewer.

use std::fmt::Write as _;

use crate::json;
use crate::snapshot::{Snapshot, SpanNode};
use crate::value::Value;

/// One span in track form: the tree structure is kept (children), but all
/// timing is absolute, ready for event emission. Convertible both from a
/// live [`Snapshot`] and from a parsed `dmig-obs/1` snapshot JSON
/// (`dmig obs export-trace`).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Span name.
    pub name: String,
    /// Optional per-instance label (becomes `args.label`).
    pub label: Option<String>,
    /// Track id (recorder thread ordinal).
    pub tid: u64,
    /// Start in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (`None` = still open at snapshot time).
    pub duration_ns: Option<u64>,
    /// Child spans in open order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    fn from_node(node: &SpanNode) -> TraceSpan {
        TraceSpan {
            name: node.name.clone(),
            label: node.label.clone(),
            tid: node.thread,
            start_ns: node.start_ns,
            duration_ns: node.duration_ns,
            children: node.children.iter().map(TraceSpan::from_node).collect(),
        }
    }

    fn from_value(v: &Value) -> Option<TraceSpan> {
        let us_to_ns = |x: f64| (x * 1e3).max(0.0).round() as u64;
        Some(TraceSpan {
            name: v.get_path("name")?.as_str()?.to_string(),
            label: v
                .get_path("label")
                .and_then(Value::as_str)
                .map(str::to_string),
            tid: v.get_path("thread")?.as_f64()? as u64,
            start_ns: us_to_ns(v.get_path("start_us")?.as_f64()?),
            duration_ns: v
                .get_path("duration_us")
                .and_then(Value::as_f64)
                .map(us_to_ns),
            children: v
                .get_path("children")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(TraceSpan::from_value)
                .collect(),
        })
    }
}

/// Extracts the span forest of a live snapshot.
#[must_use]
pub fn spans_of_snapshot(snapshot: &Snapshot) -> Vec<TraceSpan> {
    snapshot.spans.iter().map(TraceSpan::from_node).collect()
}

/// Extracts the span forest of a parsed `dmig-obs/1` snapshot JSON.
///
/// # Errors
///
/// Returns a message when the document carries no parseable `spans` array.
pub fn spans_of_snapshot_value(doc: &Value) -> Result<Vec<TraceSpan>, String> {
    let spans = doc
        .get_path("spans")
        .and_then(Value::as_array)
        .ok_or("snapshot JSON has no \"spans\" array (expected dmig-obs/1 schema)")?;
    Ok(spans.iter().filter_map(TraceSpan::from_value).collect())
}

fn push_event(
    out: &mut String,
    first: &mut bool,
    ph: char,
    name: &str,
    tid: u64,
    ts_us: f64,
    label: Option<&str>,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "  {{\"name\":{},\"cat\":\"dmig\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{tid},\"ts\":{}",
        json::string(name),
        json::number(ts_us),
    );
    if let Some(l) = label {
        let _ = write!(out, ",\"args\":{{\"label\":{}}}", json::string(l));
    }
    out.push('}');
}

fn emit_span(span: &TraceSpan, out: &mut String, first: &mut bool, ancestor_end: Option<u64>) {
    let start_us = span.start_ns as f64 / 1e3;
    push_event(
        out,
        first,
        'B',
        &span.name,
        span.tid,
        start_us,
        span.label.as_deref(),
    );
    // A span with no duration was still open at snapshot time. If some
    // ancestor *did* close (a reset-straddling guard, a snapshot taken from
    // another thread), clamp the open span to that ancestor's end so the
    // track's B/E events stay stack-disciplined; a fully open chain keeps
    // its lone `B`s and viewers render unfinished slices.
    let end_ns = span
        .duration_ns
        .map(|d| span.start_ns.saturating_add(d))
        .or(ancestor_end);
    for child in &span.children {
        emit_span(child, out, first, end_ns);
    }
    if let Some(end) = end_ns {
        push_event(
            out,
            first,
            'E',
            &span.name,
            span.tid,
            end as f64 / 1e3,
            None,
        );
    }
}

fn collect_tids(spans: &[TraceSpan], tids: &mut Vec<u64>) {
    for s in spans {
        if !tids.contains(&s.tid) {
            tids.push(s.tid);
        }
        collect_tids(&s.children, tids);
    }
}

/// Serializes a span forest as Chrome Trace Event Format JSON
/// (`{"traceEvents": [...]}` object form), loadable in Perfetto and
/// `chrome://tracing`.
#[must_use]
pub fn chrome_trace(spans: &[TraceSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    // Metadata: process and per-track thread names (tid 0 = the first
    // thread that ever recorded, normally the coordinator).
    let mut tids = Vec::new();
    collect_tids(spans, &mut tids);
    tids.sort_unstable();
    if !tids.is_empty() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(
            "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"dmig\"}}",
        );
        for &tid in &tids {
            let label = if tid == 0 {
                "coordinator (t0)".to_string()
            } else {
                format!("worker t{tid}")
            };
            if !first {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json::string(&label)
            );
        }
    }
    for span in spans {
        emit_span(span, &mut out, &mut first, None);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Convenience: Chrome trace JSON straight from a live snapshot.
#[must_use]
pub fn chrome_trace_of(snapshot: &Snapshot) -> String {
    chrome_trace(&spans_of_snapshot(snapshot))
}

/// Aggregated timing for all spans sharing one name: a flame-graph-style
/// rollup row. `self_ns` is wall time minus the summed durations of direct
/// children (saturating at zero — a parent whose children ran concurrently
/// on other tracks can be "covered" more than once over).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RollupRow {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of span instances.
    pub count: u64,
    /// Summed wall-clock duration (open spans contribute zero).
    pub total_ns: u64,
    /// Summed self time: duration minus direct children, clamped at zero.
    pub self_ns: u64,
}

fn accumulate_rollup(span: &TraceSpan, acc: &mut std::collections::BTreeMap<String, RollupRow>) {
    let dur = span.duration_ns.unwrap_or(0);
    let child_sum: u64 = span
        .children
        .iter()
        .map(|c| c.duration_ns.unwrap_or(0))
        .sum();
    let row = acc.entry(span.name.clone()).or_default();
    row.count += 1;
    row.total_ns += dur;
    row.self_ns += dur.saturating_sub(child_sum);
    for c in &span.children {
        accumulate_rollup(c, acc);
    }
}

/// Flame-style self-time rollup of a span forest: one row per span name,
/// sorted by self time descending (ties by name), so the largest remaining
/// serial chunk of a solve is the first row. Rendered into
/// [`html_timeline`] and by `dmig obs flame`.
#[must_use]
pub fn self_time_rollup(spans: &[TraceSpan]) -> Vec<RollupRow> {
    let mut acc = std::collections::BTreeMap::new();
    for s in spans {
        accumulate_rollup(s, &mut acc);
    }
    let mut rows: Vec<RollupRow> = acc
        .into_iter()
        .map(|(name, mut row)| {
            row.name = name;
            row
        })
        .collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders a rollup as an aligned plain-text table (the `dmig obs flame`
/// output).
#[must_use]
pub fn render_rollup_text(rows: &[RollupRow]) -> String {
    let mut out = String::new();
    let grand_self: u64 = rows.iter().map(|r| r.self_ns).sum();
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>12}  {:>12}  {:>6}",
        "span", "count", "total ms", "self ms", "self%"
    );
    for r in rows {
        let pct = if grand_self == 0 {
            0.0
        } else {
            r.self_ns as f64 / grand_self as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>12.3}  {:>12.3}  {:>5.1}%",
            r.name,
            r.count,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
            pct
        );
    }
    out
}

fn flatten_rows(
    span: &TraceSpan,
    depth: usize,
    rows: &mut Vec<(u64, usize, String, u64, u64)>,
    end_ns: &mut u64,
) {
    let dur = span.duration_ns.unwrap_or(0);
    *end_ns = (*end_ns).max(span.start_ns + dur);
    let mut title = span.name.clone();
    if let Some(l) = &span.label {
        let _ = write!(title, " {l}");
    }
    rows.push((span.tid, depth, title, span.start_ns, dur));
    for c in &span.children {
        flatten_rows(c, depth + 1, rows, end_ns);
    }
}

/// One disk's utilization summary, embedded in the HTML timeline as a
/// sortable table row and a heatmap cell (`dmig simulate --trace-html`).
#[derive(Clone, Debug, PartialEq)]
pub struct DiskUtilRow {
    /// Disk id.
    pub disk: usize,
    /// Busy time (same unit as the simulation clock).
    pub busy: f64,
    /// Busy time over makespan, in `[0, 1]`.
    pub utilization: f64,
}

/// Renders the span forest as a self-contained HTML timeline: one swimlane
/// per track, bars positioned by start/duration, hover for exact timings.
/// No external assets, so the file opens anywhere a browser exists.
#[must_use]
pub fn html_timeline(spans: &[TraceSpan]) -> String {
    html_timeline_with_disks(spans, &[])
}

/// [`html_timeline`] plus a per-disk utilization section: a heatmap lane
/// (one cell per disk, cold blue → hot red by utilization) and a
/// click-to-sort table, so the bottleneck disks of a simulation are
/// visible without a spreadsheet round-trip.
#[must_use]
pub fn html_timeline_with_disks(spans: &[TraceSpan], disks: &[DiskUtilRow]) -> String {
    let mut rows = Vec::new();
    let mut end_ns = 1u64;
    for s in spans {
        flatten_rows(s, 0, &mut rows, &mut end_ns);
    }
    let mut tids: Vec<u64> = rows.iter().map(|r| r.0).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::from(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>dmig trace</title>\n<style>\n\
         body{font:13px monospace;background:#111;color:#ddd;margin:16px}\n\
         .lane{border-top:1px solid #333;padding:2px 0;position:relative}\n\
         .lane h2{font-size:12px;color:#8ab;margin:2px 0}\n\
         .row{position:relative;height:16px}\n\
         .bar{position:absolute;height:14px;background:#3a6ea5;border:1px solid #7aa;\
         border-radius:2px;overflow:hidden;white-space:nowrap;font-size:10px;\
         color:#fff;padding-left:2px;box-sizing:border-box}\n\
         .bar.open{background:#8a5a2a}\n\
         table.flame{border-collapse:collapse;margin:8px 0 16px}\n\
         table.flame th,table.flame td{border:1px solid #333;padding:2px 8px;\
         text-align:right}\n\
         table.flame td:first-child,table.flame th:first-child{text-align:left}\n\
         table.flame .pct{position:relative}\n\
         table.flame .pctbar{position:absolute;left:0;top:0;bottom:0;\
         background:#6a3a3a;z-index:-1}\n\
         table.flame th.sortable{cursor:pointer;text-decoration:underline}\n\
         .heat{margin:4px 0 12px;line-height:0}\n\
         .heat span{display:inline-block;width:14px;height:14px;margin:1px;\
         border:1px solid #333}\n\
         </style></head><body>\n<h1>dmig span timeline</h1>\n",
    );
    let _ = writeln!(
        out,
        "<p>total {:.3} ms · {} spans · {} tracks</p>",
        end_ns as f64 / 1e6,
        rows.len(),
        tids.len()
    );

    // Flame-style self-time rollup: the largest remaining serial chunk of
    // the solve leads the table.
    let rollup = self_time_rollup(spans);
    let grand_self: u64 = rollup.iter().map(|r| r.self_ns).sum();
    out.push_str(
        "<h2>self-time rollup</h2>\n<table class=\"flame\">\n\
         <tr><th>span</th><th>count</th><th>total ms</th>\
         <th>self ms</th><th>self %</th></tr>\n",
    );
    for r in &rollup {
        let pct = if grand_self == 0 {
            0.0
        } else {
            r.self_ns as f64 / grand_self as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td>\
             <td class=\"pct\"><span class=\"pctbar\" style=\"width:{pct:.1}%\">\
             </span>{pct:.1}%</td></tr>",
            json::escape(&r.name),
            r.count,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
        );
    }
    out.push_str("</table>\n");

    if !disks.is_empty() {
        // Heatmap lane: one cell per disk, color interpolated from cold
        // blue (idle) to hot red (utilization 1.0), hover for the numbers.
        out.push_str("<h2>disk utilization</h2>\n<div class=\"heat\">");
        for d in disks {
            let u = d.utilization.clamp(0.0, 1.0);
            let lerp = |a: f64, b: f64| (a + u * (b - a)).round() as i64;
            let _ = write!(
                out,
                "<span style=\"background:rgb({},{},{})\" \
                 title=\"disk {}: {:.1}% busy {:.3}\"></span>",
                lerp(26.0, 204.0),
                lerp(58.0, 51.0),
                lerp(90.0, 51.0),
                d.disk,
                u * 100.0,
                d.busy,
            );
        }
        out.push_str("</div>\n");
        out.push_str(
            "<table class=\"flame\" id=\"disks\">\n<tr>\
             <th class=\"sortable\" onclick=\"sortDisks(0)\">disk</th>\
             <th class=\"sortable\" onclick=\"sortDisks(1)\">busy</th>\
             <th class=\"sortable\" onclick=\"sortDisks(2)\">utilization</th>\
             </tr>\n",
        );
        for d in disks {
            let pct = d.utilization.clamp(0.0, 1.0) * 100.0;
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{:.3}</td>\
                 <td class=\"pct\"><span class=\"pctbar\" style=\"width:{pct:.1}%\">\
                 </span>{:.4}</td></tr>",
                d.disk, d.busy, d.utilization,
            );
        }
        out.push_str(
            "</table>\n<script>\nfunction sortDisks(col){\
             const t=document.getElementById('disks');\
             const rows=Array.from(t.rows).slice(1);\
             const dir=t.dataset.dir==='asc'?-1:1;\
             t.dataset.dir=dir===1?'asc':'desc';\
             rows.sort(function(a,b){return dir*(parseFloat(a.cells[col].textContent)\
             -parseFloat(b.cells[col].textContent));});\
             rows.forEach(function(r){t.appendChild(r);});}\n</script>\n",
        );
    }

    for tid in tids {
        let _ = writeln!(out, "<div class=\"lane\"><h2>track t{tid}</h2>");
        for (row_tid, depth, title, start, dur) in &rows {
            if *row_tid != tid {
                continue;
            }
            let left = *start as f64 / end_ns as f64 * 100.0;
            let width = (*dur as f64 / end_ns as f64 * 100.0).max(0.05);
            let open = if *dur == 0 { " open" } else { "" };
            let _ = writeln!(
                out,
                "<div class=\"row\" style=\"margin-left:{}px\">\
                 <div class=\"bar{open}\" style=\"left:{left:.4}%;width:{width:.4}%\" \
                 title=\"{} @ {:.3}ms +{:.3}ms\">{}</div></div>",
                depth * 8,
                json::escape(title),
                *start as f64 / 1e6,
                *dur as f64 / 1e6,
                json::escape(title),
            );
        }
        out.push_str("</div>\n");
    }
    out.push_str("</body></html>\n");
    out
}

/// Convenience: HTML timeline straight from a live snapshot.
#[must_use]
pub fn html_timeline_of(snapshot: &Snapshot) -> String {
    html_timeline(&spans_of_snapshot(snapshot))
}

/// Structural validation of Chrome trace JSON, used by tests and by
/// `dmig obs export-trace --check`: parses the document, then checks that
/// every `E` closes the most recent unclosed `B` with the same name on the
/// same track and that timestamps never decrease within a track.
///
/// # Errors
///
/// Returns the first violated invariant as a message.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = Value::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get_path("traceEvents")
        .and_then(Value::as_array)
        .ok_or("no traceEvents array")?;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut stats = TraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get_path("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get_path("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let tid = ev
            .get_path("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        if ev.get_path("pid").and_then(Value::as_f64).is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        if ph == "M" {
            continue; // Metadata events carry no timestamp.
        }
        let ts = ev
            .get_path("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i}: ts {ts} decreases on track {tid} (prev {prev})"
            ));
        }
        *prev = ts;
        match ph {
            "B" => {
                stacks.entry(tid).or_default().push(name.to_string());
                stats.begins += 1;
                if !stats.tracks.contains(&tid) {
                    stats.tracks.push(tid);
                }
            }
            "E" => {
                let top = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E without open B on track {tid}"))?;
                if top != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" does not match open B \"{top}\" on track {tid}"
                    ));
                }
                stats.ends += 1;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    stats.open = stacks.values().map(Vec::len).sum();
    stats.tracks.sort_unstable();
    Ok(stats)
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of `B` events.
    pub begins: usize,
    /// Number of `E` events.
    pub ends: usize,
    /// `B` events never closed (spans open at snapshot time).
    pub open: usize,
    /// Distinct track ids that carried at least one span.
    pub tracks: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Vec<TraceSpan> {
        vec![TraceSpan {
            name: "solve_split".into(),
            label: Some("threads=2".into()),
            tid: 0,
            start_ns: 1_000,
            duration_ns: Some(9_000_000),
            children: vec![
                TraceSpan {
                    name: "component".into(),
                    label: Some("#0".into()),
                    tid: 1,
                    start_ns: 5_000,
                    duration_ns: Some(2_000_000),
                    children: vec![],
                },
                TraceSpan {
                    name: "component".into(),
                    label: Some("#1".into()),
                    tid: 0,
                    start_ns: 6_000,
                    duration_ns: None,
                    children: vec![],
                },
            ],
        }]
    }

    #[test]
    fn chrome_trace_validates_and_tracks_workers() {
        let t = chrome_trace(&forest());
        let stats = validate_chrome_trace(&t).expect("valid trace");
        assert_eq!(stats.begins, 3);
        // `component #1` never closed, but its same-track parent did: its E
        // is clamped to the parent's end so track 0 stays stack-disciplined.
        assert_eq!(stats.ends, 3);
        assert_eq!(stats.open, 0);
        assert_eq!(stats.tracks, vec![0, 1]);
        assert!(t.contains("\"thread_name\""));
        assert!(t.contains("worker t1"));
    }

    #[test]
    fn fully_open_chain_keeps_lone_begins() {
        let spans = vec![TraceSpan {
            name: "solve_split".into(),
            label: None,
            tid: 0,
            start_ns: 1_000,
            duration_ns: None,
            children: vec![TraceSpan {
                name: "component".into(),
                label: Some("#0".into()),
                tid: 0,
                start_ns: 2_000,
                duration_ns: None,
                children: vec![],
            }],
        }];
        let stats = validate_chrome_trace(&chrome_trace(&spans)).expect("valid trace");
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 0, "no closed ancestor to clamp against");
        assert_eq!(stats.open, 2);
    }

    #[test]
    fn validator_rejects_mismatched_and_unordered_events() {
        let bad_pair = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":1},
            {"name":"b","ph":"E","pid":0,"tid":0,"ts":2}]}"#;
        assert!(validate_chrome_trace(bad_pair)
            .unwrap_err()
            .contains("does not match"));
        let orphan_end = r#"{"traceEvents":[
            {"name":"a","ph":"E","pid":0,"tid":3,"ts":2}]}"#;
        assert!(validate_chrome_trace(orphan_end)
            .unwrap_err()
            .contains("E without open B"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":5},
            {"name":"a","ph":"E","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("decreases"));
    }

    #[test]
    fn snapshot_json_roundtrips_to_trace() {
        // Build a live snapshot-shaped JSON and re-import it.
        let snap_json = r#"{
          "schema": "dmig-obs/1",
          "counters": {}, "gauges": {}, "histograms": {},
          "spans": [{"name": "solve_even", "label": null, "thread": 0,
                     "start_us": 1.5, "duration_us": 350.0,
                     "children": [{"name": "quota", "label": "lvl=1",
                                   "thread": 2, "start_us": 2.0,
                                   "duration_us": 100.0, "children": []}]}]
        }"#;
        let doc = Value::parse(snap_json).unwrap();
        let spans = spans_of_snapshot_value(&doc).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].children[0].tid, 2);
        let stats = validate_chrome_trace(&chrome_trace(&spans)).unwrap();
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.tracks, vec![0, 2]);
    }

    #[test]
    fn html_timeline_contains_lanes_and_bars() {
        let html = html_timeline(&forest());
        assert!(html.contains("track t0"));
        assert!(html.contains("track t1"));
        assert!(html.contains("component #0"));
        assert!(html.contains("class=\"bar open\""), "open span styled");
        assert!(html.contains("self-time rollup"), "flame table embedded");
        assert!(html.starts_with("<!doctype html>"));
    }

    #[test]
    fn html_timeline_embeds_disk_table_and_heatmap() {
        let disks = vec![
            DiskUtilRow {
                disk: 0,
                busy: 4.0,
                utilization: 1.0,
            },
            DiskUtilRow {
                disk: 1,
                busy: 1.0,
                utilization: 0.25,
            },
        ];
        let html = html_timeline_with_disks(&forest(), &disks);
        assert!(html.contains("disk utilization"));
        assert!(html.contains("id=\"disks\""), "sortable table present");
        assert!(html.contains("sortDisks(2)"), "utilization column sorts");
        assert!(html.contains("class=\"heat\""), "heatmap lane present");
        assert!(html.contains("disk 0: 100.0%"));
        // Fully-hot cell renders the hot end of the color ramp.
        assert!(html.contains("rgb(204,51,51)"), "{html}");
        // No disks: the section disappears and the plain renderer matches.
        let plain = html_timeline(&forest());
        assert!(!plain.contains("disk utilization"));
        assert_eq!(plain, html_timeline_with_disks(&forest(), &[]));
    }

    #[test]
    fn rollup_subtracts_children_and_sorts_by_self_time() {
        let rows = self_time_rollup(&forest());
        // solve_split: 9ms total, children 2ms + 0ms (open) → 7ms self.
        // component: 2ms + 0ms total, no children → 2ms self.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "solve_split");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[0].total_ns, 9_000_000);
        assert_eq!(rows[0].self_ns, 7_000_000);
        assert_eq!(rows[1].name, "component");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_ns, 2_000_000);
        assert_eq!(rows[1].self_ns, 2_000_000);
    }

    #[test]
    fn rollup_self_time_saturates_for_concurrent_children() {
        // Parent 1ms, two concurrent children of 800µs each on other
        // tracks: self time clamps at zero instead of going negative.
        let child = |tid| TraceSpan {
            name: "worker".into(),
            label: None,
            tid,
            start_ns: 100,
            duration_ns: Some(800_000),
            children: vec![],
        };
        let spans = vec![TraceSpan {
            name: "fanout".into(),
            label: None,
            tid: 0,
            start_ns: 0,
            duration_ns: Some(1_000_000),
            children: vec![child(1), child(2)],
        }];
        let rows = self_time_rollup(&spans);
        let fanout = rows.iter().find(|r| r.name == "fanout").unwrap();
        assert_eq!(fanout.self_ns, 0);
        let worker = rows.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(worker.count, 2);
        assert_eq!(worker.self_ns, 1_600_000);
    }

    #[test]
    fn rollup_text_renders_aligned_table() {
        let text = render_rollup_text(&self_time_rollup(&forest()));
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("span") && header.contains("self%"));
        assert!(text.contains("solve_split"));
        assert!(render_rollup_text(&[]).lines().count() == 1, "header only");
    }
}
