//! Declarative perf gate: TOML rules evaluated against flat metrics.
//!
//! A rule file is a list of `[[rule]]` tables:
//!
//! ```toml
//! default_tolerance = 1e-9
//!
//! [[rule]]
//! name = "intra-component speedup at 4 threads"
//! when = "hardware_threads >= 4"
//! expr = "intra_parallel.thread_speedup_4 >= 1.5"
//!
//! [[rule]]
//! name = "flow solves match the quota recursion closed form"
//! expr = "observability.flow_solves == observability.reps * quota_flow_solves(observability.delta_prime)"
//! ```
//!
//! `expr` is a boolean expression over metric paths (dotted identifiers
//! resolved in the flat metric map), numeric literals, arithmetic
//! (`+ - * / %`), comparisons, `&&`/`||`, parentheses, and registered
//! functions. `when` guards the rule: if it is absent it defaults to true;
//! if it evaluates false **or references a missing metric**, the rule is
//! *skipped* — that is how speedup floors stay conditioned on
//! `hardware_threads >= 4` and on `"speedup": null` fields that a
//! low-core host never produced. A missing metric in `expr` itself is a
//! hard failure: if the guard says the metric must exist, its absence is a
//! regression.
//!
//! Equality comparisons use a relative-plus-absolute tolerance (default
//! `1e-9`, per-rule override via `tolerance = …`) so values that passed
//! through decimal JSON formatting still compare equal.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed rule file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleFile {
    /// Rules in file order.
    pub rules: Vec<Rule>,
    /// File-level default equality tolerance.
    pub default_tolerance: f64,
}

/// One `[[rule]]` table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Rule {
    /// Display name (falls back to the expression text).
    pub name: String,
    /// The boolean check.
    pub expr: String,
    /// Optional guard; rule is skipped when false or unevaluable.
    pub when: Option<String>,
    /// Per-rule equality tolerance override.
    pub tolerance: Option<f64>,
}

/// Outcome of one rule.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleStatus {
    /// The check held.
    Pass,
    /// The check failed or could not be evaluated; the message says why,
    /// including the values both sides evaluated to.
    Fail(String),
    /// The `when` guard was false or referenced a missing metric.
    Skipped(String),
}

/// One evaluated rule with its outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleOutcome {
    /// The rule's display name.
    pub name: String,
    /// Pass / fail / skipped.
    pub status: RuleStatus,
    /// The resolved left/right values of the rule's top-level comparison
    /// (`None` when the rule was skipped or a side failed to evaluate).
    /// Rendered by [`GateReport::render_explained`] so passing rules are
    /// debuggable from CI logs too, not just failing ones.
    pub detail: Option<String>,
}

/// The result of running a whole rule file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// One outcome per rule, in file order.
    pub outcomes: Vec<RuleOutcome>,
}

impl GateReport {
    /// Whether any rule failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o.status, RuleStatus::Fail(_)))
    }

    /// Counts as `(passed, failed, skipped)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for o in &self.outcomes {
            match o.status {
                RuleStatus::Pass => c.0 += 1,
                RuleStatus::Fail(_) => c.1 += 1,
                RuleStatus::Skipped(_) => c.2 += 1,
            }
        }
        c
    }

    /// Renders one line per rule plus a summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            match &o.status {
                RuleStatus::Pass => {
                    let _ = writeln!(out, "PASS  {}", o.name);
                }
                RuleStatus::Fail(why) => {
                    let _ = writeln!(out, "FAIL  {} — {}", o.name, why);
                }
                RuleStatus::Skipped(why) => {
                    let _ = writeln!(out, "skip  {} — {}", o.name, why);
                }
            }
        }
        let (p, f, s) = self.counts();
        let _ = writeln!(out, "gate: {p} passed, {f} failed, {s} skipped");
        out
    }

    /// Like [`GateReport::render`], but follows every evaluated rule with
    /// an indented line showing the resolved values of both comparison
    /// sides (`dmig obs gate --explain`).
    #[must_use]
    pub fn render_explained(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            match &o.status {
                RuleStatus::Pass => {
                    let _ = writeln!(out, "PASS  {}", o.name);
                }
                RuleStatus::Fail(why) => {
                    let _ = writeln!(out, "FAIL  {} — {}", o.name, why);
                }
                RuleStatus::Skipped(why) => {
                    let _ = writeln!(out, "skip  {} — {}", o.name, why);
                }
            }
            if let Some(detail) = &o.detail {
                let _ = writeln!(out, "        {detail}");
            }
        }
        let (p, f, s) = self.counts();
        let _ = writeln!(out, "gate: {p} passed, {f} failed, {s} skipped");
        out
    }
}

/// A registered expression function: fixed arity plus the implementation.
type RegisteredFn = (usize, Box<dyn Fn(&[f64]) -> f64>);

/// Functions callable from rule expressions. The crate registers numeric
/// basics; callers (the CLI, `perf_report`) add domain closed forms like
/// `quota_flow_solves` before evaluating.
pub struct FunctionRegistry {
    funcs: BTreeMap<String, RegisteredFn>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        let mut r = FunctionRegistry {
            funcs: BTreeMap::new(),
        };
        r.register("abs", 1, |a| a[0].abs());
        r.register("floor", 1, |a| a[0].floor());
        r.register("ceil", 1, |a| a[0].ceil());
        r.register("round", 1, |a| a[0].round());
        r.register("min", 2, |a| a[0].min(a[1]));
        r.register("max", 2, |a| a[0].max(a[1]));
        r
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("functions", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FunctionRegistry {
    /// Registers (or replaces) a function of fixed `arity`.
    pub fn register<F: Fn(&[f64]) -> f64 + 'static>(&mut self, name: &str, arity: usize, f: F) {
        self.funcs.insert(name.to_string(), (arity, Box::new(f)));
    }

    fn call(&self, name: &str, args: &[f64]) -> Result<f64, EvalError> {
        match self.funcs.get(name) {
            None => Err(EvalError::UnknownFunction(name.to_string())),
            Some((arity, _)) if *arity != args.len() => Err(EvalError::Arity {
                name: name.to_string(),
                expected: *arity,
                got: args.len(),
            }),
            Some((_, f)) => Ok(f(args)),
        }
    }
}

/// Why an expression could not be evaluated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// An identifier did not resolve in the metric map.
    MissingMetric(String),
    /// A called function is not registered.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Registered arity.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// The expression text itself is malformed.
    Syntax(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingMetric(m) => write!(f, "metric `{m}` not found"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::Arity {
                name,
                expected,
                got,
            } => write!(f, "`{name}` takes {expected} argument(s), got {got}"),
            EvalError::Syntax(s) => write!(f, "syntax error: {s}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates one expression against `metrics`, truthiness = nonzero.
///
/// # Errors
///
/// Returns [`EvalError`] for syntax errors, unknown functions, or metric
/// paths absent from the map.
pub fn eval_expr(
    expr: &str,
    metrics: &BTreeMap<String, f64>,
    funcs: &FunctionRegistry,
    eq_tolerance: f64,
) -> Result<f64, EvalError> {
    let tokens = tokenize(expr)?;
    let mut p = ExprParser {
        tokens: &tokens,
        pos: 0,
        metrics,
        funcs,
        eq_tolerance,
    };
    let v = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(EvalError::Syntax(format!(
            "unexpected `{}`",
            p.tokens[p.pos]
        )));
    }
    Ok(v)
}

/// Evaluates every rule in `file` against `metrics`.
#[must_use]
pub fn evaluate(
    file: &RuleFile,
    metrics: &BTreeMap<String, f64>,
    funcs: &FunctionRegistry,
) -> GateReport {
    let outcomes = file
        .rules
        .iter()
        .map(|rule| {
            let name = if rule.name.is_empty() {
                rule.expr.clone()
            } else {
                rule.name.clone()
            };
            let tol = rule.tolerance.unwrap_or(file.default_tolerance);
            if let Some(when) = &rule.when {
                match eval_expr(when, metrics, funcs, tol) {
                    Ok(v) if v != 0.0 => {}
                    Ok(_) => {
                        return RuleOutcome {
                            name,
                            status: RuleStatus::Skipped(format!("when `{when}` is false")),
                            detail: None,
                        }
                    }
                    Err(EvalError::MissingMetric(m)) => {
                        return RuleOutcome {
                            name,
                            status: RuleStatus::Skipped(format!(
                                "when `{when}`: metric `{m}` not present"
                            )),
                            detail: None,
                        }
                    }
                    Err(e) => {
                        return RuleOutcome {
                            name,
                            status: RuleStatus::Fail(format!("bad when `{when}`: {e}")),
                            detail: None,
                        }
                    }
                }
            }
            let status = match eval_expr(&rule.expr, metrics, funcs, tol) {
                Ok(v) if v != 0.0 => RuleStatus::Pass,
                Ok(_) => RuleStatus::Fail(explain_failure(&rule.expr, metrics, funcs, tol)),
                Err(e) => RuleStatus::Fail(format!("`{}`: {e}", rule.expr)),
            };
            let detail = comparison_detail(&rule.expr, metrics, funcs, tol);
            RuleOutcome {
                name,
                status,
                detail,
            }
        })
        .collect();
    GateReport { outcomes }
}

/// On failure, re-evaluate both sides of a top-level comparison so the
/// message shows the actual numbers, not just "false".
fn explain_failure(
    expr: &str,
    metrics: &BTreeMap<String, f64>,
    funcs: &FunctionRegistry,
    tol: f64,
) -> String {
    for op in ["==", "!=", "<=", ">=", "<", ">"] {
        // Only a single top-level comparison is explainable this way.
        let parts: Vec<&str> = expr.splitn(2, op).collect();
        if parts.len() == 2 && !parts[0].is_empty() {
            let lhs = eval_expr(parts[0], metrics, funcs, tol);
            let rhs = eval_expr(parts[1], metrics, funcs, tol);
            if let (Ok(l), Ok(r)) = (lhs, rhs) {
                return format!("`{expr}` is false ({l} {op} {r})");
            }
        }
    }
    format!("`{expr}` is false")
}

/// The `--explain` line: both sides of the rule's top-level comparison
/// with the values they resolved to. Falls back to the whole expression's
/// value for rules that are not a single comparison; `None` when nothing
/// evaluates (the Fail message already carries the error).
fn comparison_detail(
    expr: &str,
    metrics: &BTreeMap<String, f64>,
    funcs: &FunctionRegistry,
    tol: f64,
) -> Option<String> {
    for op in ["==", "!=", "<=", ">=", "<", ">"] {
        let parts: Vec<&str> = expr.splitn(2, op).collect();
        if parts.len() == 2 && !parts[0].is_empty() && !parts[1].trim().is_empty() {
            let lhs = eval_expr(parts[0], metrics, funcs, tol);
            let rhs = eval_expr(parts[1], metrics, funcs, tol);
            if let (Ok(l), Ok(r)) = (lhs, rhs) {
                return Some(format!(
                    "left `{}` = {l}, right `{}` = {r}",
                    parts[0].trim(),
                    parts[1].trim()
                ));
            }
            return None;
        }
    }
    eval_expr(expr, metrics, funcs, tol)
        .ok()
        .map(|v| format!("`{expr}` = {v}"))
}

/// Parses a rule file in the TOML subset this crate understands:
/// `[[rule]]` array-of-tables, `key = value` pairs with string, number,
/// and boolean values, `#` comments, blank lines. Unknown keys error (a
/// typoed `exprr` must not silently disable a gate).
///
/// # Errors
///
/// Returns `line-number: message` for the first offending line.
pub fn parse_rules(text: &str) -> Result<RuleFile, String> {
    let mut file = RuleFile {
        rules: Vec::new(),
        default_tolerance: 1e-9,
    };
    let mut in_rule = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if line == "[[rule]]" {
            file.rules.push(Rule::default());
            in_rule = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(err(&format!("unsupported table `{line}`")));
        }
        let (key, value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| err("expected `key = value`"))?;
        let string_val = || -> Result<String, String> {
            let v = value.as_str();
            if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
                Ok(v[1..v.len() - 1]
                    .replace("\\\"", "\"")
                    .replace("\\\\", "\\"))
            } else {
                Err(err(&format!("`{key}` needs a quoted string value")))
            }
        };
        let number_val = || -> Result<f64, String> {
            value
                .parse::<f64>()
                .map_err(|_| err(&format!("`{key}` needs a numeric value")))
        };
        if !in_rule {
            match key.as_str() {
                "default_tolerance" => file.default_tolerance = number_val()?,
                other => return Err(err(&format!("unknown top-level key `{other}`"))),
            }
            continue;
        }
        let rule = file.rules.last_mut().expect("in_rule implies a rule");
        match key.as_str() {
            "name" => rule.name = string_val()?,
            "expr" => rule.expr = string_val()?,
            "when" => rule.when = Some(string_val()?),
            "tolerance" => rule.tolerance = Some(number_val()?),
            other => return Err(err(&format!("unknown rule key `{other}`"))),
        }
    }
    for (i, rule) in file.rules.iter().enumerate() {
        if rule.expr.is_empty() {
            return Err(format!("rule {} has no `expr`", i + 1));
        }
    }
    Ok(file)
}

/// Drops a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

// ---------------------------------------------------------------------------
// Expression lexer + recursive-descent parser/evaluator.

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Num(f64),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Num(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Op(o) => write!(f, "{o}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Token>, EvalError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &text[start..i];
                let n = text
                    .parse::<f64>()
                    .map_err(|_| EvalError::Syntax(format!("bad number `{text}`")))?;
                out.push(Token::Num(n));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                out.push(Token::Ident(text[start..i].to_string()));
            }
            _ => {
                let two = bytes.get(i..i + 2).unwrap_or(&[]);
                let op = match two {
                    b"==" => Some("=="),
                    b"!=" => Some("!="),
                    b"<=" => Some("<="),
                    b">=" => Some(">="),
                    b"&&" => Some("&&"),
                    b"||" => Some("||"),
                    _ => None,
                };
                if let Some(op) = op {
                    out.push(Token::Op(op));
                    i += 2;
                } else {
                    let op = match c {
                        b'<' => "<",
                        b'>' => ">",
                        b'+' => "+",
                        b'-' => "-",
                        b'*' => "*",
                        b'/' => "/",
                        b'%' => "%",
                        other => {
                            return Err(EvalError::Syntax(format!(
                                "unexpected character `{}`",
                                other as char
                            )))
                        }
                    };
                    out.push(Token::Op(op));
                    i += 1;
                }
            }
        }
    }
    Ok(out)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    metrics: &'a BTreeMap<String, f64>,
    funcs: &'a FunctionRegistry,
    eq_tolerance: f64,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat_op(&mut self, ops: &[&str]) -> Option<&'static str> {
        if let Some(Token::Op(o)) = self.peek() {
            if ops.contains(o) {
                let o = *o;
                self.pos += 1;
                return Some(o);
            }
        }
        None
    }

    fn or_expr(&mut self) -> Result<f64, EvalError> {
        let mut v = self.and_expr()?;
        while self.eat_op(&["||"]).is_some() {
            let rhs = self.and_expr()?;
            v = f64::from(u8::from(v != 0.0 || rhs != 0.0));
        }
        Ok(v)
    }

    fn and_expr(&mut self) -> Result<f64, EvalError> {
        let mut v = self.cmp_expr()?;
        while self.eat_op(&["&&"]).is_some() {
            let rhs = self.cmp_expr()?;
            v = f64::from(u8::from(v != 0.0 && rhs != 0.0));
        }
        Ok(v)
    }

    fn approx_eq(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.eq_tolerance * a.abs().max(b.abs()).max(1.0)
    }

    fn cmp_expr(&mut self) -> Result<f64, EvalError> {
        let lhs = self.sum_expr()?;
        let Some(op) = self.eat_op(&["==", "!=", "<=", ">=", "<", ">"]) else {
            return Ok(lhs);
        };
        let rhs = self.sum_expr()?;
        let truth = match op {
            "==" => self.approx_eq(lhs, rhs),
            "!=" => !self.approx_eq(lhs, rhs),
            "<=" => lhs <= rhs,
            ">=" => lhs >= rhs,
            "<" => lhs < rhs,
            ">" => lhs > rhs,
            _ => unreachable!("eat_op filters"),
        };
        Ok(f64::from(u8::from(truth)))
    }

    fn sum_expr(&mut self) -> Result<f64, EvalError> {
        let mut v = self.term_expr()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.term_expr()?;
            v = if op == "+" { v + rhs } else { v - rhs };
        }
        Ok(v)
    }

    fn term_expr(&mut self) -> Result<f64, EvalError> {
        let mut v = self.unary_expr()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.unary_expr()?;
            v = match op {
                "*" => v * rhs,
                "/" => v / rhs,
                _ => v % rhs,
            };
        }
        Ok(v)
    }

    fn unary_expr(&mut self) -> Result<f64, EvalError> {
        if self.eat_op(&["-"]).is_some() {
            return Ok(-self.unary_expr()?);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<f64, EvalError> {
        match self.peek().cloned() {
            Some(Token::Num(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let v = self.or_expr()?;
                match self.peek() {
                    Some(Token::RParen) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    _ => Err(EvalError::Syntax("expected `)`".to_string())),
                }
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.or_expr()?);
                            match self.peek() {
                                Some(Token::Comma) => self.pos += 1,
                                _ => break,
                            }
                        }
                    }
                    match self.peek() {
                        Some(Token::RParen) => self.pos += 1,
                        _ => return Err(EvalError::Syntax("expected `)` after arguments".into())),
                    }
                    return self.funcs.call(&name, &args);
                }
                self.metrics
                    .get(&name)
                    .copied()
                    .ok_or(EvalError::MissingMetric(name))
            }
            other => Err(EvalError::Syntax(format!(
                "expected a value, found {}",
                other.map_or("end of expression".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn eval(expr: &str, m: &BTreeMap<String, f64>) -> Result<f64, EvalError> {
        eval_expr(expr, m, &FunctionRegistry::default(), 1e-9)
    }

    #[test]
    fn arithmetic_and_precedence() {
        let m = metrics(&[]);
        assert_eq!(eval("1 + 2 * 3", &m).unwrap(), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &m).unwrap(), 9.0);
        assert_eq!(eval("7 % 2", &m).unwrap(), 1.0);
        assert_eq!(eval("-2 + 5", &m).unwrap(), 3.0);
        assert_eq!(eval("1e3 / 4", &m).unwrap(), 250.0);
    }

    #[test]
    fn comparisons_and_logic() {
        let m = metrics(&[("a.b", 4.0), ("c", 0.87)]);
        assert_eq!(eval("a.b >= 4", &m).unwrap(), 1.0);
        assert_eq!(eval("c >= 1.5", &m).unwrap(), 0.0);
        assert_eq!(eval("a.b == 4 && c < 1", &m).unwrap(), 1.0);
        assert_eq!(eval("a.b < 4 || c < 1", &m).unwrap(), 1.0);
        assert_eq!(eval("a.b != 4", &m).unwrap(), 0.0);
    }

    #[test]
    fn equality_uses_tolerance() {
        let m = metrics(&[("x", 0.1 + 0.2)]);
        assert_eq!(eval("x == 0.3", &m).unwrap(), 1.0, "1e-9 relative slack");
        assert_eq!(
            eval_expr("1000000 == 1000001", &m, &FunctionRegistry::default(), 1e-9).unwrap(),
            0.0,
            "integers a count apart stay distinct"
        );
    }

    #[test]
    fn functions_resolve_and_check_arity() {
        let m = metrics(&[("d", 5.0)]);
        let mut funcs = FunctionRegistry::default();
        funcs.register("quota_flow_solves", 1, |a| {
            // Stand-in: number of odd levels of the recursion on ⌈a⌉ rounds.
            let mut r = a[0].round() as u64;
            let mut n = 0.0;
            while r > 0 {
                if r % 2 == 1 {
                    n += 1.0;
                }
                r /= 2;
            }
            n
        });
        assert_eq!(
            eval_expr("quota_flow_solves(d)", &m, &funcs, 1e-9).unwrap(),
            2.0
        );
        assert_eq!(eval("max(2, 3) + min(1, 0)", &m).unwrap(), 3.0);
        assert!(matches!(eval("max(1)", &m), Err(EvalError::Arity { .. })));
        assert!(matches!(
            eval("nope(1)", &m),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn missing_metric_is_distinguished() {
        let m = metrics(&[]);
        assert_eq!(
            eval("ghost > 1", &m),
            Err(EvalError::MissingMetric("ghost".to_string()))
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        let m = metrics(&[]);
        for bad in ["1 +", "(1", "1 ? 2", "", "foo(1,", "1 2"] {
            assert!(matches!(eval(bad, &m), Err(EvalError::Syntax(_))), "{bad}");
        }
    }

    const RULES: &str = r#"
# perf gate
default_tolerance = 1e-6

[[rule]]
name = "speedup floor"           # only meaningful with real cores
when = "hardware_threads >= 4"
expr = "intra_parallel.thread_speedup_4 >= 1.5"

[[rule]]
expr = "observability.flow_solves == observability.reps * 2"

[[rule]]
name = "overhead ceiling"
expr = "observability.enabled_overhead_pct <= 50"
tolerance = 0.5
"#;

    #[test]
    fn rule_file_parses() {
        let f = parse_rules(RULES).unwrap();
        assert_eq!(f.rules.len(), 3);
        assert_eq!(f.default_tolerance, 1e-6);
        assert_eq!(f.rules[0].when.as_deref(), Some("hardware_threads >= 4"));
        assert_eq!(f.rules[1].name, "");
        assert_eq!(f.rules[2].tolerance, Some(0.5));
        assert!(parse_rules("[[rule]]\n").unwrap_err().contains("no `expr`"));
        assert!(parse_rules("[section]\n")
            .unwrap_err()
            .contains("unsupported"));
        assert!(parse_rules("[[rule]]\nexprr = \"1\"\n")
            .unwrap_err()
            .contains("unknown rule key"));
    }

    #[test]
    fn gate_passes_fails_and_skips() {
        let f = parse_rules(RULES).unwrap();
        let funcs = FunctionRegistry::default();
        // 4+ threads, good numbers: all pass.
        let good = metrics(&[
            ("hardware_threads", 8.0),
            ("intra_parallel.thread_speedup_4", 2.1),
            ("observability.flow_solves", 10.0),
            ("observability.reps", 5.0),
            ("observability.enabled_overhead_pct", 3.0),
        ]);
        let report = evaluate(&f, &good, &funcs);
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.counts(), (3, 0, 0));

        // Regressed speedup: rule 1 fails with numbers in the message.
        let mut regressed = good.clone();
        regressed.insert("intra_parallel.thread_speedup_4".into(), 0.87);
        let report = evaluate(&f, &regressed, &funcs);
        assert!(report.failed());
        let fail = &report.outcomes[0];
        assert!(matches!(&fail.status, RuleStatus::Fail(m) if m.contains("0.87")));

        // 2-core host with a null (absent) speedup: rule 1 skips, rest pass.
        let mut low_core = good.clone();
        low_core.insert("hardware_threads".into(), 2.0);
        low_core.remove("intra_parallel.thread_speedup_4");
        let report = evaluate(&f, &low_core, &funcs);
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.counts(), (2, 0, 1));

        // Guard true but gated metric missing: hard failure.
        let mut missing = good.clone();
        missing.remove("intra_parallel.thread_speedup_4");
        let report = evaluate(&f, &missing, &funcs);
        assert!(report.failed());
        assert!(report.render().contains("not found"));
    }

    #[test]
    fn render_explained_shows_resolved_sides() {
        let f = parse_rules(RULES).unwrap();
        let funcs = FunctionRegistry::default();
        let m = metrics(&[
            ("hardware_threads", 8.0),
            ("intra_parallel.thread_speedup_4", 0.9),
            ("observability.flow_solves", 10.0),
            ("observability.reps", 5.0),
            ("observability.enabled_overhead_pct", 3.0),
        ]);
        let report = evaluate(&f, &m, &funcs);
        let text = report.render_explained();
        assert!(
            text.contains("left `intra_parallel.thread_speedup_4` = 0.9, right `1.5` = 1.5"),
            "failing rule explained:\n{text}"
        );
        assert!(
            text.contains("left `observability.enabled_overhead_pct` = 3, right `50` = 50"),
            "passing rules explained too:\n{text}"
        );
        // The skipped rule (none here) and the summary still render.
        assert!(text.contains("gate: 2 passed, 1 failed, 0 skipped"));
        // Plain render stays unchanged: no detail lines.
        assert!(!report.render().contains("left `"));

        // Skipped rules carry no detail.
        let low = metrics(&[("hardware_threads", 2.0)]);
        let report = evaluate(&f, &low, &funcs);
        assert_eq!(report.outcomes[0].detail, None);

        // Non-comparison expressions fall back to the whole value.
        let f = parse_rules("[[rule]]\nexpr = \"1 && 1\"\n").unwrap();
        let report = evaluate(&f, &metrics(&[]), &funcs);
        assert!(report.render_explained().contains("`1 && 1` = 1"));
    }

    #[test]
    fn when_guard_skips_on_missing_guard_metric() {
        let f = parse_rules("[[rule]]\nwhen = \"ghost_field >= 1\"\nexpr = \"1 == 1\"\n").unwrap();
        let report = evaluate(&f, &metrics(&[]), &FunctionRegistry::default());
        assert!(!report.failed());
        assert!(matches!(
            &report.outcomes[0].status,
            RuleStatus::Skipped(m) if m.contains("ghost_field")
        ));
    }

    #[test]
    fn strip_comment_respects_strings() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment("a = \"x # y\""), "a = \"x # y\"");
    }
}
