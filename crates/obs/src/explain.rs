//! Makespan attribution: *why* does a schedule take as long as it does?
//!
//! The paper proves two lower bounds — `LB1 = Δ' = max_v ⌈d_v/c_v⌉` (some
//! disk simply has too much work per round-slot) and `LB2 = Γ'` (some
//! dense subgraph cannot drain its internal items faster) — and CI already
//! asserts schedules land within a factor of their max. This module turns
//! the assertion into an *explanation*: which disk realizes LB1, which
//! witness set realizes LB2, and, round by round, which disk's transfers
//! actually ended each round (the *binding chain*) together with the time
//! the round would have saved had that disk's transfers been free.
//!
//! `dmig-obs` sits below `dmig-core`/`dmig-sim` in the dependency order,
//! so the input is a plain data structure ([`ExplainInput`]) the caller
//! fills from the problem (per-disk degree/capacity), the bounds witness,
//! and a per-round busy profile (`dmig-sim`'s `round_profile`). The output
//! ([`Attribution`]) renders as ranked text ([`Attribution::render_text`]),
//! JSON ([`Attribution::to_json`]), and feeds the per-disk heatmap lane of
//! the HTML timeline ([`crate::trace`]).

use std::fmt::Write as _;

use crate::json;

/// Static per-disk load facts: the LB1 ingredients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskLoad {
    /// Items incident to the disk (its multigraph degree).
    pub degree: u64,
    /// Simultaneous-transfer capacity `c_v` (≥ 1 in valid problems).
    pub capacity: u64,
}

impl DiskLoad {
    /// The disk's LB1 contribution `⌈d_v/c_v⌉` (0 when the capacity is 0,
    /// which valid problems never produce).
    #[must_use]
    pub fn ratio(&self) -> u64 {
        if self.capacity == 0 {
            0
        } else {
            self.degree.div_ceil(self.capacity)
        }
    }
}

/// The LB2 witness set, mirroring `dmig-core`'s `GammaWitness` without
/// the dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessSet {
    /// Disks in the witness set `S`.
    pub nodes: Vec<usize>,
    /// Items internal to `S`.
    pub internal_edges: u64,
    /// `Σ_{v∈S} c_v`.
    pub capacity_sum: u64,
    /// The bound `Γ' = ⌈2·|E(S)| / Σc_v⌉` the set realizes.
    pub bound: u64,
}

/// One executed round's per-disk busy profile. `busy` is sparse — only
/// disks with at least one transfer in the round appear — and each entry
/// is the simulated time the disk spent busy inside the round (its
/// slowest incident transfer under the round model).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundLoad {
    /// Simulated duration of the round (max over `busy`).
    pub duration: f64,
    /// `(disk, busy-time)` pairs, ascending by disk id.
    pub busy: Vec<(usize, f64)>,
}

/// Everything [`attribute`] needs, assembled by the caller.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplainInput {
    /// Per-disk degree/capacity, indexed by disk id.
    pub disks: Vec<DiskLoad>,
    /// The max-density witness realizing LB2, if any.
    pub witness: Option<WitnessSet>,
    /// Per-round busy profiles of the schedule under the round model.
    pub rounds: Vec<RoundLoad>,
}

impl Default for DiskLoad {
    fn default() -> Self {
        DiskLoad {
            degree: 0,
            capacity: 1,
        }
    }
}

/// Which lower bound binds the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Binding {
    /// `Δ' > Γ'`: a single disk's per-round work governs.
    Lb1,
    /// `Γ' > Δ'`: a dense subgraph governs.
    Lb2,
    /// `Δ' = Γ' > 0`.
    Tie,
    /// Both bounds are zero (empty migration).
    None,
}

impl Binding {
    /// Stable lowercase tag (`"lb1"`, `"lb2"`, `"tie"`, `"none"`).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Binding::Lb1 => "lb1",
            Binding::Lb2 => "lb2",
            Binding::Tie => "tie",
            Binding::None => "none",
        }
    }
}

/// One link of the binding chain: the disk whose transfers ended round
/// `round`, and what the round would have saved without them.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainLink {
    /// Round index.
    pub round: usize,
    /// The binding disk (argmax busy; lowest id on ties).
    pub disk: usize,
    /// The binding disk's busy time (equals the round duration).
    pub busy: f64,
    /// Round duration.
    pub duration: f64,
    /// `duration − second-highest busy`: the time this round would shrink
    /// if the binding disk's transfers were removed.
    pub savings: f64,
}

/// Per-disk attribution totals, the rows of the ranked table.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskAttribution {
    /// Disk id.
    pub disk: usize,
    /// Rounds this disk bound.
    pub rounds_bound: usize,
    /// Total duration of the rounds this disk bound.
    pub bound_time: f64,
    /// Total estimated savings from removing this disk's transfers in the
    /// rounds it bound.
    pub savings: f64,
    /// Busy time over makespan (0 for an empty migration).
    pub utilization: f64,
    /// Total busy time across all rounds.
    pub busy: f64,
}

/// The full explanation [`attribute`] produces.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// `Δ' = max_v ⌈d_v/c_v⌉`.
    pub lb1: u64,
    /// The disk realizing LB1 (first argmax), `None` for empty problems.
    pub lb1_disk: Option<usize>,
    /// `Γ'` from the witness (0 when no witness).
    pub lb2: u64,
    /// The witness set, passed through.
    pub witness: Option<WitnessSet>,
    /// Which bound binds.
    pub binding: Binding,
    /// `max(lb1, lb2)`.
    pub binding_bound: u64,
    /// Per-round binding chain, in round order.
    pub chain: Vec<ChainLink>,
    /// Ranked per-disk table, descending by `bound_time` (ties: busier
    /// disk first, then lower id).
    pub ranking: Vec<DiskAttribution>,
    /// Makespan (sum of round durations).
    pub total_time: f64,
}

/// Computes the full makespan attribution for one schedule.
#[must_use]
pub fn attribute(input: &ExplainInput) -> Attribution {
    let mut lb1 = 0u64;
    let mut lb1_disk = None;
    for (v, d) in input.disks.iter().enumerate() {
        let r = d.ratio();
        if r > lb1 {
            lb1 = r;
            lb1_disk = Some(v);
        }
    }
    let lb2 = input.witness.as_ref().map_or(0, |w| w.bound);
    let binding = match (lb1, lb2) {
        (0, 0) => Binding::None,
        (a, b) if a > b => Binding::Lb1,
        (a, b) if b > a => Binding::Lb2,
        _ => Binding::Tie,
    };

    let total_time: f64 = input.rounds.iter().map(|r| r.duration).sum();
    let n = input.disks.len();
    let mut busy_total = vec![0.0f64; n];
    let mut rounds_bound = vec![0usize; n];
    let mut bound_time = vec![0.0f64; n];
    let mut savings_total = vec![0.0f64; n];
    let mut chain = Vec::with_capacity(input.rounds.len());
    for (i, round) in input.rounds.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        let mut second = 0.0f64;
        for &(v, b) in &round.busy {
            if v < n {
                busy_total[v] += b;
            }
            match best {
                // Strict `>` keeps the lowest disk id on exact ties
                // (busy pairs are ascending by disk id).
                Some((_, bb)) if b > bb => {
                    second = bb;
                    best = Some((v, b));
                }
                Some(_) => second = second.max(b),
                None => best = Some((v, b)),
            }
        }
        let Some((disk, busy)) = best else {
            continue; // empty round: nothing binds
        };
        let savings = (round.duration - second).max(0.0);
        if disk < n {
            rounds_bound[disk] += 1;
            bound_time[disk] += round.duration;
            savings_total[disk] += savings;
        }
        chain.push(ChainLink {
            round: i,
            disk,
            busy,
            duration: round.duration,
            savings,
        });
    }

    let mut ranking: Vec<DiskAttribution> = (0..n)
        .filter(|&v| busy_total[v] > 0.0 || rounds_bound[v] > 0)
        .map(|v| DiskAttribution {
            disk: v,
            rounds_bound: rounds_bound[v],
            bound_time: bound_time[v],
            savings: savings_total[v],
            utilization: if total_time > 0.0 {
                busy_total[v] / total_time
            } else {
                0.0
            },
            busy: busy_total[v],
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.bound_time
            .total_cmp(&a.bound_time)
            .then(b.busy.total_cmp(&a.busy))
            .then(a.disk.cmp(&b.disk))
    });

    Attribution {
        lb1,
        lb1_disk,
        lb2,
        witness: input.witness.clone(),
        binding,
        binding_bound: lb1.max(lb2),
        chain,
        ranking,
        total_time,
    }
}

impl Attribution {
    /// Renders the explanation as a ranked, human-readable report.
    #[must_use]
    pub fn render_text(&self, disks: &[DiskLoad]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan attribution: {} rounds, total time {:.6}",
            self.chain.len(),
            self.total_time
        );
        match self.lb1_disk {
            Some(v) => {
                let d = disks.get(v).copied().unwrap_or_default();
                let _ = writeln!(
                    out,
                    "LB1 (Δ' = max ⌈d_v/c_v⌉) = {}, realized by disk {v} \
                     (degree {}, capacity {})",
                    self.lb1, d.degree, d.capacity
                );
            }
            None => {
                let _ = writeln!(out, "LB1 (Δ') = 0 (no items)");
            }
        }
        match &self.witness {
            Some(w) => {
                let nodes: Vec<String> = w.nodes.iter().map(ToString::to_string).collect();
                let _ = writeln!(
                    out,
                    "LB2 (Γ') = {}, witness S = {{{}}} (|E(S)| = {}, Σc = {})",
                    self.lb2,
                    nodes.join(", "),
                    w.internal_edges,
                    w.capacity_sum
                );
            }
            None => {
                let _ = writeln!(out, "LB2 (Γ') = 0 (no witness)");
            }
        }
        let _ = writeln!(
            out,
            "binding lower bound: max(LB1, LB2) = {} via {}",
            self.binding_bound,
            self.binding.tag()
        );
        if self.ranking.is_empty() {
            let _ = writeln!(out, "(no executed rounds to attribute)");
            return out;
        }
        let _ = writeln!(out, "per-round binding chain, aggregated by disk:");
        let _ = writeln!(
            out,
            "  {:>4}  {:>4}  {:>12}  {:>12}  {:>12}  {:>11}",
            "rank", "disk", "rounds-bound", "bound-time", "est-savings", "utilization"
        );
        for (i, r) in self.ranking.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>4}  {:>4}  {:>12}  {:>12.6}  {:>12.6}  {:>10.1}%",
                i + 1,
                r.disk,
                r.rounds_bound,
                r.bound_time,
                r.savings,
                r.utilization * 100.0
            );
        }
        if let Some(top) = self.ranking.first() {
            if top.savings > 0.0 && self.total_time > 0.0 {
                let _ = writeln!(
                    out,
                    "binding disk {}: removing its transfers would shrink the \
                     makespan by ~{:.6} time units ({:.1}%)",
                    top.disk,
                    top.savings,
                    top.savings / self.total_time * 100.0
                );
            }
        }
        out
    }

    /// Serializes the attribution as a self-contained JSON object
    /// (schema `dmig-explain/1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"dmig-explain/1\"");
        let _ = write!(out, ",\"lb1\":{}", self.lb1);
        out.push_str(",\"lb1_disk\":");
        match self.lb1_disk {
            Some(v) => {
                let _ = write!(out, "{v}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"lb2\":{}", self.lb2);
        let _ = write!(out, ",\"binding\":\"{}\"", self.binding.tag());
        let _ = write!(out, ",\"binding_bound\":{}", self.binding_bound);
        let _ = write!(out, ",\"total_time\":{}", json::number(self.total_time));
        let _ = write!(out, ",\"rounds\":{}", self.chain.len());
        out.push_str(",\"witness\":");
        match &self.witness {
            Some(w) => {
                out.push_str("{\"nodes\":[");
                for (i, v) in w.nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                let _ = write!(
                    out,
                    "],\"internal_edges\":{},\"capacity_sum\":{},\"bound\":{}}}",
                    w.internal_edges, w.capacity_sum, w.bound
                );
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"chain\":[");
        for (i, l) in self.chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"disk\":{},\"busy\":{},\"duration\":{},\"savings\":{}}}",
                l.round,
                l.disk,
                json::number(l.busy),
                json::number(l.duration),
                json::number(l.savings)
            );
        }
        out.push_str("],\"disks\":[");
        for (i, r) in self.ranking.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"disk\":{},\"rounds_bound\":{},\"bound_time\":{},\"savings\":{},\
                 \"utilization\":{},\"busy\":{}}}",
                r.disk,
                r.rounds_bound,
                json::number(r.bound_time),
                json::number(r.savings),
                json::number(r.utilization),
                json::number(r.busy)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 disks; disk 1 is slow (capacity 1, degree 4 → ratio 4).
    fn sample() -> ExplainInput {
        ExplainInput {
            disks: vec![
                DiskLoad {
                    degree: 6,
                    capacity: 2,
                },
                DiskLoad {
                    degree: 4,
                    capacity: 1,
                },
                DiskLoad {
                    degree: 6,
                    capacity: 4,
                },
            ],
            witness: Some(WitnessSet {
                nodes: vec![0, 1],
                internal_edges: 4,
                capacity_sum: 3,
                bound: 3,
            }),
            rounds: vec![
                RoundLoad {
                    duration: 4.0,
                    busy: vec![(0, 2.0), (1, 4.0), (2, 1.0)],
                },
                RoundLoad {
                    duration: 3.0,
                    busy: vec![(0, 3.0), (1, 3.0)],
                },
                RoundLoad {
                    duration: 2.0,
                    busy: vec![(2, 2.0)],
                },
            ],
        }
    }

    #[test]
    fn lb1_argmax_and_binding() {
        let a = attribute(&sample());
        assert_eq!(a.lb1, 4);
        assert_eq!(a.lb1_disk, Some(1));
        assert_eq!(a.lb2, 3);
        assert_eq!(a.binding, Binding::Lb1);
        assert_eq!(a.binding_bound, 4);
        assert!((a.total_time - 9.0).abs() < 1e-12);
    }

    #[test]
    fn chain_picks_argmax_with_low_id_tiebreak() {
        let a = attribute(&sample());
        assert_eq!(a.chain.len(), 3);
        assert_eq!(a.chain[0].disk, 1);
        assert!((a.chain[0].savings - 2.0).abs() < 1e-12, "4.0 − 2.0");
        // Round 1: disks 0 and 1 tie at 3.0 → lowest id wins, savings 0.
        assert_eq!(a.chain[1].disk, 0);
        assert!((a.chain[1].savings).abs() < 1e-12);
        // Round 2: single busy disk → full duration saved.
        assert_eq!(a.chain[2].disk, 2);
        assert!((a.chain[2].savings - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_sorted_by_bound_time() {
        let a = attribute(&sample());
        assert_eq!(a.ranking[0].disk, 1, "{:?}", a.ranking);
        assert_eq!(a.ranking[0].rounds_bound, 1);
        assert!((a.ranking[0].bound_time - 4.0).abs() < 1e-12);
        assert!((a.ranking[0].utilization - 7.0 / 9.0).abs() < 1e-12);
        let disks: Vec<usize> = a.ranking.iter().map(|r| r.disk).collect();
        assert_eq!(disks, vec![1, 0, 2]);
    }

    #[test]
    fn empty_input_attributes_nothing() {
        let a = attribute(&ExplainInput::default());
        assert_eq!(a.lb1, 0);
        assert_eq!(a.lb1_disk, None);
        assert_eq!(a.binding, Binding::None);
        assert_eq!(a.binding_bound, 0);
        assert!(a.chain.is_empty());
        assert!(a.ranking.is_empty());
        assert_eq!(a.total_time, 0.0);
        let text = a.render_text(&[]);
        assert!(text.contains("no items"), "{text}");
        assert!(text.contains("no executed rounds"), "{text}");
    }

    #[test]
    fn lb2_binding_when_witness_dominates() {
        let input = ExplainInput {
            disks: vec![
                DiskLoad {
                    degree: 2,
                    capacity: 2,
                },
                DiskLoad {
                    degree: 2,
                    capacity: 2,
                },
            ],
            witness: Some(WitnessSet {
                nodes: vec![0, 1],
                internal_edges: 8,
                capacity_sum: 4,
                bound: 4,
            }),
            rounds: vec![],
        };
        let a = attribute(&input);
        assert_eq!(a.binding, Binding::Lb2);
        assert_eq!(a.binding_bound, 4);
        // Equal bounds tie.
        let tie = attribute(&ExplainInput {
            witness: Some(WitnessSet {
                nodes: vec![0],
                internal_edges: 1,
                capacity_sum: 2,
                bound: 1,
            }),
            disks: vec![DiskLoad {
                degree: 1,
                capacity: 1,
            }],
            rounds: vec![],
        });
        assert_eq!(tie.binding, Binding::Tie);
    }

    #[test]
    fn render_text_names_binding_disk() {
        let a = attribute(&sample());
        let text = a.render_text(&sample().disks);
        assert!(
            text.contains("realized by disk 1 (degree 4, capacity 1)"),
            "{text}"
        );
        assert!(text.contains("max(LB1, LB2) = 4 via lb1"), "{text}");
        assert!(text.contains("witness S = {0, 1}"), "{text}");
        assert!(text.contains("rounds-bound"), "{text}");
    }

    #[test]
    fn json_is_balanced_and_carries_schema() {
        let a = attribute(&sample());
        let j = a.to_json();
        assert!(j.contains("\"schema\":\"dmig-explain/1\""));
        assert!(j.contains("\"lb1\":4"));
        assert!(j.contains("\"lb1_disk\":1"));
        assert!(j.contains("\"binding\":\"lb1\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // No-witness case renders null.
        let none = attribute(&ExplainInput::default());
        assert!(none.to_json().contains("\"witness\":null"));
        assert!(none.to_json().contains("\"lb1_disk\":null"));
    }
}
