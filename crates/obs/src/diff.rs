//! Per-metric comparison of two flat metric maps with noise tolerance.
//!
//! Feeds `dmig obs diff`: given two snapshots (or history entries) flattened
//! to `path -> f64`, classify every metric as unchanged (within a relative
//! tolerance), changed, added, or removed, and render a readable delta
//! table. The diff is **directionless** — it does not know whether a larger
//! `thread_speedup_4` is good — so it only reports; enforcement with
//! per-metric direction lives in [`crate::gate`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How one metric moved between the two inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Present in both, relative change within tolerance.
    Unchanged,
    /// Present in both, relative change beyond tolerance.
    Changed,
    /// Only in the new map.
    Added,
    /// Only in the old map.
    Removed,
}

/// One row of the diff.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Metric path (dotted).
    pub key: String,
    /// Old value, if present.
    pub old: Option<f64>,
    /// New value, if present.
    pub new: Option<f64>,
    /// Classification under the tolerance.
    pub kind: DiffKind,
}

impl DiffRow {
    /// Relative change in percent (`None` unless present in both with a
    /// nonzero old value; a 0 → 0 move reports 0%).
    #[must_use]
    pub fn pct(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o != 0.0 => Some((n - o) / o.abs() * 100.0),
            (Some(o), Some(n)) if o == 0.0 && n == 0.0 => Some(0.0),
            _ => None,
        }
    }
}

/// The full diff of two metric maps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDiff {
    /// All rows, sorted by metric path.
    pub rows: Vec<DiffRow>,
    /// The relative tolerance (fraction, e.g. 0.05 = 5%) used to classify.
    pub tolerance: f64,
}

impl MetricsDiff {
    /// Rows classified [`DiffKind::Changed`].
    #[must_use]
    pub fn changed(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.kind == DiffKind::Changed)
            .collect()
    }

    /// Rows only present in the new map ([`DiffKind::Added`]).
    #[must_use]
    pub fn added(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.kind == DiffKind::Added)
            .collect()
    }

    /// Rows only present in the old map ([`DiffKind::Removed`]).
    #[must_use]
    pub fn removed(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.kind == DiffKind::Removed)
            .collect()
    }

    /// Renders a fixed-width table; `only_changes` drops unchanged rows.
    #[must_use]
    pub fn render(&self, only_changes: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>9}  status",
            "metric", "old", "new", "delta%"
        );
        let fmt_v = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3}"));
        let mut shown = 0usize;
        for row in &self.rows {
            if only_changes && row.kind == DiffKind::Unchanged {
                continue;
            }
            shown += 1;
            let pct = row.pct().map_or("-".to_string(), |p| format!("{p:+.1}"));
            let status = match row.kind {
                DiffKind::Unchanged => "ok",
                DiffKind::Changed => "CHANGED",
                DiffKind::Added => "added",
                DiffKind::Removed => "removed",
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>9}  {status}",
                row.key,
                fmt_v(row.old),
                fmt_v(row.new),
                pct
            );
        }
        if shown == 0 {
            let _ = writeln!(
                out,
                "(no differences beyond {:.1}% tolerance)",
                self.tolerance * 100.0
            );
        }
        // Keys present in only one run are as much of a signal as value
        // drift (a vanished counter usually means a code path stopped
        // running), so the summary counts them alongside changes.
        let _ = writeln!(
            out,
            "{} metrics compared, {} changed beyond {:.1}% tolerance, \
             {} added, {} removed",
            self.rows.len(),
            self.changed().len(),
            self.tolerance * 100.0,
            self.added().len(),
            self.removed().len(),
        );
        out
    }
}

/// Compares `old` to `new` under a relative `tolerance` (fraction).
///
/// A metric counts as changed when `|new - old| > tolerance * max(|old|,
/// |new|)` — symmetric, so diff(a, b) and diff(b, a) classify identically.
#[must_use]
pub fn diff_metrics(
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    tolerance: f64,
) -> MetricsDiff {
    let mut rows = Vec::new();
    for (k, &o) in old {
        match new.get(k) {
            Some(&n) => {
                let scale = o.abs().max(n.abs());
                let kind = if (n - o).abs() <= tolerance * scale {
                    DiffKind::Unchanged
                } else {
                    DiffKind::Changed
                };
                rows.push(DiffRow {
                    key: k.clone(),
                    old: Some(o),
                    new: Some(n),
                    kind,
                });
            }
            None => rows.push(DiffRow {
                key: k.clone(),
                old: Some(o),
                new: None,
                kind: DiffKind::Removed,
            }),
        }
    }
    for (k, &n) in new {
        if !old.contains_key(k) {
            rows.push(DiffRow {
                key: k.clone(),
                old: None,
                new: Some(n),
                kind: DiffKind::Added,
            });
        }
    }
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    MetricsDiff { rows, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn classifies_within_and_beyond_tolerance() {
        let old = map(&[("a", 100.0), ("b", 10.0), ("gone", 1.0), ("z", 0.0)]);
        let new = map(&[("a", 104.0), ("b", 20.0), ("fresh", 2.0), ("z", 0.0)]);
        let d = diff_metrics(&old, &new, 0.05);
        let kind = |k: &str| d.rows.iter().find(|r| r.key == k).unwrap().kind;
        assert_eq!(kind("a"), DiffKind::Unchanged, "4% < 5%");
        assert_eq!(kind("b"), DiffKind::Changed);
        assert_eq!(kind("gone"), DiffKind::Removed);
        assert_eq!(kind("fresh"), DiffKind::Added);
        assert_eq!(kind("z"), DiffKind::Unchanged, "0 -> 0 is unchanged");
        assert_eq!(d.changed().len(), 1);
    }

    #[test]
    fn symmetric_classification() {
        let a = map(&[("x", 10.0)]);
        let b = map(&[("x", 11.0)]);
        let ab = diff_metrics(&a, &b, 0.05);
        let ba = diff_metrics(&b, &a, 0.05);
        assert_eq!(ab.rows[0].kind, ba.rows[0].kind);
    }

    #[test]
    fn render_mentions_changes_and_counts() {
        let d = diff_metrics(&map(&[("m", 1.0)]), &map(&[("m", 2.0)]), 0.05);
        let text = d.render(false);
        assert!(text.contains("CHANGED"));
        assert!(text.contains("+100.0"));
        assert!(text.contains("1 changed"));
        let quiet = diff_metrics(&map(&[("m", 1.0)]), &map(&[("m", 1.0)]), 0.05);
        assert!(quiet.render(true).contains("no differences"));
    }

    #[test]
    fn one_sided_keys_render_even_in_changes_only_mode() {
        let d = diff_metrics(
            &map(&[("kept", 1.0), ("gone", 3.0)]),
            &map(&[("kept", 1.0), ("fresh", 2.0)]),
            0.05,
        );
        assert_eq!(d.added().len(), 1);
        assert_eq!(d.removed().len(), 1);
        let text = d.render(true);
        assert!(text.contains("fresh"), "added key shown:\n{text}");
        assert!(text.contains("added"));
        assert!(text.contains("gone"), "removed key shown:\n{text}");
        assert!(text.contains("removed"));
        assert!(!text.lines().any(|l| l.starts_with("kept")));
        assert!(
            text.contains(
                "3 metrics compared, 0 changed beyond 5.0% tolerance, 1 added, 1 removed"
            ),
            "summary counts one-sided keys:\n{text}"
        );
    }
}
