//! Live telemetry plane: a std-only HTTP listener over the recorder.
//!
//! Two routes:
//!
//! * `GET /metrics` — the current [`Snapshot`] rendered by
//!   [`render_prometheus`] in the Prometheus text exposition format
//!   (version 0.0.4). One family per metric kind (`dmig_counter`,
//!   `dmig_gauge`, `dmig_histogram_*`) with the recorder's dotted key as
//!   the `key` label, so the full key namespace (`live.phase`,
//!   `prof.self_ns.solve_even`) survives verbatim and scrape configs need
//!   no name mangling. Label values are escaped per the exposition spec.
//! * `GET /snapshot` — the full snapshot as `dmig-obs/1` JSON, the same
//!   document `--metrics-out` writes.
//!
//! The server is deliberately minimal: one background thread, a
//! non-blocking accept loop, one request at a time. Every request takes a
//! fresh [`crate::snapshot`] — atomic counter/gauge reads plus a brief
//! span-buffer lock, the same read path `--metrics-out` uses — so
//! scraping never blocks the solver's hot path and never perturbs the
//! schedule (held to byte-identity by the `obs_transparency` proptests in
//! `dmig-core`).

use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hist::{bucket_high, bucket_index, HistogramSnapshot};
use crate::snapshot::Snapshot;
use crate::value::Value;

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// must be backslash-escaped per the text exposition format.
#[must_use]
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Histograms become the conventional cumulative `_bucket` series (the
/// `le` bound is the inclusive upper edge of each occupied log₂ bucket,
/// closed by `le="+Inf"`), plus `_sum` and `_count`.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP dmig_counter Monotonic event counters, by recorder key.\n");
    out.push_str("# TYPE dmig_counter counter\n");
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "dmig_counter{{key=\"{}\"}} {v}", escape_label_value(k));
    }
    out.push_str("# HELP dmig_gauge Last-written or maximum values, by recorder key.\n");
    out.push_str("# TYPE dmig_gauge gauge\n");
    for (k, v) in &snap.gauges {
        let _ = writeln!(out, "dmig_gauge{{key=\"{}\"}} {v}", escape_label_value(k));
    }
    out.push_str("# HELP dmig_histogram Log2-bucketed distributions, by recorder key.\n");
    out.push_str("# TYPE dmig_histogram histogram\n");
    for (k, h) in &snap.histograms {
        let key = escape_label_value(k);
        let mut cumulative = 0u64;
        for &(low, n) in &h.buckets {
            cumulative += n;
            let le = bucket_high(bucket_index(low));
            let _ = writeln!(
                out,
                "dmig_histogram_bucket{{key=\"{key}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "dmig_histogram_bucket{{key=\"{key}\",le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(out, "dmig_histogram_sum{{key=\"{key}\"}} {}", h.sum);
        let _ = writeln!(out, "dmig_histogram_count{{key=\"{key}\"}} {}", h.count);
    }
    out
}

/// Rebuilds the metric side of a snapshot from a `dmig-obs/1` JSON
/// document (as written by `--metrics-out`), for serving historical runs
/// with `dmig obs serve FILE`. Spans are not reconstructed — `/snapshot`
/// serves the original document verbatim, and `/metrics` only needs the
/// flat metric families.
///
/// # Errors
///
/// Returns a message when the text is not JSON, is not schema
/// `dmig-obs/1`, or has a malformed metric section.
pub fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    let doc = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match doc.get_path("schema").and_then(Value::as_str) {
        Some("dmig-obs/1") => {}
        other => {
            return Err(format!(
                "expected schema \"dmig-obs/1\", found {}",
                other.unwrap_or("none")
            ))
        }
    }
    let mut snap = Snapshot::default();
    for (section, out) in [
        ("counters", &mut snap.counters),
        ("gauges", &mut snap.gauges),
    ] {
        if let Some(map) = doc.get_path(section).and_then(Value::as_object) {
            for (k, v) in map {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("{section}.{k}: not a number"))?;
                out.insert(k.clone(), v as u64);
            }
        }
    }
    if let Some(map) = doc.get_path("histograms").and_then(Value::as_object) {
        for (k, h) in map {
            let field = |name: &str| {
                h.get_path(name)
                    .and_then(Value::as_f64)
                    .map(|v| v as u64)
                    .ok_or_else(|| format!("histograms.{k}.{name}: not a number"))
            };
            let mut hs = HistogramSnapshot {
                count: field("count")?,
                sum: field("sum")?,
                min: field("min")?,
                max: field("max")?,
                buckets: Vec::new(),
            };
            let buckets = h
                .get_path("buckets")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("histograms.{k}.buckets: not an array"))?;
            for pair in buckets {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histograms.{k}.buckets: expected [low, n] pairs"))?;
                let low = pair[0].as_f64().unwrap_or(-1.0);
                let n = pair[1].as_f64().unwrap_or(-1.0);
                if low < 0.0 || n < 0.0 {
                    return Err(format!("histograms.{k}.buckets: negative entry"));
                }
                hs.buckets.push((low as u64, n as u64));
            }
            snap.histograms.insert(k.clone(), hs);
        }
    }
    Ok(snap)
}

/// What an [`ObsServer`] serves.
#[derive(Debug)]
pub enum ServeSource {
    /// Take a fresh [`crate::snapshot`] of the global recorder per request.
    Live,
    /// Serve one fixed snapshot: `/metrics` renders `snapshot`, while
    /// `/snapshot` returns `raw` (the original JSON document) verbatim.
    Fixed {
        /// Metrics reconstructed via [`snapshot_from_json`].
        snapshot: Snapshot,
        /// The original document, served at `/snapshot`.
        raw: String,
    },
}

impl ServeSource {
    fn metrics(&self) -> String {
        match self {
            ServeSource::Live => render_prometheus(&crate::snapshot()),
            ServeSource::Fixed { snapshot, .. } => render_prometheus(snapshot),
        }
    }

    fn snapshot_json(&self) -> String {
        match self {
            ServeSource::Live => crate::snapshot().to_json(),
            ServeSource::Fixed { raw, .. } => raw.clone(),
        }
    }
}

/// Handle to a running telemetry listener. Stops the accept loop and
/// joins the thread on drop (or explicitly via [`ObsServer::shutdown`]).
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port `0` for ephemeral) and
    /// starts the accept loop on a background thread. When `max_requests`
    /// is set the loop exits on its own after serving that many requests
    /// (useful for smoke tests and [`ObsServer::join`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn start(
        addr: &str,
        source: ServeSource,
        max_requests: Option<u64>,
    ) -> Result<ObsServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let t_stop = Arc::clone(&stop);
        let t_served = Arc::clone(&served);
        let thread = std::thread::Builder::new()
            .name("dmig-obs-serve".into())
            .spawn(move || serve_loop(&listener, &source, &t_stop, &t_served, max_requests))
            .map_err(|e| format!("spawn serve thread: {e}"))?;
        Ok(ObsServer {
            addr: local,
            stop,
            served,
            thread: Some(thread),
        })
    }

    /// The address actually bound (resolves port `0` to the real port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests accepted so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Blocks until the accept loop exits on its own — only meaningful
    /// with `max_requests`; without it this waits forever. Returns the
    /// request count.
    pub fn join(mut self) -> u64 {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.served.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins the thread; returns the request
    /// count.
    pub fn shutdown(mut self) -> u64 {
        self.halt();
        self.served.load(Ordering::Relaxed)
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// How long the accept loop sleeps when no connection is pending. The
/// listener stays non-blocking so shutdown is prompt without needing a
/// self-connection to wake it.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

fn serve_loop(
    listener: &TcpListener,
    source: &ServeSource,
    stop: &AtomicBool,
    served: &AtomicU64,
    max_requests: Option<u64>,
) {
    while !stop.load(Ordering::Relaxed) {
        if let Some(max) = max_requests {
            if served.load(Ordering::Relaxed) >= max {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, source);
                served.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle(mut stream: TcpStream, source: &ServeSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        // Headers complete, or an oversized/raw request we reject anyway.
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let line = req.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "GET only\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                source.metrics(),
            ),
            "/snapshot" => (
                "200 OK",
                "application/json; charset=utf-8",
                source.snapshot_json(),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "dmig obs: GET /metrics (Prometheus exposition) or /snapshot (JSON)\n".to_string(),
            ),
            other => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no route {other}\n"),
            ),
        }
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{obs_lock, Cleanup};

    fn fetch(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    fn metric_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("flow_solves".into(), 3);
        snap.gauges.insert("live.phase".into(), 4);
        snap.histograms.insert(
            "dinic.max_flow_ns".into(),
            HistogramSnapshot {
                count: 3,
                sum: 9000,
                min: 1000,
                max: 6000,
                buckets: vec![(512, 1), (4096, 2)],
            },
        );
        snap
    }

    #[test]
    fn escaping_covers_backslash_quote_newline() {
        assert_eq!(escape_label_value("plain.key"), "plain.key");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(
            escape_label_value("\\\"\n mix"),
            "\\\\\\\"\\n mix",
            "all three escapes compose"
        );
    }

    #[test]
    fn exposition_escapes_hostile_label_values() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird\"key\\with\nstuff".into(), 7);
        let text = render_prometheus(&snap);
        assert!(
            text.contains("dmig_counter{key=\"weird\\\"key\\\\with\\nstuff\"} 7"),
            "escaped line present:\n{text}"
        );
        // No raw newline may survive inside a sample line.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains("} "),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn exposition_renders_all_three_families() {
        let text = render_prometheus(&metric_snapshot());
        assert!(text.contains("# TYPE dmig_counter counter"));
        assert!(text.contains("dmig_counter{key=\"flow_solves\"} 3"));
        assert!(text.contains("# TYPE dmig_gauge gauge"));
        assert!(text.contains("dmig_gauge{key=\"live.phase\"} 4"));
        assert!(text.contains("# TYPE dmig_histogram histogram"));
        // Buckets are cumulative with inclusive upper bounds: the bucket
        // whose low edge is 512 covers [512, 1024), so le=1023.
        assert!(text.contains("dmig_histogram_bucket{key=\"dinic.max_flow_ns\",le=\"1023\"} 1"));
        assert!(text.contains("dmig_histogram_bucket{key=\"dinic.max_flow_ns\",le=\"8191\"} 3"));
        assert!(text.contains("dmig_histogram_bucket{key=\"dinic.max_flow_ns\",le=\"+Inf\"} 3"));
        assert!(text.contains("dmig_histogram_sum{key=\"dinic.max_flow_ns\"} 9000"));
        assert!(text.contains("dmig_histogram_count{key=\"dinic.max_flow_ns\"} 3"));
    }

    #[test]
    fn snapshot_json_roundtrips_into_same_exposition() {
        let snap = metric_snapshot();
        let rebuilt = snapshot_from_json(&snap.to_json()).expect("roundtrip");
        assert_eq!(render_prometheus(&rebuilt), render_prometheus(&snap));
        assert!(snapshot_from_json("{}").is_err(), "schema required");
        assert!(snapshot_from_json("not json").is_err());
    }

    #[test]
    fn server_serves_fixed_snapshot_and_404() {
        let snap = metric_snapshot();
        let raw = snap.to_json();
        let server = ObsServer::start(
            "127.0.0.1:0",
            ServeSource::Fixed {
                snapshot: snap,
                raw: raw.clone(),
            },
            None,
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();

        let (head, body) = fetch(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("dmig_counter{key=\"flow_solves\"} 3"));

        let (head, body) = fetch(addr, "/snapshot");
        assert!(head.contains("application/json"));
        assert_eq!(body, raw, "/snapshot returns the document verbatim");

        let (head, _) = fetch(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        assert_eq!(server.shutdown(), 3);
    }

    #[test]
    fn server_live_source_tracks_recorder() {
        let _l = obs_lock();
        let _c = Cleanup;
        crate::reset();
        crate::set_enabled(true);
        crate::counter_add("serve_live_counter", 11);
        let server =
            ObsServer::start("127.0.0.1:0", ServeSource::Live, None).expect("bind ephemeral");
        let (_, body) = fetch(server.local_addr(), "/metrics");
        assert!(body.contains("dmig_counter{key=\"serve_live_counter\"} 11"));
        crate::counter_add("serve_live_counter", 1);
        let (_, body) = fetch(server.local_addr(), "/metrics");
        assert!(
            body.contains("dmig_counter{key=\"serve_live_counter\"} 12"),
            "each scrape takes a fresh snapshot"
        );
        server.shutdown();
    }

    #[test]
    fn max_requests_terminates_the_loop() {
        let server = ObsServer::start(
            "127.0.0.1:0",
            ServeSource::Fixed {
                snapshot: Snapshot::default(),
                raw: "{}".into(),
            },
            Some(1),
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();
        let (head, _) = fetch(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(server.join(), 1, "loop exits after the request budget");
    }
}
