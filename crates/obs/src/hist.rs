//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] is a fixed array of 65 atomic buckets: bucket 0 counts
//! the value 0 and bucket `i ≥ 1` counts values `v` with
//! `floor(log2(v)) == i - 1`, i.e. `v ∈ [2^(i-1), 2^i)`. Recording is one
//! relaxed `fetch_add` plus min/max maintenance — cheap enough for hot
//! paths — and the bucket layout is resolution-independent, so nanosecond
//! timings and operation counts share one type.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: the zero bucket plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A thread-safe histogram over `u64` values with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of values landing in `bucket`.
#[inline]
#[must_use]
pub fn bucket_low(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Inclusive upper bound of values landing in `bucket` (the last bucket
/// tops out at `u64::MAX`).
#[inline]
#[must_use]
pub fn bucket_high(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Zeroes every bucket and the summary statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact when no
    /// writer is concurrently recording).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_low(i), n))
                })
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Histogram`] for export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_low(1), 1);
        assert_eq!(bucket_low(2), 2);
        assert_eq!(bucket_low(3), 4);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v);
            if i < 64 {
                assert!(v < bucket_low(i + 1).max(1));
            }
        }
    }

    /// Audit of the log₂ bucketing at the edges: `0` has its own bucket,
    /// `1` opens bucket 1, `u64::MAX` lands in (and does not overflow)
    /// bucket 64, and every power-of-two boundary is half-open on the
    /// right — `2^k` starts bucket `k+1`, `2^k − 1` still belongs to
    /// bucket `k`.
    #[test]
    fn bucket_edges_are_pinned() {
        // The three extremes the issue names.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_low(NUM_BUCKETS - 1), 1u64 << 63);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_high(0), 0);
        assert_eq!(bucket_high(1), 1, "[1,2) holds only 1");

        // Every power-of-two boundary across the full u64 range.
        for k in 0..63usize {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k} opens bucket {}", k + 1);
            if k >= 1 {
                // Bucket 1 is the singleton [1,2); from bucket 2 up the
                // bucket holds more than its lower bound.
                assert_eq!(bucket_index(p + 1), k + 1, "2^{k}+1 stays in bucket");
                assert_eq!(bucket_index(p - 1), k, "2^{k}-1 is one bucket lower");
            }
        }
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_index(1u64 << 63), 64);

        // bucket_low / bucket_high are consistent inverses of bucket_index:
        // each bucket's bounds map back to it and tile the u64 range.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i);
            assert_eq!(bucket_index(bucket_high(i)), i);
            if i + 1 < NUM_BUCKETS {
                assert_eq!(
                    bucket_high(i).wrapping_add(1),
                    bucket_low(i + 1),
                    "buckets {i} and {} tile without gap or overlap",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn extreme_values_record_without_overflow() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (1u64 << 63, 1)]);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 201.4).abs() < 1e-9);
        // Buckets: 0 -> 1, [1,2) -> 2, [4,8) -> 1, [512,1024) -> 1.
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::default();
        h.record(7);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
