//! Point-in-time copies of recorder state, with JSON and tree rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;
use crate::json;

/// Flat span copy handed from the recorder to [`Snapshot::assemble`].
#[derive(Clone, Debug)]
pub(crate) struct SnapSpan {
    pub(crate) name: String,
    pub(crate) label: Option<String>,
    pub(crate) parent: Option<usize>,
    pub(crate) thread: u64,
    pub(crate) start_ns: u64,
    pub(crate) duration_ns: Option<u64>,
}

/// One span in the reassembled hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Static span name (see the counter/span naming convention in
    /// DESIGN.md).
    pub name: String,
    /// Optional per-instance detail, e.g. `"#3 n=120 m=480"`.
    pub label: Option<String>,
    /// Dense ordinal of the recording thread (`0` = first thread that ever
    /// recorded a span).
    pub thread: u64,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (`None` if the span was still
    /// open at snapshot time).
    pub duration_ns: Option<u64>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

/// Everything the recorder held at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic event counts, by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written / maximum values, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Log-bucketed distributions, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Root spans (spans whose parent was closed before a reset become
    /// roots too), in open order.
    pub spans: Vec<SpanNode>,
}

impl Snapshot {
    pub(crate) fn assemble(
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, u64>,
        histograms: BTreeMap<String, HistogramSnapshot>,
        flat: Vec<SnapSpan>,
    ) -> Snapshot {
        let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); flat.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in flat.iter().enumerate() {
            match s.parent {
                // A parent index always precedes its children (spans are
                // appended in open order), but guard anyway.
                Some(p) if p < i => children_of[p].push(i),
                _ => roots.push(i),
            }
        }
        fn build(i: usize, flat: &[SnapSpan], children_of: &[Vec<usize>]) -> SpanNode {
            SpanNode {
                name: flat[i].name.clone(),
                label: flat[i].label.clone(),
                thread: flat[i].thread,
                start_ns: flat[i].start_ns,
                duration_ns: flat[i].duration_ns,
                children: children_of[i]
                    .iter()
                    .map(|&c| build(c, flat, children_of))
                    .collect(),
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: roots
                .into_iter()
                .map(|r| build(r, &flat, &children_of))
                .collect(),
        }
    }

    /// Renders the span hierarchy as an indented, human-readable tree
    /// (the `--trace` output of the CLI).
    #[must_use]
    pub fn render_tree(&self) -> String {
        fn render(node: &SpanNode, depth: usize, out: &mut String) {
            let mut title = node.name.clone();
            if let Some(label) = &node.label {
                let _ = write!(title, " {label}");
            }
            let dur = match node.duration_ns {
                Some(ns) => format!("{:.3}ms", ns as f64 / 1e6),
                None => "open".to_string(),
            };
            let indent = 2 * depth;
            let _ = writeln!(
                out,
                "{:indent$}{title:<w$} {dur:>12} [t{}]",
                "",
                node.thread,
                indent = indent,
                w = 48usize.saturating_sub(indent),
            );
            for child in &node.children {
                render(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        for root in &self.spans {
            render(root, 0, &mut out);
        }
        out
    }

    /// Flattens counters, gauges, and histogram summary statistics into
    /// one `name -> value` map — the shape [`crate::diff`],
    /// [`crate::gate`], and [`crate::history`] operate on. Histogram `h`
    /// contributes `h.count`, `h.sum`, `h.mean`, `h.min`, and `h.max`.
    #[must_use]
    pub fn flat_metrics(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (k, &v) in &self.counters {
            out.insert(k.clone(), v as f64);
        }
        for (k, &v) in &self.gauges {
            out.insert(k.clone(), v as f64);
        }
        for (k, h) in &self.histograms {
            out.insert(format!("{k}.count"), h.count as f64);
            out.insert(format!("{k}.sum"), h.sum as f64);
            out.insert(format!("{k}.mean"), h.mean());
            out.insert(format!("{k}.min"), h.min as f64);
            out.insert(format!("{k}.max"), h.max as f64);
        }
        out
    }

    /// Serializes the snapshot as a self-contained JSON object.
    ///
    /// Layout:
    ///
    /// ```json
    /// {
    ///   "schema": "dmig-obs/1",
    ///   "counters": {"flow_solves": 3},
    ///   "gauges": {"quota.max_recursion_depth": 4},
    ///   "histograms": {"dinic.max_flow_ns": {"count": 3, "sum": 9000,
    ///       "min": 1000, "max": 6000, "buckets": [[512, 1], [4096, 2]]}},
    ///   "spans": [{"name": "solve_even", "label": null, "thread": 0,
    ///       "start_us": 1.2, "duration_us": 350.0, "children": []}]
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        fn span_json(node: &SpanNode, out: &mut String) {
            out.push_str("{\"name\":");
            out.push_str(&json::string(&node.name));
            out.push_str(",\"label\":");
            match &node.label {
                Some(l) => out.push_str(&json::string(l)),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"thread\":{}", node.thread);
            let _ = write!(
                out,
                ",\"start_us\":{}",
                json::number(node.start_ns as f64 / 1e3)
            );
            out.push_str(",\"duration_us\":");
            match node.duration_ns {
                Some(ns) => {
                    let _ = write!(out, "{}", json::number(ns as f64 / 1e3));
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"children\":[");
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                span_json(c, out);
            }
            out.push_str("]}");
        }

        let mut out = String::from("{\n  \"schema\": \"dmig-obs/1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json::string(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json::string(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json::string(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (low, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{low},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            span_json(s, &mut out);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let flat = vec![
            SnapSpan {
                name: "solve".into(),
                label: None,
                parent: None,
                thread: 0,
                start_ns: 0,
                duration_ns: Some(5_000_000),
            },
            SnapSpan {
                name: "component".into(),
                label: Some("#0".into()),
                parent: Some(0),
                thread: 1,
                start_ns: 1_000,
                duration_ns: Some(2_000_000),
            },
            SnapSpan {
                name: "component".into(),
                label: Some("#1".into()),
                parent: Some(0),
                thread: 2,
                start_ns: 2_000,
                duration_ns: None,
            },
        ];
        let mut counters = BTreeMap::new();
        counters.insert("flow_solves".to_string(), 3u64);
        Snapshot::assemble(counters, BTreeMap::new(), BTreeMap::new(), flat)
    }

    #[test]
    fn tree_assembly_nests_children() {
        let snap = sample();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].children.len(), 2);
        assert_eq!(snap.spans[0].children[1].label.as_deref(), Some("#1"));
    }

    #[test]
    fn render_tree_is_indented() {
        let tree = sample().render_tree();
        assert!(tree.contains("solve"));
        assert!(tree.contains("  component #0"));
        assert!(tree.contains("[t1]"));
        assert!(tree.contains("open"));
        assert_eq!(Snapshot::default().render_tree(), "(no spans recorded)\n");
    }

    #[test]
    fn json_is_balanced_and_contains_keys() {
        let j = sample().to_json();
        assert!(j.contains("\"flow_solves\": 3"));
        assert!(j.contains("\"dmig-obs/1\""));
        assert!(j.contains("\"duration_us\":null"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn orphaned_parent_becomes_root() {
        // Parent index not preceding the child (can't happen today, but the
        // assembler must not panic or loop).
        let flat = vec![SnapSpan {
            name: "x".into(),
            label: None,
            parent: Some(7),
            thread: 0,
            start_ns: 0,
            duration_ns: Some(1),
        }];
        let s = Snapshot::assemble(BTreeMap::new(), BTreeMap::new(), BTreeMap::new(), flat);
        assert_eq!(s.spans.len(), 1);
    }
}
