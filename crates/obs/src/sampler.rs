//! Background sampling profiler and resource gauges.
//!
//! Every tick the sampler asks the recorder for the innermost open span
//! of each thread ([`crate::Recorder::leaf_open_spans`]) and charges one
//! tick interval of self-time to that span's `prof.self_ns.<span>`
//! histogram. Statistically this converges on the flame-rollup a full
//! `--trace-out` capture would give, but the cost is one brief
//! span-buffer lock per tick instead of recording every span — cheap
//! enough to leave on for live runs (gated ≤2% overhead by
//! `ci-rules.toml`). The same tick refreshes `mem.rss_bytes` /
//! `mem.rss_peak_bytes` from `/proc/self/status`.
//!
//! The sampler is a pure *reader* of solver state: schedules and reports
//! are byte-identical with the sampler on or off (proptested in
//! `dmig-core`'s `obs_transparency` suite and `dmig-sim`'s
//! `sampler_transparency` suite).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::keys;

/// Default sampling interval (100 Hz).
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(10);

/// Interns the `prof.self_ns.<span>` histogram name for a span. The
/// recorder wants `&'static str` keys, so each distinct span name leaks
/// one small string — bounded by the set of span names in the codebase,
/// not by run length.
fn self_time_key(span: &'static str) -> &'static str {
    static KEYS: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    let map = KEYS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = map.lock().expect("sampler key registry poisoned");
    map.entry(span).or_insert_with(|| {
        Box::leak(format!("{}{span}", crate::PROF_SELF_NS_PREFIX).into_boxed_str())
    })
}

/// Current and peak resident set size in bytes, from `/proc/self/status`
/// (`VmRSS` / `VmHWM`). `None` where procfs is unavailable.
#[must_use]
pub fn rss_bytes() -> Option<(u64, u64)> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut current = None;
    let mut peak = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            current = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            peak = parse_kb(rest);
        }
    }
    Some((current?, peak?))
}

fn parse_kb(rest: &str) -> Option<u64> {
    rest.trim()
        .strip_suffix("kB")?
        .trim()
        .parse::<u64>()
        .ok()
        .map(|kb| kb * 1024)
}

/// One sampler tick against the global recorder: charge `interval` of
/// self-time to every thread's innermost open span and refresh the RSS
/// gauges. Public so benchmarks and tests can drive the sampler
/// synchronously; a no-op while the recorder is disabled.
pub fn tick(interval: Duration) {
    let rec = crate::recorder();
    if !rec.is_enabled() {
        return;
    }
    let interval_ns = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
    for leaf in rec.leaf_open_spans() {
        rec.observe(self_time_key(leaf.name), interval_ns);
    }
    if let Some((current, peak)) = rss_bytes() {
        rec.gauge_set(keys::MEM_RSS_BYTES, current);
        rec.gauge_max(keys::MEM_RSS_PEAK_BYTES, peak);
    }
    rec.counter_add(keys::PROF_SAMPLES, 1);
}

/// Handle to a running sampler thread; stops and joins on drop (or
/// explicitly via [`SamplerHandle::stop`]).
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Starts a background sampler ticking every `interval` (first tick
/// immediately, so even short runs get at least one sample).
///
/// # Panics
///
/// Panics if the OS refuses to spawn the sampler thread.
#[must_use]
pub fn start(interval: Duration) -> SamplerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let t_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("dmig-obs-sampler".into())
        .spawn(move || {
            while !t_stop.load(Ordering::Relaxed) {
                tick(interval);
                // Sleep in small slices so stop() returns promptly even
                // when the sampling interval is long.
                let mut remaining = interval;
                while remaining > Duration::ZERO && !t_stop.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining -= slice;
                }
            }
        })
        .expect("spawn sampler thread");
    SamplerHandle {
        stop,
        thread: Some(thread),
    }
}

impl SamplerHandle {
    /// Stops the sampler and joins its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{obs_lock, Cleanup};

    #[test]
    fn tick_charges_innermost_open_span() {
        let _l = obs_lock();
        let _c = Cleanup;
        crate::reset();
        crate::set_enabled(true);
        let _outer = crate::span("sampler_outer");
        {
            let _inner = crate::span("sampler_inner");
            tick(Duration::from_millis(10));
            tick(Duration::from_millis(10));
        }
        tick(Duration::from_millis(10));
        let snap = crate::snapshot();
        let inner = &snap.histograms["prof.self_ns.sampler_inner"];
        assert_eq!(inner.count, 2, "two ticks while inner was innermost");
        assert_eq!(inner.sum, 20_000_000);
        assert_eq!(
            snap.histograms["prof.self_ns.sampler_outer"].count, 1,
            "outer only charged once inner closed"
        );
        assert_eq!(snap.counters[crate::keys::PROF_SAMPLES], 3);
    }

    #[test]
    fn tick_refreshes_rss_gauges_where_procfs_exists() {
        let _l = obs_lock();
        let _c = Cleanup;
        crate::reset();
        crate::set_enabled(true);
        tick(Duration::from_millis(1));
        let snap = crate::snapshot();
        if let Some((current, peak)) = rss_bytes() {
            assert!(current > 0);
            assert!(peak >= current || snap.gauges[crate::keys::MEM_RSS_PEAK_BYTES] > 0);
            assert!(snap.gauges[crate::keys::MEM_RSS_BYTES] > 0);
            assert!(snap.gauges[crate::keys::MEM_RSS_PEAK_BYTES] > 0);
        } else {
            assert!(!snap.gauges.contains_key(crate::keys::MEM_RSS_BYTES));
        }
    }

    #[test]
    fn tick_is_inert_while_disabled() {
        let _l = obs_lock();
        let _c = Cleanup;
        crate::set_enabled(false);
        crate::reset();
        tick(Duration::from_millis(1));
        // Registered key names survive reset() (zeroed), so assert on the
        // value rather than key absence.
        let snap = crate::snapshot();
        let ticks = snap
            .counters
            .get(crate::keys::PROF_SAMPLES)
            .copied()
            .unwrap_or(0);
        assert_eq!(ticks, 0, "disabled tick must record nothing");
    }

    #[test]
    fn background_sampler_collects_and_stops() {
        let _l = obs_lock();
        let _c = Cleanup;
        crate::reset();
        crate::set_enabled(true);
        let handle = start(Duration::from_millis(1));
        let _work = crate::span("sampler_bg_work");
        // The first tick fires immediately; give the thread a moment.
        for _ in 0..100 {
            let ticked = crate::snapshot()
                .counters
                .get(crate::keys::PROF_SAMPLES)
                .copied()
                .unwrap_or(0);
            if ticked > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        let ticks = crate::snapshot().counters[crate::keys::PROF_SAMPLES];
        assert!(ticks >= 1, "sampler ticked at least once");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            crate::snapshot().counters[crate::keys::PROF_SAMPLES],
            ticks,
            "no ticks after stop() returns"
        );
    }

    #[test]
    fn parse_kb_reads_proc_status_lines() {
        assert_eq!(parse_kb("  1234 kB"), Some(1234 * 1024));
        assert_eq!(parse_kb("0 kB"), Some(0));
        assert_eq!(parse_kb("garbage"), None);
    }
}
