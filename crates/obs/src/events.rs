//! Flight recorder: a typed, bounded ring of structured execution events
//! with a streaming JSONL sink and a panic-hook crash dump.
//!
//! The span/counter recorder in this crate answers "where did the time
//! go"; the flight recorder answers "what happened, in order" — which
//! round started when, which item was delivered, retried, or lost, which
//! disk crashed, when the executor replanned. Emitters ([`emit`]) pay a
//! single relaxed atomic load when recording is off, so instrumentation
//! stays in hot paths for free, exactly like the span facade.
//!
//! Three consumers, all fed by the same [`emit`] call:
//!
//! * **the ring** — the last [`ring_capacity`] events are kept in memory
//!   ([`recent`]); older events are evicted (counted in
//!   [`crate::keys::EVENTS_DROPPED`]). The ring is what a crash dump can
//!   still show after hours of execution.
//! * **the JSONL sink** — when a sink is open ([`open_sink`]) every event
//!   is appended (`O_APPEND`, one `write_all` per line, schema-versioned
//!   [`EVENTS_SCHEMA`]) *before* it enters the ring, so the file is always
//!   at least as complete as the ring, and a hard kill loses at most the
//!   event being formatted. Two durability disciplines: [`open_sink`]
//!   appends to the final path (journal mode — the partial prefix is the
//!   recovery record; [`sync_sink`] fences it at round boundaries), while
//!   [`open_sink_atomic`] streams to a temp file that [`close_sink`]
//!   publishes by rename (report mode — readers never see a torn file).
//!   [`append_sink_line`] splices pre-formatted lines (executor
//!   checkpoints) into the same stream.
//! * **the crash dump** — [`set_crash_path`] installs a chaining panic
//!   hook (once per process); on panic the hook writes a
//!   [`CRASH_SCHEMA`] JSON document with the panic message/location, the
//!   ring contents rendered by the *same* serializer as the sink lines,
//!   and the names of all spans still open at panic time.
//!
//! **Determinism:** event payloads carry only simulated-time quantities
//! (round indices, item ids, simulated clocks) — no wall clocks, no
//! thread ids — and [`Event::to_json_line`] formats floats through
//! [`crate::json::number`]. A deterministic emitter therefore produces a
//! byte-identical JSONL stream at any thread count, which
//! `dmig-sim`'s executor proptests pin down.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

use crate::json;
use crate::keys;

/// Schema tag carried by every JSONL sink line.
pub const EVENTS_SCHEMA: &str = "dmig-events/1";

/// Schema tag of the crash-dump document.
pub const CRASH_SCHEMA: &str = "dmig-crash/1";

/// Default number of events the in-memory ring retains.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One structured execution event. All times are in simulated time units
/// (the unit item-size / unit-bandwidth clock of `dmig-sim`).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A round began executing.
    RoundStart {
        /// Monotonic executed-round index (never resets across replans).
        round: u64,
        /// Transfers scheduled in the round.
        transfers: u64,
        /// Simulated clock at the round start.
        time: f64,
    },
    /// A round finished (all its transfers completed, failed, or aborted).
    RoundEnd {
        /// Monotonic executed-round index.
        round: u64,
        /// Simulated duration of the round.
        duration: f64,
        /// Simulated clock at the round end.
        time: f64,
    },
    /// An item reached a destination.
    ItemDelivered {
        /// Original item id (stable across replans).
        item: u64,
        /// Whether a replan moved the item off its planned endpoints.
        redirected: bool,
        /// Simulated clock at delivery.
        time: f64,
    },
    /// An item was lost.
    ItemLost {
        /// Original item id.
        item: u64,
        /// `"dead-disk"` or `"retries-exhausted"`.
        reason: &'static str,
        /// Simulated clock at the loss.
        time: f64,
    },
    /// A flaky transfer failed and was scheduled for retry.
    Retry {
        /// Original item id.
        item: u64,
        /// Attempts made so far (the failed one included).
        attempt: u64,
        /// Simulated clock at which the retry becomes eligible.
        resume_at: f64,
        /// Simulated clock of the failure.
        time: f64,
    },
    /// The executor re-solved the residual problem.
    Replan {
        /// Items still pending at the replan.
        pending: u64,
        /// Trigger: `"crash"`, `"degraded-set"`, `"stall"`, or
        /// `"exhausted"`.
        reason: &'static str,
        /// Simulated clock of the replan.
        time: f64,
    },
    /// A disk crash-stopped.
    Crash {
        /// The dead disk.
        disk: u64,
        /// Designated replacement, if any.
        replacement: Option<u64>,
        /// Simulated clock of the crash.
        time: f64,
    },
    /// A round blew past the stall detector's rolling-median threshold.
    Stall {
        /// Round index (monotonic for the executor's simulated-time
        /// detector; engine-local for the wall-clock ticker).
        round: u64,
        /// Duration of the stalled round.
        duration: f64,
        /// Rolling median the duration was compared against.
        median: f64,
        /// Clock at the stall verdict.
        time: f64,
    },
}

impl Event {
    /// The event's kind tag as it appears in the JSONL `kind` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::ItemDelivered { .. } => "item_delivered",
            Event::ItemLost { .. } => "item_lost",
            Event::Retry { .. } => "retry",
            Event::Replan { .. } => "replan",
            Event::Crash { .. } => "crash",
            Event::Stall { .. } => "stall",
        }
    }

    /// The simulated clock the event carries.
    #[must_use]
    pub fn time(&self) -> f64 {
        match self {
            Event::RoundStart { time, .. }
            | Event::RoundEnd { time, .. }
            | Event::ItemDelivered { time, .. }
            | Event::ItemLost { time, .. }
            | Event::Retry { time, .. }
            | Event::Replan { time, .. }
            | Event::Crash { time, .. }
            | Event::Stall { time, .. } => *time,
        }
    }

    /// Renders the event as one JSONL line (no trailing newline). The
    /// crash dump embeds events through this same function, so a dump's
    /// last event is byte-equal to the last sink line.
    #[must_use]
    pub fn to_json_line(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"schema\":\"{EVENTS_SCHEMA}\",\"seq\":{seq},\"kind\":\"{}\",\"t\":{}",
            self.kind(),
            json::number(self.time())
        );
        match self {
            Event::RoundStart {
                round, transfers, ..
            } => {
                let _ = write!(out, ",\"round\":{round},\"transfers\":{transfers}");
            }
            Event::RoundEnd {
                round, duration, ..
            } => {
                let _ = write!(
                    out,
                    ",\"round\":{round},\"duration\":{}",
                    json::number(*duration)
                );
            }
            Event::ItemDelivered {
                item, redirected, ..
            } => {
                let _ = write!(out, ",\"item\":{item},\"redirected\":{redirected}");
            }
            Event::ItemLost { item, reason, .. } => {
                let _ = write!(out, ",\"item\":{item},\"reason\":\"{reason}\"");
            }
            Event::Retry {
                item,
                attempt,
                resume_at,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"item\":{item},\"attempt\":{attempt},\"resume_at\":{}",
                    json::number(*resume_at)
                );
            }
            Event::Replan {
                pending, reason, ..
            } => {
                let _ = write!(out, ",\"pending\":{pending},\"reason\":\"{reason}\"");
            }
            Event::Crash {
                disk, replacement, ..
            } => {
                let _ = write!(out, ",\"disk\":{disk},\"replacement\":");
                match replacement {
                    Some(r) => {
                        let _ = write!(out, "{r}");
                    }
                    None => out.push_str("null"),
                }
            }
            Event::Stall {
                round,
                duration,
                median,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"round\":{round},\"duration\":{},\"median\":{}",
                    json::number(*duration),
                    json::number(*median)
                );
            }
        }
        out.push('}');
        out
    }
}

/// Running totals of the recorder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events emitted since the last [`reset`].
    pub emitted: u64,
    /// Events evicted from the ring (still present in the sink, if one
    /// was open when they were emitted).
    pub dropped: u64,
}

/// An open JSONL sink plus the rename it owes on close (atomic mode).
struct Sink {
    file: std::fs::File,
    /// `Some((temp, final))` when the sink writes to a temp file that
    /// [`close_sink`] publishes by rename; `None` for append mode.
    finalize: Option<(PathBuf, PathBuf)>,
}

struct Inner {
    ring: VecDeque<(u64, Event)>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    sink: Option<Sink>,
}

struct EventState {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

fn state() -> &'static EventState {
    static STATE: OnceLock<EventState> = OnceLock::new();
    STATE.get_or_init(|| EventState {
        enabled: AtomicBool::new(false),
        inner: Mutex::new(Inner {
            ring: VecDeque::with_capacity(DEFAULT_RING_CAPACITY),
            capacity: DEFAULT_RING_CAPACITY,
            seq: 0,
            dropped: 0,
            sink: None,
        }),
    })
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    state()
        .inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether the flight recorder is collecting (process-global; default
/// off, independent of the span recorder).
#[must_use]
pub fn is_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Turns event collection on or off.
pub fn set_enabled(enabled: bool) {
    state().enabled.store(enabled, Ordering::Relaxed);
}

/// Clears the ring and the sequence/dropped counters. The sink (if open)
/// and the enabled flag are left alone.
pub fn reset() {
    let mut inner = lock();
    inner.ring.clear();
    inner.seq = 0;
    inner.dropped = 0;
}

/// Resizes the ring (existing oldest events are evicted if over the new
/// capacity). Capacity is clamped to at least 1.
pub fn set_ring_capacity(capacity: usize) {
    let mut inner = lock();
    inner.capacity = capacity.max(1);
    while inner.ring.len() > inner.capacity {
        inner.ring.pop_front();
        inner.dropped += 1;
    }
}

/// Opens (or creates) `path` as the JSONL sink in append mode. Every
/// subsequent event is written as one line before entering the ring.
/// This is the *durable* mode: lines land in the final file as they are
/// emitted, and [`sync_sink`] can fence them to stable storage — the
/// write-ahead-journal discipline the migration workspace relies on.
///
/// # Errors
///
/// Propagates the underlying `open` failure.
pub fn open_sink(path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    lock().sink = Some(Sink {
        file,
        finalize: None,
    });
    Ok(())
}

/// Opens the JSONL sink in *atomic* mode: lines stream to `<path>.tmp`
/// and [`close_sink`] publishes the finished file with one rename, so a
/// killed process never leaves a half-written document at `path`. Use
/// this for report-style outputs (`--events-out`); use [`open_sink`] for
/// journals, where the partial prefix is exactly what resume wants.
///
/// # Errors
///
/// Propagates the underlying `create` failure.
pub fn open_sink_atomic(path: &str) -> std::io::Result<()> {
    let temp = PathBuf::from(format!("{path}.tmp"));
    let file = std::fs::File::create(&temp)?;
    lock().sink = Some(Sink {
        file,
        finalize: Some((temp, PathBuf::from(path))),
    });
    Ok(())
}

/// Closes the sink, if one is open; an atomic-mode sink is published to
/// its final path by rename here. Events keep flowing to the ring.
pub fn close_sink() {
    let sink = lock().sink.take();
    if let Some(Sink {
        file,
        finalize: Some((temp, path)),
    }) = sink
    {
        drop(file);
        let _ = std::fs::rename(temp, path);
    }
}

/// Flushes the sink and fences it to stable storage (`fdatasync`). The
/// executor journal calls this at round boundaries so that a checkpoint
/// line, once synced, survives `kill -9`.
///
/// # Errors
///
/// Propagates the underlying sync failure. A no-op `Ok` when no sink is
/// open.
pub fn sync_sink() -> std::io::Result<()> {
    let mut inner = lock();
    if let Some(sink) = inner.sink.as_mut() {
        sink.file.flush()?;
        sink.file.sync_data()?;
    }
    Ok(())
}

/// Appends one pre-formatted line (newline added here) to the sink,
/// bypassing the ring and the event counters — the hook the workspace
/// journal uses to interleave `dmig-exec-ckpt/1` checkpoint lines with
/// the event stream. Returns the bytes written, 0 when no sink is open.
///
/// # Errors
///
/// Propagates the underlying write failure.
pub fn append_sink_line(line: &str) -> std::io::Result<u64> {
    let mut inner = lock();
    if let Some(sink) = inner.sink.as_mut() {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        sink.file.write_all(buf.as_bytes())?;
        return Ok(buf.len() as u64);
    }
    Ok(0)
}

/// Records one event: appends it to the sink (if open), then to the ring,
/// and bumps the `events.*` counters on the span recorder. A single
/// relaxed load and out when disabled.
pub fn emit(event: Event) {
    if !is_enabled() {
        return;
    }
    let mut evicted = false;
    {
        let mut inner = lock();
        let seq = inner.seq;
        inner.seq += 1;
        if let Some(sink) = inner.sink.as_mut() {
            let mut line = event.to_json_line(seq);
            line.push('\n');
            // One write_all per line: a crash mid-run loses at most the
            // line being written, never interleaves two events.
            let _ = sink.file.write_all(line.as_bytes());
        }
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
            evicted = true;
        }
        let lost = matches!(event, Event::ItemLost { .. });
        inner.ring.push_back((seq, event));
        if lost {
            crate::counter_add(keys::EVENTS_ITEM_LOST, 1);
        }
    }
    crate::counter_add(keys::EVENTS_EMITTED, 1);
    if evicted {
        crate::counter_add(keys::EVENTS_DROPPED, 1);
    }
}

/// The ring contents, oldest first, each with its sequence number.
#[must_use]
pub fn recent() -> Vec<(u64, Event)> {
    lock().ring.iter().cloned().collect()
}

/// Emitted/dropped totals since the last [`reset`].
#[must_use]
pub fn stats() -> EventStats {
    let inner = lock();
    EventStats {
        emitted: inner.seq,
        dropped: inner.dropped,
    }
}

static CRASH_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static HOOK: Once = Once::new();

/// Sets (or clears) the crash-dump destination and installs the panic
/// hook on first use. While a path is set, any panic writes a
/// [`CRASH_SCHEMA`] document there; the previous hook still runs after.
pub fn set_crash_path(path: Option<PathBuf>) {
    let install = path.is_some();
    *CRASH_PATH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = path;
    if install {
        install_crash_hook();
    }
}

/// Installs the chaining panic hook (idempotent; normally called through
/// [`set_crash_path`]).
pub fn install_crash_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = CRASH_PATH
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            if let Some(path) = path {
                let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let location = info
                    .location()
                    .map_or_else(|| "unknown".to_string(), ToString::to_string);
                let _ = std::fs::write(&path, render_crash_dump(&message, &location));
            }
            prev(info);
        }));
    });
}

/// Renders the crash-dump document: panic message/location, the names of
/// spans still open on the span recorder, and the ring contents (each
/// event rendered exactly as its sink line).
#[must_use]
pub fn render_crash_dump(message: &str, location: &str) -> String {
    use std::fmt::Write as _;
    let stats = stats();
    let mut out = format!(
        "{{\"schema\":\"{CRASH_SCHEMA}\",\"message\":{},\"location\":{}",
        json::string(message),
        json::string(location)
    );
    let _ = write!(
        out,
        ",\"events_emitted\":{},\"ring_dropped\":{}",
        stats.emitted, stats.dropped
    );
    out.push_str(",\"open_spans\":[");
    let mut open = Vec::new();
    collect_open_spans(&crate::snapshot().spans, &mut open);
    for (i, name) in open.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::string(name));
    }
    out.push_str("],\"events\":[");
    for (i, (seq, ev)) in recent().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ev.to_json_line(*seq));
    }
    out.push_str("]}\n");
    out
}

fn collect_open_spans(nodes: &[crate::SpanNode], out: &mut Vec<String>) {
    for n in nodes {
        if n.duration_ns.is_none() {
            out.push(match &n.label {
                Some(l) => format!("{} {l}", n.name),
                None => n.name.clone(),
            });
        }
        collect_open_spans(&n.children, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Event state is process-global; tests in this binary serialize on
    /// this lock and restore the disabled/empty state on exit.
    fn events_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    struct Cleanup;
    impl Drop for Cleanup {
        fn drop(&mut self) {
            set_enabled(false);
            close_sink();
            set_crash_path(None);
            set_ring_capacity(DEFAULT_RING_CAPACITY);
            reset();
        }
    }

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("dmig-obs-events-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn disabled_recorder_ignores_emit() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        set_enabled(false);
        emit(Event::RoundStart {
            round: 0,
            transfers: 1,
            time: 0.0,
        });
        assert_eq!(stats(), EventStats::default());
        assert!(recent().is_empty());
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        set_ring_capacity(3);
        set_enabled(true);
        for i in 0..5 {
            emit(Event::RoundEnd {
                round: i,
                duration: 1.0,
                time: i as f64,
            });
        }
        let r = recent();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].0, 2, "oldest surviving seq");
        assert_eq!(r[2].0, 4);
        assert_eq!(
            stats(),
            EventStats {
                emitted: 5,
                dropped: 2
            }
        );
    }

    #[test]
    fn sink_streams_one_line_per_event() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        let path = temp("sink.jsonl");
        std::fs::remove_file(&path).ok();
        open_sink(&path).unwrap();
        set_enabled(true);
        emit(Event::Crash {
            disk: 2,
            replacement: Some(3),
            time: 0.25,
        });
        emit(Event::ItemLost {
            item: 7,
            reason: "dead-disk",
            time: 0.5,
        });
        close_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"schema\":\"dmig-events/1\""));
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"kind\":\"crash\""));
        assert!(lines[0].contains("\"replacement\":3"));
        assert!(lines[1].contains("\"reason\":\"dead-disk\""));
        // Each line is balanced JSON.
        for l in &lines {
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_sink_publishes_only_on_close() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        let path = temp("atomic.jsonl");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(format!("{path}.tmp")).ok();
        open_sink_atomic(&path).unwrap();
        set_enabled(true);
        emit(Event::RoundStart {
            round: 0,
            transfers: 2,
            time: 0.0,
        });
        sync_sink().unwrap();
        // Mid-stream: the final path does not exist, only the temp does.
        assert!(!std::path::Path::new(&path).exists());
        assert!(std::path::Path::new(&format!("{path}.tmp")).exists());
        close_sink();
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kind\":\"round_start\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_lines_interleave_with_events() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        let path = temp("journal.jsonl");
        std::fs::remove_file(&path).ok();
        open_sink(&path).unwrap();
        set_enabled(true);
        emit(Event::RoundEnd {
            round: 0,
            duration: 1.0,
            time: 1.0,
        });
        let n = append_sink_line("{\"schema\":\"dmig-exec-ckpt/1\"}").unwrap();
        assert_eq!(n, 30, "line plus newline");
        sync_sink().unwrap();
        emit(Event::RoundEnd {
            round: 1,
            duration: 1.0,
            time: 2.0,
        });
        close_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"round\":0"));
        assert_eq!(lines[1], "{\"schema\":\"dmig-exec-ckpt/1\"}");
        assert!(lines[2].contains("\"round\":1"));
        // Raw lines bypass the ring and the counters.
        assert_eq!(stats().emitted, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_without_sink_is_a_noop() {
        let _l = events_lock();
        let _c = Cleanup;
        close_sink();
        sync_sink().unwrap();
        assert_eq!(append_sink_line("ignored").unwrap(), 0);
    }

    #[test]
    fn json_lines_cover_every_kind() {
        let events = [
            Event::RoundStart {
                round: 1,
                transfers: 4,
                time: 0.0,
            },
            Event::RoundEnd {
                round: 1,
                duration: 2.0,
                time: 2.0,
            },
            Event::ItemDelivered {
                item: 3,
                redirected: true,
                time: 2.0,
            },
            Event::ItemLost {
                item: 4,
                reason: "retries-exhausted",
                time: 2.0,
            },
            Event::Retry {
                item: 5,
                attempt: 2,
                resume_at: 3.5,
                time: 2.0,
            },
            Event::Replan {
                pending: 6,
                reason: "crash",
                time: 2.0,
            },
            Event::Crash {
                disk: 0,
                replacement: None,
                time: 1.0,
            },
            Event::Stall {
                round: 9,
                duration: 80.0,
                median: 1.0,
                time: 100.0,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            let line = e.to_json_line(i as u64);
            assert!(
                line.contains(&format!("\"kind\":\"{}\"", e.kind())),
                "{line}"
            );
            assert!(line.contains(&format!("\"seq\":{i}")), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(!line.contains('\n'));
        }
        // The null replacement renders as JSON null.
        assert!(events[6].to_json_line(0).contains("\"replacement\":null"));
    }

    #[test]
    fn crash_dump_embeds_ring_and_open_spans() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        crate::reset();
        crate::set_enabled(true);
        set_enabled(true);
        emit(Event::RoundStart {
            round: 0,
            transfers: 2,
            time: 0.0,
        });
        emit(Event::Crash {
            disk: 1,
            replacement: None,
            time: 0.5,
        });
        let dump = {
            let _open = crate::span("executing");
            render_crash_dump("boom", "executor.rs:1")
        };
        crate::set_enabled(false);
        crate::reset();
        assert!(dump.contains("\"schema\":\"dmig-crash/1\""));
        assert!(dump.contains("\"message\":\"boom\""));
        assert!(dump.contains("\"executing\""), "{dump}");
        // The dump's last event is byte-equal to the sink line for it.
        let last_line = Event::Crash {
            disk: 1,
            replacement: None,
            time: 0.5,
        }
        .to_json_line(1);
        assert!(dump.contains(&last_line), "{dump}");
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
    }

    #[test]
    fn panic_hook_writes_the_dump() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        let path = temp("crash.json");
        std::fs::remove_file(&path).ok();
        set_enabled(true);
        emit(Event::Replan {
            pending: 3,
            reason: "stall",
            time: 7.0,
        });
        set_crash_path(Some(PathBuf::from(&path)));
        // Silence the chained default hook's backtrace for this panic.
        let result = std::panic::catch_unwind(|| panic!("deliberate test panic"));
        assert!(result.is_err());
        set_crash_path(None);
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.contains("\"schema\":\"dmig-crash/1\""));
        assert!(dump.contains("deliberate test panic"));
        assert!(dump.contains("\"kind\":\"replan\""));
        assert!(dump.contains("\"reason\":\"stall\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_preserves_sink_and_enabled() {
        let _l = events_lock();
        let _c = Cleanup;
        reset();
        let path = temp("reset.jsonl");
        std::fs::remove_file(&path).ok();
        open_sink(&path).unwrap();
        set_enabled(true);
        emit(Event::RoundStart {
            round: 0,
            transfers: 1,
            time: 0.0,
        });
        reset();
        assert!(is_enabled());
        assert_eq!(stats().emitted, 0);
        emit(Event::RoundStart {
            round: 0,
            transfers: 1,
            time: 0.0,
        });
        close_sink();
        // Both the pre- and post-reset events reached the file; the
        // sequence restarted at 0.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"seq\":0")));
        std::fs::remove_file(&path).ok();
    }
}
