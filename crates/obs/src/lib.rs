//! Std-only observability for the dmig solver pipeline.
//!
//! The crate provides three primitives behind one process-global,
//! thread-safe [`Recorder`]:
//!
//! * **spans** — hierarchical wall-clock intervals with thread
//!   attribution ([`span`], [`span_labeled`], [`span_under`]);
//! * **counters and gauges** — named atomic `u64`s ([`counter_add`],
//!   [`gauge_set`], [`gauge_max`]);
//! * **histograms** — log₂-bucketed distributions for latencies and
//!   operation counts ([`observe`], [`stopwatch`]).
//!
//! Collection is **off by default** and every recording call starts with a
//! single relaxed atomic load, so instrumentation left in hot paths costs
//! nothing measurable in production (the `obs_overhead` bench in
//! `dmig-bench` holds this to ≤1%). Turn it on with [`set_enabled`], pull
//! the data with [`snapshot`], and render it with
//! [`Snapshot::render_tree`] or [`Snapshot::to_json`].
//!
//! The crate is deliberately dependency-free: the workspace has no
//! crates.io access, so JSON is emitted by hand via the [`json`] helpers.
//!
//! # Example
//!
//! ```
//! let _ = dmig_obs::recorder(); // the shared global instance
//! dmig_obs::set_enabled(true);
//! {
//!     let _solve = dmig_obs::span("solve");
//!     dmig_obs::counter_add(dmig_obs::keys::FLOW_SOLVES, 1);
//!     dmig_obs::observe("dinic.max_flow_ns", 1234);
//! }
//! let snap = dmig_obs::snapshot();
//! assert_eq!(snap.counters["flow_solves"], 1);
//! dmig_obs::set_enabled(false);
//! dmig_obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod events;
pub mod explain;
pub mod fsio;
pub mod gate;
pub mod hist;
pub mod history;
pub mod json;
mod recorder;
pub mod sampler;
pub mod serve;
mod snapshot;
pub mod trace;
pub mod value;

pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::{global as recorder, OpenSpan, Recorder, SpanGuard, SpanId, Stopwatch};
pub use snapshot::{Snapshot, SpanNode};
pub use value::Value;

/// Codes stored in the [`keys::LIVE_PHASE`] gauge by the pipeline stages,
/// so a live scrape can tell *where* a run currently is. Monotonically
/// ordered by pipeline position for an ordinary `solve`/`simulate` run.
pub mod phase {
    /// No pipeline stage has reported yet.
    pub const IDLE: u64 = 0;
    /// Unsharded solve in progress.
    pub const SOLVE: u64 = 1;
    /// Sharded pipeline: graph-cut cell partition.
    pub const PARTITION: u64 = 2;
    /// Sharded pipeline: per-shard cell solving.
    pub const CELLS: u64 = 3;
    /// Sharded pipeline: merge and boundary-round reconciliation.
    pub const BOUNDARY: u64 = 4;
    /// Simulation / fault-tolerant execution of a schedule.
    pub const SIMULATE: u64 = 5;
    /// Run finished; the final snapshot is what remains.
    pub const DONE: u64 = 6;
}

/// Well-known counter, gauge, and histogram names.
///
/// Naming convention: bare snake_case for pipeline-level totals that
/// appear in reports (`flow_solves`), and `area.metric` for
/// subsystem-scoped values (`dinic.bfs_phases`, `sim.rounds`). Histogram
/// names end in a unit suffix (`_ns`) when they record time.
pub mod keys {
    /// Max-flow problems solved while peeling quota levels (counter).
    pub const FLOW_SOLVES: &str = "flow_solves";
    /// Euler-split halvings performed by the quota partitioner (counter).
    pub const EULER_SPLITS: &str = "euler_splits";
    /// Degree-subgraph units satisfied by the greedy warm start (counter).
    pub const WARM_START_HITS: &str = "warm_start_hits";
    /// Degree-subgraph units that needed the flow solver (counter).
    pub const WARM_START_MISSES: &str = "warm_start_misses";
    /// Euler orientations computed by `solve_even` (counter).
    pub const EULER_ORIENTATIONS: &str = "euler_orientations";
    /// Cycle/ear chunks claimed while labeling pairing cycles (counter).
    ///
    /// Under multi-worker orientation the chunk count depends on how the
    /// claim race interleaves, so unlike the solver counters above it is
    /// *not* expected to be identical across thread counts.
    pub const EULER_CHUNKS: &str = "euler.chunks";
    /// Chunk junctions merged by the deterministic stitch pass (counter).
    ///
    /// Always `chunks - cycles`; zero when every chunk closed its own
    /// cycle (e.g. any single-worker orientation).
    pub const EULER_STITCHES: &str = "euler.stitches";
    /// Milliseconds spent inside chunked Euler orientation (counter).
    pub const EULER_PAR_MS: &str = "euler.par_ms";
    /// Connected components solved by the parallel driver (counter).
    pub const COMPONENTS_SOLVED: &str = "components_solved";
    /// Deepest recursion reached by the quota partitioner (gauge).
    pub const QUOTA_MAX_DEPTH: &str = "quota.max_recursion_depth";
    /// Dinic max-flow invocations (counter).
    pub const DINIC_CALLS: &str = "dinic.calls";
    /// BFS level-graph phases across all Dinic runs (counter).
    pub const DINIC_BFS_PHASES: &str = "dinic.bfs_phases";
    /// Augmenting paths found across all Dinic runs (counter).
    pub const DINIC_AUGMENTING_PATHS: &str = "dinic.augmenting_paths";
    /// Per-call Dinic wall time in nanoseconds (histogram).
    pub const DINIC_MAX_FLOW_NS: &str = "dinic.max_flow_ns";
    /// Push-relabel max-flow invocations (counter).
    pub const PUSH_RELABEL_CALLS: &str = "push_relabel.calls";
    /// Saturating + non-saturating pushes across all runs (counter).
    pub const PUSH_RELABEL_PUSHES: &str = "push_relabel.pushes";
    /// Relabel operations across all runs (counter).
    pub const PUSH_RELABEL_RELABELS: &str = "push_relabel.relabels";
    /// Per-component solve wall time in nanoseconds (histogram).
    pub const COMPONENT_SOLVE_NS: &str = "component.solve_ns";
    /// Worker permits handed out by the shared thread budget (counter).
    pub const POOL_ACQUIRES: &str = "pool.acquires";
    /// Worker-permit requests denied because the budget was spent (counter).
    pub const POOL_ACQUIRE_DENIED: &str = "pool.acquire_denied";
    /// Subproblem tasks enqueued on the intra-component work pool (counter).
    pub const POOL_TASKS: &str = "pool.tasks";
    /// Tasks executed by a worker other than the one that enqueued them
    /// (counter).
    pub const POOL_STEALS: &str = "pool.steals";
    /// Widest worker fan-out a single quota recursion reached (gauge).
    pub const POOL_MAX_WORKERS: &str = "pool.max_workers";
    /// Deepest pending-task queue a quota recursion reached (gauge).
    pub const POOL_MAX_QUEUE_DEPTH: &str = "pool.max_queue_depth";
    /// Solver scratch arenas reused from the process-wide pool (counter).
    pub const SCRATCH_REUSES: &str = "scratch.reuses";
    /// Solver scratch arenas freshly allocated on pool miss (counter).
    pub const SCRATCH_ALLOCS: &str = "scratch.allocs";
    /// Rounds executed by the simulation engine (counter).
    pub const SIM_ROUNDS: &str = "sim.rounds";
    /// Object transfers executed by the simulation engine (counter).
    pub const SIM_TRANSFERS: &str = "sim.transfers";
    /// Transfers per simulated round (histogram).
    pub const SIM_ROUND_TRANSFERS: &str = "sim.round_transfers";
    /// Wall-clock nanoseconds the engine spent per round (histogram).
    pub const SIM_ROUND_WALL_NS: &str = "sim.round_wall_ns";
    /// Rounds whose wall time exceeded the stall threshold (k× the
    /// rolling median round time) (counter).
    pub const SIM_STALLS: &str = "sim.stalls";
    /// Percentage of scheduled rounds the engine has executed (gauge).
    pub const SIM_PROGRESS_PCT: &str = "sim.progress_pct";
    /// Rounds of the schedule the CLI produced (gauge).
    pub const SOLVE_ROUNDS: &str = "solve.rounds";
    /// Lower bound `Δ'` (LB1) of the solved instance (gauge).
    pub const SOLVE_LB1: &str = "solve.lb1";
    /// Lower bound `Γ'` (LB2) of the solved instance (gauge).
    pub const SOLVE_LB2: &str = "solve.lb2";
    /// Closed-loop replans performed by the fault-tolerant executor
    /// (counter).
    pub const EXEC_REPLANS: &str = "exec.replans";
    /// Transfer attempts retried after a flaky failure (counter).
    pub const EXEC_RETRIES: &str = "exec.retries";
    /// Items lost to dead disks or exhausted retries (counter).
    pub const EXEC_LOST_ITEMS: &str = "exec.lost_items";
    /// Executed rounds during which some disk ran below the degradation
    /// threshold (counter).
    pub const EXEC_DEGRADED_ROUNDS: &str = "exec.degraded_rounds";
    /// Items rerouted to a replacement disk after a crash-stop (counter).
    pub const EXEC_REDIRECTS: &str = "exec.redirects";
    /// Crash-stop fault events applied by the executor (counter).
    pub const EXEC_CRASHES: &str = "exec.crashes";
    /// Structured events recorded by the flight recorder (counter).
    pub const EVENTS_EMITTED: &str = "events.emitted";
    /// Events evicted from the flight recorder's bounded ring (counter).
    pub const EVENTS_DROPPED: &str = "events.dropped";
    /// `ItemLost` events recorded by the flight recorder (counter).
    pub const EVENTS_ITEM_LOST: &str = "events.item_lost";
    /// Binding lower bound `max(Δ', Γ')` the attribution engine reported
    /// (gauge).
    pub const EXPLAIN_BINDING_BOUND: &str = "explain.binding_bound";
    /// The disk realizing LB1 per the attribution engine (gauge).
    pub const EXPLAIN_LB1_DISK: &str = "explain.lb1_disk";
    /// Worker shards used by the sharded solve pipeline (gauge).
    pub const SHARD_COUNT: &str = "shard.count";
    /// Edges cut to the boundary set by the cell partition (gauge).
    pub const SHARD_CUT_EDGES: &str = "shard.cut_edges";
    /// Cut fraction in basis points: `cut_edges * 10000 / total` (gauge).
    pub const SHARD_CUT_FRACTION: &str = "shard.cut_fraction";
    /// Milliseconds spent merging shard schedules and aligning the
    /// boundary rounds (counter).
    pub const SHARD_RECONCILE_MS: &str = "shard.reconcile_ms";
    /// Rounds of the boundary pass appended after the cell rounds (gauge).
    pub const SHARD_BOUNDARY_ROUNDS: &str = "shard.boundary_rounds";
    /// Current pipeline stage code; see [`crate::phase`] (gauge).
    pub const LIVE_PHASE: &str = "live.phase";
    /// Rounds the live engine has executed in the current plan (gauge).
    pub const LIVE_ROUND: &str = "live.round";
    /// Work items finished by the current phase: cells solved while
    /// sharding, transfers executed while simulating (gauge).
    pub const LIVE_ITEMS_DONE: &str = "live.items_done";
    /// Shard bins being solved right now (gauge).
    pub const LIVE_SHARD_ACTIVE: &str = "live.shard_active";
    /// Resident set size (VmRSS) sampled from /proc/self/status (gauge).
    pub const MEM_RSS_BYTES: &str = "mem.rss_bytes";
    /// Peak resident set size (VmHWM) from /proc/self/status (gauge).
    pub const MEM_RSS_PEAK_BYTES: &str = "mem.rss_peak_bytes";
    /// Extra-worker permits currently free in the shared budget (gauge).
    pub const POOL_PERMITS_AVAILABLE: &str = "pool.permits_available";
    /// Extra-worker permits the budget was last reset to (gauge).
    pub const POOL_PERMITS_CAPACITY: &str = "pool.permits_capacity";
    /// Scratch arenas currently parked in the process-wide pool (gauge).
    pub const POOL_PARKED: &str = "pool.parked";
    /// High-water mark of parked scratch arenas (gauge).
    pub const POOL_PARKED_HIGH_WATER: &str = "pool.parked_high_water";
    /// Ticks taken by the background sampling profiler (counter).
    pub const PROF_SAMPLES: &str = "prof.samples";
    /// HTTP requests answered by the `--serve` listener (counter).
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Round index of the last checkpoint the workspace journal holds
    /// (gauge).
    pub const WS_ROUND: &str = "ws.round";
    /// Executor checkpoints appended to the workspace journal (counter).
    pub const WS_CHECKPOINTS: &str = "ws.checkpoints";
    /// Times an executor was revived from a journal checkpoint (counter).
    pub const WS_RESUMES: &str = "ws.resumes";
    /// Bytes appended to the workspace journal so far (gauge).
    pub const WS_JOURNAL_BYTES: &str = "ws.journal_bytes";
}

/// Name prefix of the sampling profiler's per-span self-time family:
/// each distinct open span name gets a `prof.self_ns.<span>` histogram.
/// Lives outside [`keys`] because the family is open-ended — the suffix
/// is the span name observed at runtime.
pub const PROF_SELF_NS_PREFIX: &str = "prof.self_ns.";

/// One row per `keys::*` constant: `(key, one-line doc)`. The unit test
/// `keys_reference_covers_every_constant` fails when a constant is added
/// here without a doc row (or vice versa), and the README carries the
/// rendered [`render_keys_table`] between `<!-- keys:begin/end -->`
/// markers, kept in sync by its own test.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn keys_reference() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            keys::FLOW_SOLVES,
            "Max-flow problems solved while peeling quota levels (counter).",
        ),
        (
            keys::EULER_SPLITS,
            "Euler-split halvings performed by the quota partitioner (counter).",
        ),
        (
            keys::WARM_START_HITS,
            "Degree-subgraph units satisfied by the greedy warm start (counter).",
        ),
        (
            keys::WARM_START_MISSES,
            "Degree-subgraph units that needed the flow solver (counter).",
        ),
        (
            keys::EULER_ORIENTATIONS,
            "Euler orientations computed by `solve_even` (counter).",
        ),
        (
            keys::EULER_CHUNKS,
            "Cycle/ear chunks claimed while labeling pairing cycles; \
             thread-count dependent by design (counter).",
        ),
        (
            keys::EULER_STITCHES,
            "Chunk junctions merged by the deterministic stitch pass (counter).",
        ),
        (
            keys::EULER_PAR_MS,
            "Milliseconds spent inside chunked Euler orientation (counter).",
        ),
        (
            keys::COMPONENTS_SOLVED,
            "Connected components solved by the parallel driver (counter).",
        ),
        (
            keys::QUOTA_MAX_DEPTH,
            "Deepest recursion reached by the quota partitioner (gauge).",
        ),
        (keys::DINIC_CALLS, "Dinic max-flow invocations (counter)."),
        (
            keys::DINIC_BFS_PHASES,
            "BFS level-graph phases across all Dinic runs (counter).",
        ),
        (
            keys::DINIC_AUGMENTING_PATHS,
            "Augmenting paths found across all Dinic runs (counter).",
        ),
        (
            keys::DINIC_MAX_FLOW_NS,
            "Per-call Dinic wall time in nanoseconds (histogram).",
        ),
        (
            keys::PUSH_RELABEL_CALLS,
            "Push-relabel max-flow invocations (counter).",
        ),
        (
            keys::PUSH_RELABEL_PUSHES,
            "Saturating + non-saturating pushes across all runs (counter).",
        ),
        (
            keys::PUSH_RELABEL_RELABELS,
            "Relabel operations across all runs (counter).",
        ),
        (
            keys::COMPONENT_SOLVE_NS,
            "Per-component solve wall time in nanoseconds (histogram).",
        ),
        (
            keys::POOL_ACQUIRES,
            "Worker permits handed out by the shared thread budget (counter).",
        ),
        (
            keys::POOL_ACQUIRE_DENIED,
            "Worker-permit requests denied because the budget was spent (counter).",
        ),
        (
            keys::POOL_TASKS,
            "Subproblem tasks enqueued on the intra-component work pool (counter).",
        ),
        (
            keys::POOL_STEALS,
            "Tasks executed by a worker other than the one that enqueued them (counter).",
        ),
        (
            keys::POOL_MAX_WORKERS,
            "Widest worker fan-out a single quota recursion reached (gauge).",
        ),
        (
            keys::POOL_MAX_QUEUE_DEPTH,
            "Deepest pending-task queue a quota recursion reached (gauge).",
        ),
        (
            keys::SCRATCH_REUSES,
            "Solver scratch arenas reused from the process-wide pool (counter).",
        ),
        (
            keys::SCRATCH_ALLOCS,
            "Solver scratch arenas freshly allocated on pool miss (counter).",
        ),
        (
            keys::SIM_ROUNDS,
            "Rounds executed by the simulation engine (counter).",
        ),
        (
            keys::SIM_TRANSFERS,
            "Object transfers executed by the simulation engine (counter).",
        ),
        (
            keys::SIM_ROUND_TRANSFERS,
            "Transfers per simulated round (histogram).",
        ),
        (
            keys::SIM_ROUND_WALL_NS,
            "Wall-clock nanoseconds the engine spent per round (histogram).",
        ),
        (
            keys::SIM_STALLS,
            "Rounds whose wall time exceeded the stall threshold (counter).",
        ),
        (
            keys::SIM_PROGRESS_PCT,
            "Percentage of scheduled rounds the engine has executed (gauge).",
        ),
        (
            keys::SOLVE_ROUNDS,
            "Rounds of the schedule the CLI produced (gauge).",
        ),
        (
            keys::SOLVE_LB1,
            "Lower bound Δ' (LB1) of the solved instance (gauge).",
        ),
        (
            keys::SOLVE_LB2,
            "Lower bound Γ' (LB2) of the solved instance (gauge).",
        ),
        (
            keys::EXEC_REPLANS,
            "Closed-loop replans performed by the fault-tolerant executor (counter).",
        ),
        (
            keys::EXEC_RETRIES,
            "Transfer attempts retried after a flaky failure (counter).",
        ),
        (
            keys::EXEC_LOST_ITEMS,
            "Items lost to dead disks or exhausted retries (counter).",
        ),
        (
            keys::EXEC_DEGRADED_ROUNDS,
            "Executed rounds with some disk below the degradation threshold (counter).",
        ),
        (
            keys::EXEC_REDIRECTS,
            "Items rerouted to a replacement disk after a crash-stop (counter).",
        ),
        (
            keys::EXEC_CRASHES,
            "Crash-stop fault events applied by the executor (counter).",
        ),
        (
            keys::EVENTS_EMITTED,
            "Structured events recorded by the flight recorder (counter).",
        ),
        (
            keys::EVENTS_DROPPED,
            "Events evicted from the flight recorder's bounded ring (counter).",
        ),
        (
            keys::EVENTS_ITEM_LOST,
            "`ItemLost` events recorded by the flight recorder (counter).",
        ),
        (
            keys::EXPLAIN_BINDING_BOUND,
            "Binding lower bound max(Δ', Γ') reported by the attribution engine (gauge).",
        ),
        (
            keys::EXPLAIN_LB1_DISK,
            "The disk realizing LB1 per the attribution engine (gauge).",
        ),
        (
            keys::SHARD_COUNT,
            "Worker shards used by the sharded solve pipeline (gauge).",
        ),
        (
            keys::SHARD_CUT_EDGES,
            "Edges cut to the boundary set by the cell partition (gauge).",
        ),
        (
            keys::SHARD_CUT_FRACTION,
            "Cut fraction in basis points: `cut_edges * 10000 / total` (gauge).",
        ),
        (
            keys::SHARD_RECONCILE_MS,
            "Milliseconds spent merging shard schedules and aligning the boundary rounds (counter).",
        ),
        (
            keys::SHARD_BOUNDARY_ROUNDS,
            "Rounds of the boundary pass appended after the cell rounds (gauge).",
        ),
        (
            keys::LIVE_PHASE,
            "Current pipeline stage code; see the `phase` module (gauge).",
        ),
        (
            keys::LIVE_ROUND,
            "Rounds the live engine has executed in the current plan (gauge).",
        ),
        (
            keys::LIVE_ITEMS_DONE,
            "Work items finished by the current phase: cells solved while sharding, transfers executed while simulating (gauge).",
        ),
        (
            keys::LIVE_SHARD_ACTIVE,
            "Shard bins being solved right now (gauge).",
        ),
        (
            keys::MEM_RSS_BYTES,
            "Resident set size (VmRSS) sampled from /proc/self/status (gauge).",
        ),
        (
            keys::MEM_RSS_PEAK_BYTES,
            "Peak resident set size (VmHWM) from /proc/self/status (gauge).",
        ),
        (
            keys::POOL_PERMITS_AVAILABLE,
            "Extra-worker permits currently free in the shared budget (gauge).",
        ),
        (
            keys::POOL_PERMITS_CAPACITY,
            "Extra-worker permits the budget was last reset to (gauge).",
        ),
        (
            keys::POOL_PARKED,
            "Scratch arenas currently parked in the process-wide pool (gauge).",
        ),
        (
            keys::POOL_PARKED_HIGH_WATER,
            "High-water mark of parked scratch arenas (gauge).",
        ),
        (
            keys::PROF_SAMPLES,
            "Ticks taken by the background sampling profiler (counter).",
        ),
        (
            keys::SERVE_REQUESTS,
            "HTTP requests answered by the `--serve` listener (counter).",
        ),
        (
            keys::WS_ROUND,
            "Round index of the last checkpoint the workspace journal holds (gauge).",
        ),
        (
            keys::WS_CHECKPOINTS,
            "Executor checkpoints appended to the workspace journal (counter).",
        ),
        (
            keys::WS_RESUMES,
            "Times an executor was revived from a journal checkpoint (counter).",
        ),
        (
            keys::WS_JOURNAL_BYTES,
            "Bytes appended to the workspace journal so far (gauge).",
        ),
    ]
}

/// Renders [`keys_reference`] as the Markdown table embedded in the
/// README's metric-key reference section.
#[must_use]
pub fn render_keys_table() -> String {
    let mut out = String::from("| key | description |\n| --- | --- |\n");
    for (key, doc) in keys_reference() {
        out.push_str(&format!("| `{key}` | {doc} |\n"));
    }
    // The sampler's self-time family is open-ended (one histogram per span
    // name), so it is documented as a prefix row rather than a constant.
    out.push_str(&format!(
        "| `{PROF_SELF_NS_PREFIX}<span>` | Sampled self-time per open span \
         name, one tick interval per hit (histogram). |\n"
    ));
    out
}

/// Whether the global recorder is collecting.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    recorder().is_enabled()
}

/// Turns collection on or off on the global recorder.
pub fn set_enabled(enabled: bool) {
    recorder().set_enabled(enabled);
}

/// Discards all data held by the global recorder (registered names are
/// kept, zeroed).
pub fn reset() {
    recorder().reset();
}

/// Opens a span on the global recorder; closed when the guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    recorder().span(name)
}

/// Opens a labelled span; the label closure only runs while enabled.
pub fn span_labeled<F: FnOnce() -> String>(name: &'static str, f: F) -> SpanGuard {
    recorder().span_labeled(name, f)
}

/// Opens a span under an explicit parent (cross-thread attribution).
pub fn span_under<F: FnOnce() -> String>(
    parent: Option<SpanId>,
    name: &'static str,
    f: F,
) -> SpanGuard {
    recorder().span_under(parent, name, f)
}

/// The innermost open span on this thread, for handing to workers.
#[must_use]
pub fn current_span() -> Option<SpanId> {
    recorder().current_span()
}

/// Adds `delta` to a named counter (0 pre-registers the key).
pub fn counter_add(name: &'static str, delta: u64) {
    recorder().counter_add(name, delta);
}

/// Sets a named gauge.
pub fn gauge_set(name: &'static str, value: u64) {
    recorder().gauge_set(name, value);
}

/// Raises a named gauge to `value` if larger.
pub fn gauge_max(name: &'static str, value: u64) {
    recorder().gauge_max(name, value);
}

/// Moves a named gauge by a signed delta, clamping at zero.
pub fn gauge_add(name: &'static str, delta: i64) {
    recorder().gauge_add(name, delta);
}

/// Records one observation in a named histogram.
pub fn observe(name: &'static str, value: u64) {
    recorder().observe(name, value);
}

/// Starts a stopwatch that records into a named histogram on drop.
pub fn stopwatch(name: &'static str) -> Stopwatch {
    recorder().stopwatch(name)
}

/// Snapshots everything the global recorder has collected.
#[must_use]
pub fn snapshot() -> Snapshot {
    recorder().snapshot()
}

/// Shared helpers for in-crate tests that touch the process-global
/// recorder: one lock serializes them all (lib, sampler, serve tests run
/// in the same binary), and [`testutil::Cleanup`] restores the
/// disabled/empty state on exit even on panic.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    pub(crate) fn obs_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) struct Cleanup;
    impl Drop for Cleanup {
        fn drop(&mut self) {
            crate::set_enabled(false);
            crate::reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{obs_lock, Cleanup};

    #[test]
    fn disabled_recorder_collects_nothing() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::set_enabled(false);
        super::reset();
        {
            let s = super::span("ghost");
            assert!(s.id().is_none());
            super::counter_add("ghost_counter", 5);
            super::observe("ghost_hist", 1);
            let _w = super::stopwatch("ghost_watch");
        }
        let snap = super::snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.counters.get("ghost_counter"), None);
        assert!(snap.histograms.is_empty() || !snap.histograms.contains_key("ghost_hist"));
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        {
            let _outer = super::span("outer");
            {
                let _inner = super::span_labeled("inner", || "x=1".to_string());
            }
            let _sibling = super::span("sibling");
        }
        let snap = super::snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "outer");
        let kids: Vec<&str> = snap.spans[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(kids, ["inner", "sibling"]);
        assert_eq!(snap.spans[0].children[0].label.as_deref(), Some("x=1"));
        assert!(snap.spans[0].duration_ns.is_some());
    }

    #[test]
    fn cross_thread_parenting_attributes_to_coordinator() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        {
            let coord = super::span("coordinator");
            let parent = coord.id();
            std::thread::scope(|scope| {
                for i in 0..2 {
                    scope.spawn(move || {
                        let _s = super::span_under(parent, "worker", || format!("#{i}"));
                    });
                }
            });
        }
        let snap = super::snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].children.len(), 2);
        let threads: Vec<u64> = snap.spans[0].children.iter().map(|c| c.thread).collect();
        assert_ne!(threads[0], snap.spans[0].thread);
        assert_ne!(threads[1], snap.spans[0].thread);
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        super::counter_add("c", 0); // pre-register
        super::counter_add("c", 3);
        super::counter_add("c", 4);
        super::gauge_set("g", 9);
        super::gauge_max("g", 5); // lower: ignored
        super::gauge_max("g", 12);
        super::observe("h", 7);
        super::observe("h", 9);
        let snap = super::snapshot();
        assert_eq!(snap.counters["c"], 7);
        assert_eq!(snap.gauges["g"], 12);
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.histograms["h"].sum, 16);
    }

    #[test]
    fn reset_keeps_keys_and_invalidates_straddling_guards() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        super::counter_add("kept", 5);
        let straddler = super::span("straddler");
        super::reset();
        drop(straddler); // must not resurrect or corrupt anything
        let snap = super::snapshot();
        assert_eq!(snap.counters["kept"], 0, "key kept, value zeroed");
        assert!(snap.spans.is_empty());
        assert_eq!(super::current_span(), None);
    }

    #[test]
    fn stopwatch_records_on_drop() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        {
            let _w = super::stopwatch("watch_ns");
        }
        let snap = super::snapshot();
        assert_eq!(snap.histograms["watch_ns"].count, 1);
    }

    /// Every `pub const NAME: &str = "...";` inside `mod keys`, extracted
    /// from this file's own source.
    fn keys_in_source() -> Vec<String> {
        let src = include_str!("lib.rs");
        let body = src
            .split("pub mod keys {")
            .nth(1)
            .and_then(|rest| rest.split("\n}").next())
            .expect("keys module present in lib.rs");
        body.lines()
            .filter_map(|line| {
                let line = line.trim();
                let rest = line.strip_prefix("pub const ")?;
                let value = rest.split('=').nth(1)?.trim();
                Some(value.trim_end_matches(';').trim_matches('"').to_string())
            })
            .collect()
    }

    #[test]
    fn keys_reference_covers_every_constant() {
        let in_source = keys_in_source();
        assert!(
            in_source.len() >= 40,
            "extraction broke: only {} keys found",
            in_source.len()
        );
        let documented: Vec<&str> = super::keys_reference().iter().map(|(k, _)| *k).collect();
        for key in &in_source {
            assert!(
                documented.contains(&key.as_str()),
                "key `{key}` added to `mod keys` without a row in \
                 `keys_reference()` — document it there (and re-generate \
                 the README table)"
            );
        }
        for key in &documented {
            assert!(
                in_source.iter().any(|k| k == key),
                "`keys_reference()` documents `{key}` but no such constant \
                 exists in `mod keys`"
            );
        }
        assert_eq!(in_source.len(), documented.len(), "duplicate rows or keys");
    }

    #[test]
    fn keys_reference_docs_are_one_line_and_typed() {
        for (key, doc) in super::keys_reference() {
            assert!(!doc.contains('\n'), "{key}: doc must be one line");
            assert!(
                doc.contains("(counter)") || doc.contains("(gauge)") || doc.contains("(histogram)"),
                "{key}: doc must state the metric type"
            );
        }
    }

    #[test]
    fn readme_keys_table_is_in_sync() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
        let readme = std::fs::read_to_string(path).expect("README.md readable");
        let embedded = readme
            .split("<!-- keys:begin -->")
            .nth(1)
            .and_then(|rest| rest.split("<!-- keys:end -->").next())
            .expect("README carries <!-- keys:begin/end --> markers");
        assert_eq!(
            embedded.trim(),
            super::render_keys_table().trim(),
            "README metric-key table drifted from `render_keys_table()` — \
             paste the new table between the keys:begin/end markers"
        );
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let _l = obs_lock();
        let _c = Cleanup;
        super::reset();
        super::set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        super::counter_add("spins", 1);
                    }
                });
            }
        });
        assert_eq!(super::snapshot().counters["spins"], 4000);
    }
}
