//! Minimal JSON emission helpers.
//!
//! The workspace has no crates.io access and the vendored `serde` is a
//! no-op marker subset, so every JSON producer in-tree writes its output by
//! hand. These helpers centralize the two error-prone parts — string
//! escaping and float formatting — so snapshots, reports, and benchmarks
//! all emit valid JSON the same way.

use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `f64` as a JSON number, mapping non-finite values to `null`
/// (JSON has no NaN/Infinity).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("x"), "\"x\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.500000");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
