//! The thread-safe recorder behind the crate's facade functions.
//!
//! One process-global [`Recorder`] collects three kinds of telemetry:
//!
//! * **spans** — hierarchical wall-clock intervals. Each thread keeps a
//!   stack of open spans, so nesting is implicit; cross-thread parenting
//!   (a worker attributing its span to the coordinator's span) is explicit
//!   via [`Recorder::span_under`]. Timing uses a monotonic [`Instant`]
//!   epoch shared by every span.
//! * **counters / gauges** — named atomic `u64`s. Counters accumulate;
//!   gauges keep a last-written value or a running maximum.
//! * **histograms** — log-bucketed distributions (see [`crate::hist`]).
//!
//! Everything is a no-op while the recorder is disabled (the default): the
//! fast path is a single relaxed atomic load, so instrumented hot loops run
//! at full speed in production. [`Recorder::reset`] bumps a generation
//! counter so span guards that straddle a reset never write into the wrong
//! buffer.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::hist::Histogram;
use crate::snapshot::{SnapSpan, Snapshot};

/// Identity of an open (or closed) span, usable as an explicit parent for
/// spans started on other threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId {
    pub(crate) generation: u64,
    pub(crate) index: usize,
}

#[derive(Clone, Debug)]
pub(crate) struct SpanRecord {
    pub(crate) name: &'static str,
    pub(crate) label: Option<String>,
    pub(crate) parent: Option<usize>,
    pub(crate) thread: u64,
    pub(crate) start_ns: u64,
    pub(crate) duration_ns: Option<u64>,
}

/// A span that was still open (unfinished) at observation time — the unit
/// of attribution for the sampling profiler in [`crate::sampler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenSpan {
    /// Static span name.
    pub name: &'static str,
    /// Dense ordinal of the thread that opened the span.
    pub thread: u64,
    /// Open time in nanoseconds since the recorder epoch.
    pub start_ns: u64,
}

/// The process-wide telemetry sink. Use [`crate::recorder`] to reach the
/// global instance; tests may leak (`Box::leak`) private instances.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    generation: AtomicU64,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }
}

/// The process-global recorder.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::default)
}

/// Small dense per-thread ordinal for span attribution (assigned on the
/// thread's first recorded span).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|&o| o)
}

thread_local! {
    /// Stack of open spans on this thread, as `(generation, index)`.
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// Whether telemetry is being collected. Every recording call checks
    /// this first with one relaxed load.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off. Disabling does not discard data already
    /// collected.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Discards all spans and zeroes every counter, gauge, and histogram
    /// (registered names are kept). Open span guards from before the reset
    /// detect the generation change and drop silently.
    pub fn reset(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
        self.spans.lock().expect("span buffer poisoned").clear();
        for c in self.counters.read().expect("counter map poisoned").values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.read().expect("gauge map poisoned").values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .read()
            .expect("histogram map poisoned")
            .values()
        {
            h.reset();
        }
    }

    /// Nanoseconds since the recorder's epoch (monotonic).
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span named `name` under the current thread's innermost open
    /// span. Returns a guard that closes the span when dropped. No-op (and
    /// allocation-free) while disabled.
    pub fn span(&'static self, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                rec: self,
                open: None,
            };
        }
        self.span_inner(name, None, None)
    }

    /// Opens a span with a lazily-computed label (the closure only runs
    /// when the recorder is enabled).
    pub fn span_labeled<F: FnOnce() -> String>(
        &'static self,
        name: &'static str,
        f: F,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                rec: self,
                open: None,
            };
        }
        self.span_inner(name, Some(f()), None)
    }

    /// Opens a span under an explicit parent — the cross-thread case: a
    /// coordinator captures [`Recorder::current_span`] before spawning and
    /// workers attribute their spans to it.
    pub fn span_under<F: FnOnce() -> String>(
        &'static self,
        parent: Option<SpanId>,
        name: &'static str,
        f: F,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                rec: self,
                open: None,
            };
        }
        self.span_inner(name, Some(f()), parent)
    }

    fn span_inner(
        &'static self,
        name: &'static str,
        label: Option<String>,
        parent: Option<SpanId>,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                rec: self,
                open: None,
            };
        }
        let generation = self.generation.load(Ordering::Relaxed);
        let parent_index = match parent {
            Some(p) if p.generation == generation => Some(p.index),
            Some(_) => None,
            None => SPAN_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|&&(g, _)| g == generation)
                    .map(|&(_, i)| i)
            }),
        };
        let record = SpanRecord {
            name,
            label,
            parent: parent_index,
            thread: thread_ordinal(),
            start_ns: self.now_ns(),
            duration_ns: None,
        };
        let index = {
            let mut spans = self.spans.lock().expect("span buffer poisoned");
            spans.push(record);
            spans.len() - 1
        };
        SPAN_STACK.with(|s| s.borrow_mut().push((generation, index)));
        SpanGuard {
            rec: self,
            open: Some(SpanId { generation, index }),
        }
    }

    /// The innermost open span on the calling thread, if any.
    #[must_use]
    pub fn current_span(&self) -> Option<SpanId> {
        if !self.is_enabled() {
            return None;
        }
        let generation = self.generation.load(Ordering::Relaxed);
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|&&(g, _)| g == generation)
                .map(|&(_, index)| SpanId { generation, index })
        })
    }

    fn close_span(&self, id: SpanId) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(g, i)| g == id.generation && i == id.index)
            {
                stack.truncate(pos);
            }
        });
        if self.generation.load(Ordering::Relaxed) != id.generation {
            return; // Reset since the span opened; its record is gone.
        }
        let end = self.now_ns();
        let mut spans = self.spans.lock().expect("span buffer poisoned");
        if let Some(rec) = spans.get_mut(id.index) {
            rec.duration_ns = Some(end.saturating_sub(rec.start_ns));
        }
    }

    /// Adds `delta` to the named counter, registering the name on first
    /// use. `delta == 0` still registers (used to pre-declare well-known
    /// keys so exports always contain them).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(c) = self
            .counters
            .read()
            .expect("counter map poisoned")
            .get(name)
        {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .expect("counter map poisoned")
            .entry(name)
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(g) = self.gauges.read().expect("gauge map poisoned").get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        self.gauges
            .write()
            .expect("gauge map poisoned")
            .entry(name)
            .or_default()
            .store(value, Ordering::Relaxed);
    }

    /// Raises the named gauge to `value` if larger (running maximum).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(g) = self.gauges.read().expect("gauge map poisoned").get(name) {
            g.fetch_max(value, Ordering::Relaxed);
            return;
        }
        self.gauges
            .write()
            .expect("gauge map poisoned")
            .entry(name)
            .or_default()
            .fetch_max(value, Ordering::Relaxed);
    }

    /// Moves the named gauge by a signed `delta`, clamping at zero on
    /// underflow. For occupancy-style gauges (`live.shard_active`) whose
    /// increments and decrements happen on different threads.
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if !self.is_enabled() {
            return;
        }
        let apply = |g: &AtomicU64| {
            if delta >= 0 {
                g.fetch_add(delta.unsigned_abs(), Ordering::Relaxed);
            } else {
                let d = delta.unsigned_abs();
                let _ = g.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(d))
                });
            }
        };
        if let Some(g) = self.gauges.read().expect("gauge map poisoned").get(name) {
            apply(g);
            return;
        }
        apply(
            self.gauges
                .write()
                .expect("gauge map poisoned")
                .entry(name)
                .or_default(),
        );
    }

    /// Records one observation in the named histogram.
    pub fn observe(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        if let Some(h) = self
            .histograms
            .read()
            .expect("histogram map poisoned")
            .get(name)
        {
            h.record(value);
            return;
        }
        self.histograms
            .write()
            .expect("histogram map poisoned")
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::default()))
            .record(value);
    }

    /// Starts a stopwatch that records its elapsed nanoseconds into the
    /// named histogram when dropped. No-op while disabled.
    pub fn stopwatch(&'static self, name: &'static str) -> Stopwatch {
        Stopwatch {
            rec: self,
            inner: self.is_enabled().then(|| (name, Instant::now())),
        }
    }

    /// A point-in-time copy of everything collected so far.
    ///
    /// # Panics
    ///
    /// Panics if a collecting thread panicked while holding an internal
    /// lock (poisoning).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("counter map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("gauge map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("histogram map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.snapshot()))
            .collect();
        let spans: Vec<SnapSpan> = self
            .spans
            .lock()
            .expect("span buffer poisoned")
            .iter()
            .map(|r| SnapSpan {
                name: r.name.to_string(),
                label: r.label.clone(),
                parent: r.parent,
                thread: r.thread,
                start_ns: r.start_ns,
                duration_ns: r.duration_ns,
            })
            .collect();
        Snapshot::assemble(counters, gauges, histograms, spans)
    }

    /// The innermost open span of every thread that currently has one,
    /// ordered by thread ordinal. Spans obey stack discipline per thread,
    /// so a thread's *last* open record in the buffer is its innermost.
    /// This is the sampling profiler's read side: one brief buffer lock,
    /// no allocation proportional to history (open spans only).
    ///
    /// # Panics
    ///
    /// Panics if a collecting thread panicked while holding the span
    /// buffer lock (poisoning).
    #[must_use]
    pub fn leaf_open_spans(&self) -> Vec<OpenSpan> {
        if !self.is_enabled() {
            return Vec::new();
        }
        let spans = self.spans.lock().expect("span buffer poisoned");
        let mut leaves: BTreeMap<u64, OpenSpan> = BTreeMap::new();
        for r in spans.iter() {
            if r.duration_ns.is_none() {
                leaves.insert(
                    r.thread,
                    OpenSpan {
                        name: r.name,
                        thread: r.thread,
                        start_ns: r.start_ns,
                    },
                );
            }
        }
        leaves.into_values().collect()
    }
}

/// Closes its span when dropped. Obtained from the span methods on
/// [`Recorder`]; inert when the recorder was disabled at open time.
#[derive(Debug)]
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    rec: &'static Recorder,
    open: Option<SpanId>,
}

impl SpanGuard {
    /// The identity of this span, for cross-thread parenting (`None` when
    /// the recorder was disabled at open time).
    #[must_use]
    pub fn id(&self) -> Option<SpanId> {
        self.open
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.open.take() {
            self.rec.close_span(id);
        }
    }
}

/// Records elapsed wall-clock nanoseconds into a histogram on drop.
#[derive(Debug)]
#[must_use = "dropping the stopwatch immediately records its time"]
pub struct Stopwatch {
    rec: &'static Recorder,
    inner: Option<(&'static str, Instant)>,
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.observe(name, ns);
        }
    }
}
