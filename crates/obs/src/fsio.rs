//! Crash-safe file output: write-to-temp plus atomic rename.
//!
//! Every one-shot artifact the tools produce — `--report-out` JSON,
//! `--metrics-out` snapshots, workspace manifests and plans — goes
//! through [`atomic_write`]. The contract: a reader at the destination
//! path sees either the previous complete document or the new complete
//! document, never a torn prefix, even if the writer is `kill -9`ed
//! mid-write. POSIX `rename(2)` within one directory gives exactly that;
//! the temp file lives next to its destination so the rename never
//! crosses a filesystem boundary.
//!
//! Streaming outputs (event journals) need the opposite discipline —
//! durable appends whose partial prefix *is* the recovery record — and
//! use [`crate::events::open_sink`] + [`crate::events::sync_sink`]
//! instead.

use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes stream to a sibling
/// `<path>.tmp.<pid>` file, are fsynced, and land at `path` via rename.
/// A crash at any point leaves either the old file or the new one.
///
/// # Errors
///
/// Propagates the underlying create/write/sync/rename failure; the temp
/// file is removed on any of them.
pub fn atomic_write(path: &str, contents: &[u8]) -> std::io::Result<()> {
    let temp = format!("{path}.tmp.{}", std::process::id());
    let result = (|| {
        let mut file = std::fs::File::create(&temp)?;
        file.write_all(contents)?;
        // Fence the data before the rename publishes the name: otherwise
        // a power cut could expose a named-but-empty file.
        file.sync_data()?;
        std::fs::rename(&temp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
    }
    result
}

/// [`atomic_write`] for callers holding a `Path`.
///
/// # Errors
///
/// As [`atomic_write`]; additionally fails on non-UTF-8 paths.
pub fn atomic_write_path(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let s = path
        .to_str()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "non-UTF-8 path"))?;
    atomic_write(s, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("dmig-obs-fsio-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn writes_and_replaces() {
        let path = temp("a.json");
        std::fs::remove_file(&path).ok();
        atomic_write(&path, b"{\"v\":1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}\n");
        atomic_write(&path, b"{\"v\":2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn leaves_no_temp_behind() {
        let path = temp("b.json");
        std::fs::remove_file(&path).ok();
        atomic_write(&path, b"x").unwrap();
        let dir = std::path::Path::new(&path).parent().unwrap();
        let stem = std::path::Path::new(&path)
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&stem) && n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_keeps_the_old_file() {
        let path = temp("c-dir/impossible.json");
        // The parent directory does not exist: create fails, no panic.
        assert!(atomic_write(&path, b"x").is_err());
    }

    #[test]
    fn path_variant_round_trips() {
        let path = temp("d.json");
        std::fs::remove_file(&path).ok();
        atomic_write_path(std::path::Path::new(&path), b"ok").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "ok");
        std::fs::remove_file(&path).ok();
    }
}
