//! A minimal JSON reader, the inverse of the [`crate::json`] writers.
//!
//! The workspace has no crates.io access, so the analysis tools that read
//! telemetry back — `dmig obs diff`, `dmig obs gate`, `dmig obs
//! export-trace`, history replay — parse with this hand-rolled recursive
//! descent parser instead of `serde_json`. It accepts standard JSON (RFC
//! 8259) minus two deliberate simplifications: numbers are parsed as `f64`
//! (fine for metrics; counters stay exact up to 2^53) and `\uXXXX` escapes
//! outside the BMP surrogate-pair range are decoded individually.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as an `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the first offending byte.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// The value at a `.`-separated path of object keys (`None` when any
    /// step is missing or not an object).
    #[must_use]
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for step in path.split('.') {
            match cur {
                Value::Object(map) => cur = map.get(step)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// This value as an `f64` (`Number` only; booleans map to 0/1).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// This value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This value as an object map.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Flattens every numeric leaf into `out` under `.`-joined keys
    /// (array elements are indexed: `solve_even.0.n`). Booleans flatten
    /// to 0/1; nulls and strings are skipped — a `"speedup": null` written
    /// by a host that could not measure simply yields no metric, so gate
    /// rules conditioned on it skip cleanly.
    pub fn flatten_into(&self, prefix: &str, out: &mut BTreeMap<String, f64>) {
        match self {
            Value::Number(_) | Value::Bool(_) => {
                if let Some(n) = self.as_f64() {
                    out.insert(prefix.to_string(), n);
                }
            }
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    let key = if prefix.is_empty() {
                        i.to_string()
                    } else {
                        format!("{prefix}.{i}")
                    };
                    item.flatten_into(&key, out);
                }
            }
            Value::Object(map) => {
                for (k, v) in map {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    v.flatten_into(&key, out);
                }
            }
            Value::Null | Value::String(_) => {}
        }
    }

    /// All numeric leaves as a flat `path -> value` map.
    #[must_use]
    pub fn flatten(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        self.flatten_into("", &mut out);
        out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = text.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(
            Value::parse("\"a\\n\\u0041\"").unwrap(),
            Value::String("a\nA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, {"b": 2}], "c": null}"#).unwrap();
        assert_eq!(v.get_path("c"), Some(&Value::Null));
        let a = v.get_path("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get_path("b").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn roundtrips_own_writer_output() {
        let escaped = crate::json::string("quote \" backslash \\ tab \t");
        let v = Value::parse(&escaped).unwrap();
        assert_eq!(v.as_str(), Some("quote \" backslash \\ tab \t"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "1 2", "{\"a\" 1}", "\"\\x\""] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = Value::parse("[1, ]").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn flatten_indexes_arrays_and_skips_nulls() {
        let v = Value::parse(
            r#"{"solve_even": [{"n": 100, "speedup": 6.7}, {"n": 1000, "speedup": null}],
                "smoke": false, "name": "x"}"#,
        )
        .unwrap();
        let flat = v.flatten();
        assert_eq!(flat["solve_even.0.n"], 100.0);
        assert_eq!(flat["solve_even.0.speedup"], 6.7);
        assert_eq!(flat["smoke"], 0.0);
        assert!(!flat.contains_key("solve_even.1.speedup"), "null skipped");
        assert!(!flat.contains_key("name"), "strings skipped");
    }
}
