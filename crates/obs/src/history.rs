//! Append-only JSONL metrics history.
//!
//! Every instrumented run can append **one line** — a self-contained JSON
//! object with run metadata plus flat numeric metrics — to a history file.
//! Lines accumulate across runs and branches, giving the repo an actual
//! perf trajectory instead of a single overwritten snapshot:
//!
//! ```text
//! {"schema":"dmig-history/1","unix_ts":1754500000,"git_rev":"f04f95c","threads":4,...}
//! {"schema":"dmig-history/1","unix_ts":1754503600,"git_rev":"9a1be2d","threads":4,...}
//! ```
//!
//! `dmig obs diff` and `dmig obs gate` read entries back with
//! [`read_entries`]; corrupt lines (a crashed writer, a merge conflict) are
//! skipped rather than poisoning the whole file.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;

use crate::json;
use crate::value::Value;

/// Schema tag written into every history line.
pub const HISTORY_SCHEMA: &str = "dmig-history/1";

/// Metadata identifying one run in the history.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Git revision the run was built from (short hash, or "unknown").
    pub git_rev: String,
    /// Worker-thread budget of the run.
    pub threads: Option<u64>,
    /// `available_parallelism()` of the host.
    pub hardware_threads: Option<u64>,
    /// Stable identifier of the solved instance (e.g. an FNV hash of the
    /// instance text), so entries are comparable only when they measured
    /// the same work.
    pub instance: Option<String>,
    /// Wall-clock time of the measured phase, in milliseconds.
    pub wall_ms: Option<f64>,
    /// Free-form tag (e.g. "perf_report", "cli-solve").
    pub source: String,
}

/// Best-effort short git revision of the working directory, falling back
/// to the `DMIG_GIT_REV` environment variable and then `"unknown"`. Never
/// fails: history must be appendable from hosts without git.
#[must_use]
pub fn detect_git_rev() -> String {
    if let Ok(rev) = std::env::var("DMIG_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch (0 when the clock is before it).
#[must_use]
pub fn unix_ts() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// 64-bit FNV-1a over arbitrary text, rendered as 16 hex digits — the
/// instance fingerprint used in [`RunMeta::instance`].
#[must_use]
pub fn fingerprint(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Renders one history line (no trailing newline): metadata fields first,
/// then every metric under a `"metrics"` object, keys sorted.
#[must_use]
pub fn render_entry(meta: &RunMeta, metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"schema\":{}", json::string(HISTORY_SCHEMA));
    let _ = write!(out, ",\"unix_ts\":{}", unix_ts());
    let _ = write!(out, ",\"git_rev\":{}", json::string(&meta.git_rev));
    let _ = write!(out, ",\"source\":{}", json::string(&meta.source));
    if let Some(t) = meta.threads {
        let _ = write!(out, ",\"threads\":{t}");
    }
    if let Some(t) = meta.hardware_threads {
        let _ = write!(out, ",\"hardware_threads\":{t}");
    }
    if let Some(i) = &meta.instance {
        let _ = write!(out, ",\"instance\":{}", json::string(i));
    }
    if let Some(w) = meta.wall_ms {
        let _ = write!(out, ",\"wall_ms\":{}", json::number(w));
    }
    out.push_str(",\"metrics\":{");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json::string(k), json::number(*v));
    }
    out.push_str("}}");
    out
}

/// Appends one entry to the JSONL history at `path`, creating the file if
/// needed. Exactly one line is written per call.
///
/// # Errors
///
/// Returns the underlying I/O error message.
pub fn append(path: &str, meta: &RunMeta, metrics: &BTreeMap<String, f64>) -> Result<(), String> {
    let line = render_entry(meta, metrics);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    writeln!(f, "{line}").map_err(|e| format!("cannot append to {path}: {e}"))
}

/// Reads every well-formed entry from a JSONL history file, oldest first.
/// Malformed lines are skipped (their count is returned alongside).
///
/// # Errors
///
/// Returns an error only when the file itself cannot be read.
pub fn read_entries(path: &str) -> Result<(Vec<Value>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Value::parse(line) {
            Ok(v) if v.get_path("schema").and_then(Value::as_str) == Some(HISTORY_SCHEMA) => {
                entries.push(v);
            }
            _ => skipped += 1,
        }
    }
    Ok((entries, skipped))
}

/// Rewrites the history at `path`, keeping only the **last** `keep`
/// entries per instance fingerprint (entries without an `instance` field
/// form their own group). Malformed lines are dropped. Surviving lines
/// keep their original text and relative order; the rewrite goes through
/// a sibling temp file and an atomic rename, so a crash never truncates
/// the history.
///
/// Returns `(kept, dropped)` line counts.
///
/// # Errors
///
/// Returns the underlying I/O error message; `keep == 0` is rejected
/// (use `rm` to discard a history, not a compaction to nothing).
pub fn compact(path: &str, keep: usize) -> Result<(usize, usize), String> {
    if keep == 0 {
        return Err("--keep must be at least 1".to_string());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Pass 1: survivors per group = the last `keep` valid lines.
    let mut per_group: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut total = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        total += 1;
        if let Ok(v) = Value::parse(line) {
            if v.get_path("schema").and_then(Value::as_str) == Some(HISTORY_SCHEMA) {
                let group = v
                    .get_path("instance")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                per_group.entry(group).or_default().push(i);
            }
        }
    }
    let mut survivors: Vec<usize> = per_group
        .into_values()
        .flat_map(|idx| {
            let cut = idx.len().saturating_sub(keep);
            idx.into_iter().skip(cut)
        })
        .collect();
    survivors.sort_unstable();
    // Pass 2: rewrite in original order through an atomic rename.
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::new();
    for &i in &survivors {
        out.push_str(lines[i].trim());
        out.push('\n');
    }
    let tmp = format!("{path}.compact.tmp");
    std::fs::write(&tmp, &out).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace {path}: {e}"))?;
    Ok((survivors.len(), total - survivors.len()))
}

/// The flat metric map of one history entry (its `"metrics"` object plus
/// top-level numeric metadata like `threads`/`wall_ms`, which are useful
/// in gate conditions).
#[must_use]
pub fn entry_metrics(entry: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(m) = entry.get_path("metrics") {
        m.flatten_into("", &mut out);
    }
    for key in ["threads", "hardware_threads", "wall_ms", "unix_ts"] {
        if let Some(n) = entry.get_path(key).and_then(Value::as_f64) {
            out.insert(key.to_string(), n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("dmig-history-test-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn sample_meta() -> RunMeta {
        RunMeta {
            git_rev: "abc1234".into(),
            threads: Some(4),
            hardware_threads: Some(8),
            instance: Some(fingerprint("nodes 3\n")),
            wall_ms: Some(12.5),
            source: "test".into(),
        }
    }

    #[test]
    fn append_writes_exactly_one_line_per_call() {
        let path = tmp("one-line");
        std::fs::remove_file(&path).ok();
        let mut metrics = BTreeMap::new();
        metrics.insert("flow_solves".to_string(), 3.0);
        for expected in 1..=3 {
            append(&path, &sample_meta(), &metrics).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            assert_eq!(text.lines().count(), expected);
        }
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(skipped, 0);
        let m = entry_metrics(&entries[0]);
        assert_eq!(m["flow_solves"], 3.0);
        assert_eq!(m["threads"], 4.0);
        assert_eq!(m["wall_ms"], 12.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = tmp("corrupt");
        let mut metrics = BTreeMap::new();
        metrics.insert("x".to_string(), 1.0);
        std::fs::write(&path, "{not json}\n\n").unwrap();
        append(&path, &sample_meta(), &metrics).unwrap();
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn entry_is_valid_json_with_schema() {
        let line = render_entry(&sample_meta(), &BTreeMap::new());
        let v = Value::parse(&line).unwrap();
        assert_eq!(
            v.get_path("schema").and_then(Value::as_str),
            Some(HISTORY_SCHEMA)
        );
        assert_eq!(
            v.get_path("git_rev").and_then(Value::as_str),
            Some("abc1234")
        );
    }

    #[test]
    fn compact_keeps_last_n_per_instance() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        let mut metrics = BTreeMap::new();
        for round in 0..4 {
            for inst in ["aaa", "bbb"] {
                metrics.insert("round".to_string(), f64::from(round));
                let meta = RunMeta {
                    instance: Some(inst.to_string()),
                    ..sample_meta()
                };
                append(&path, &meta, &metrics).unwrap();
            }
        }
        // A corrupt line and an instance-less entry ride along.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{broken").unwrap();
        }
        let no_inst = RunMeta {
            instance: None,
            ..sample_meta()
        };
        append(&path, &no_inst, &metrics).unwrap();

        let (kept, dropped) = compact(&path, 2).unwrap();
        assert_eq!(kept, 5, "2 per fingerprint + 1 instance-less");
        assert_eq!(dropped, 5, "4 old entries + 1 corrupt line");
        let (entries, skipped) = read_entries(&path).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(skipped, 0, "corrupt lines are gone after compaction");
        // Survivors are the *latest* rounds, still oldest-first.
        let rounds: Vec<f64> = entries
            .iter()
            .filter(|e| e.get_path("instance").and_then(Value::as_str) == Some("aaa"))
            .map(|e| entry_metrics(e)["round"])
            .collect();
        assert_eq!(rounds, vec![2.0, 3.0]);
        // Compacting below the current size is a no-op.
        let (kept2, dropped2) = compact(&path, 10).unwrap();
        assert_eq!((kept2, dropped2), (5, 0));
        assert!(compact(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
    }

    #[test]
    fn detect_git_rev_never_fails() {
        assert!(!detect_git_rev().is_empty());
    }
}
