//! Property-based tests for the flow substrate: max-flow/min-cut duality,
//! degree-constrained extraction, and densest-subgraph exactness.

use dmig_flow::{
    exact_degree_subgraph, max_density_subgraph, push_relabel::PushRelabelNetwork, FlowNetwork,
};
use dmig_graph::{Multigraph, NodeId};
use proptest::prelude::*;

/// A random small flow network plus source/sink.
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2usize..8).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0i64..12), 0..24);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Max-flow equals the capacity of the residual-reachability cut
    /// (weak duality made exact by the algorithm).
    #[test]
    fn max_flow_min_cut_duality((n, edges) in arb_network()) {
        let mut net = FlowNetwork::new(n);
        let mut kept = Vec::new();
        for &(u, v, c) in &edges {
            if u != v {
                net.add_edge(u, v, c);
                kept.push((u, v, c));
            }
        }
        let s = 0;
        let t = n - 1;
        let value = net.max_flow(s, t);
        let side = net.min_cut_source_side(s);
        prop_assert!(side[s]);
        prop_assert!(value == 0 || !side[t]);
        let cut: i64 = kept
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(value, cut, "flow value must equal the residual cut");
    }

    /// Flow conservation and capacity constraints hold edge by edge.
    #[test]
    fn conservation_and_capacity((n, edges) in arb_network()) {
        let mut net = FlowNetwork::new(n);
        let mut handles = Vec::new();
        for &(u, v, c) in &edges {
            if u != v {
                handles.push((net.add_edge(u, v, c), u, v, c));
            }
        }
        let s = 0;
        let t = n - 1;
        let value = net.max_flow(s, t);
        let mut net_out = vec![0i64; n];
        let mut net_in = vec![0i64; n];
        for (h, u, v, c) in handles {
            let f = net.flow(h);
            prop_assert!((0..=c).contains(&f));
            net_out[u] += f;
            net_in[v] += f;
        }
        for v in 0..n {
            if v != s && v != t {
                prop_assert_eq!(net_in[v], net_out[v], "conservation at {}", v);
            }
        }
        prop_assert_eq!(net_out[s] - net_in[s], value);
    }

    /// The two independent max-flow engines agree on every network.
    #[test]
    fn dinic_and_push_relabel_agree((n, edges) in arb_network()) {
        let mut dinic = FlowNetwork::new(n);
        let mut pr = PushRelabelNetwork::new(n);
        for &(u, v, c) in &edges {
            if u != v {
                dinic.add_edge(u, v, c);
                pr.add_edge(u, v, c);
            }
        }
        prop_assert_eq!(dinic.max_flow(0, n - 1), pr.max_flow(0, n - 1));
    }

    /// A reused network — `reset()` after saturation, then `clear()` +
    /// re-add of a different topology — answers max-flow exactly like a
    /// freshly built network, cross-checked against push-relabel.
    #[test]
    fn reset_and_rebuild_match_fresh_networks(
        (n1, edges1) in arb_network(),
        (n2, edges2) in arb_network(),
    ) {
        let mut reused = FlowNetwork::new(n1);
        for &(u, v, c) in &edges1 {
            if u != v {
                reused.add_edge(u, v, c);
            }
        }
        let first = reused.max_flow(0, n1 - 1);
        // Saturated: reset must restore fresh-network behavior.
        reused.reset();
        prop_assert_eq!(reused.max_flow(0, n1 - 1), first);

        // Rebuild in place with an unrelated topology; the answer must
        // match both a fresh Dinic network and the push-relabel engine.
        reused.clear(n2);
        let mut fresh = FlowNetwork::new(n2);
        let mut pr = PushRelabelNetwork::new(n2);
        let mut handles = Vec::new();
        for &(u, v, c) in &edges2 {
            if u != v {
                handles.push((reused.add_edge(u, v, c), fresh.add_edge(u, v, c)));
                pr.add_edge(u, v, c);
            }
        }
        let reused_value = reused.max_flow(0, n2 - 1);
        prop_assert_eq!(reused_value, fresh.max_flow(0, n2 - 1));
        prop_assert_eq!(reused_value, pr.max_flow(0, n2 - 1));
        // Not just the value: identical per-edge flows (both engines are
        // deterministic and the reused CSR must not reorder arcs).
        for (hr, hf) in handles {
            prop_assert_eq!(reused.flow(hr), fresh.flow(hf));
        }
    }

    /// A union of `d` random permutations always admits an exact
    /// out/in-degree-`d/2`-subgraph after doubling (Euler-style balance).
    #[test]
    fn degree_constrained_on_doubled_permutations(
        n in 2usize..8,
        perm_seed in proptest::collection::vec(0usize..1000, 1..4),
    ) {
        // Build arcs as unions of cyclic shifts (simple balanced family).
        let mut arcs = Vec::new();
        for (k, _) in perm_seed.iter().enumerate() {
            for u in 0..n {
                arcs.push((u, (u + k + 1) % n));
            }
        }
        let d = perm_seed.len();
        let quota = vec![u32::try_from(d).unwrap(); n];
        // Each node has out-degree d and in-degree d; selecting all arcs
        // is one valid solution, so the exact extraction must succeed.
        let sel = exact_degree_subgraph(n, &arcs, &quota, &quota).expect("balanced family");
        let mut outd = vec![0u32; n];
        let mut ind = vec![0u32; n];
        for (i, &(u, v)) in arcs.iter().enumerate() {
            if sel[i] {
                outd[u] += 1;
                ind[v] += 1;
            }
        }
        prop_assert_eq!(outd, quota.clone());
        prop_assert_eq!(ind, quota);
    }

    /// The densest-subgraph result dominates the density of (a) the whole
    /// edge-bearing node set and (b) every single-edge pair.
    #[test]
    fn densest_dominates_simple_candidates(
        n in 2usize..9,
        edges in proptest::collection::vec((0usize..9, 0usize..9), 1..20),
        weights in proptest::collection::vec(1u64..5, 9),
    ) {
        let mut g = Multigraph::with_nodes(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        if g.num_edges() == 0 {
            return Ok(());
        }
        let w = &weights[..n];
        let best = max_density_subgraph(&g, w).expect("has edges");
        let best_num = best.num_edges as u128;
        let best_den = best.weight as u128;

        // Whole graph candidate.
        let total_edges = g.num_edges() as u128;
        let total_weight: u128 = g
            .nodes()
            .filter(|&v| g.degree(v) > 0)
            .map(|v| w[v.index()] as u128)
            .sum();
        prop_assert!(best_num * total_weight >= total_edges * best_den);

        // Every pair {u, v} with multiplicity m.
        for (_, ep) in g.edges() {
            let m = g.multiplicity(ep.u, ep.v) as u128;
            let pw = (w[ep.u.index()] + w[ep.v.index()]) as u128;
            prop_assert!(best_num * pw >= m * best_den);
        }
    }
}
