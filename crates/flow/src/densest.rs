//! Exact vertex-weighted maximum-density subgraph.
//!
//! The paper's second lower bound (§III, Lemma 3.1) is
//! `Γ' = max_{S ⊆ V} ⌈2|E(S)| / Σ_{v∈S} c_v⌉`. Maximizing the inner ratio
//! `|E(S)| / w(S)` (with `w_v = c_v`) is a *vertex-weighted maximum-density
//! subgraph* problem, solvable exactly in polynomial time with Goldberg's
//! min-cut construction. We drive the cut with **Dinkelbach iterations**
//! entirely in integer arithmetic: given a candidate density `p/q`, a
//! min cut of the parametric network decides whether some subset beats it
//! and, if so, produces a strictly denser subset; the sequence of densities
//! is strictly increasing over a finite set of rationals, so the loop
//! terminates at the exact optimum.
//!
//! Since `x ↦ ⌈k·x⌉` is nondecreasing, the subset maximizing the ratio also
//! maximizes the ceiled bound, so `Γ' = ⌈2·num/den⌉` of the result.

use dmig_graph::{Multigraph, NodeId};

use crate::FlowNetwork;

/// The exact maximum-density subgraph of a vertex-weighted multigraph.
///
/// Density is `|E(S)| / Σ_{v∈S} w_v` and the optimum is reported as the
/// exact rational `num_edges / weight`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DensestResult {
    /// Nodes of the optimal subset `S` (ascending).
    pub nodes: Vec<NodeId>,
    /// `|E(S)|`: edges with both endpoints in `S` (self-loops count once).
    pub num_edges: u64,
    /// `Σ_{v∈S} w_v`.
    pub weight: u64,
}

impl DensestResult {
    /// The optimal density as a float (for display; the exact value is the
    /// rational `num_edges / weight`).
    #[must_use]
    pub fn density(&self) -> f64 {
        self.num_edges as f64 / self.weight as f64
    }

    /// `⌈k · num_edges / weight⌉` computed exactly in integers — with
    /// `k = 2` and `w_v = c_v` this is the paper's `Γ'` lower bound.
    #[must_use]
    pub fn ceil_scaled(&self, k: u64) -> u64 {
        (k * self.num_edges).div_ceil(self.weight)
    }
}

/// Computes the exact maximum of `|E(S)| / Σ_{v∈S} w_v` over all non-empty
/// subsets `S` (restricted, w.l.o.g., to subsets containing at least one
/// edge), or `None` when the graph has no edges.
///
/// Weights must be strictly positive for every non-isolated node.
///
/// # Panics
///
/// Panics if `weights.len() < g.num_nodes()` or some non-isolated node has
/// weight 0.
///
/// # Example
///
/// ```
/// use dmig_graph::GraphBuilder;
/// use dmig_flow::max_density_subgraph;
///
/// // A dense triangle hanging off a long sparse path: the triangle wins.
/// let g = GraphBuilder::new()
///     .parallel_edges(0, 1, 3).parallel_edges(1, 2, 3).parallel_edges(0, 2, 3)
///     .edge(2, 3).edge(3, 4).edge(4, 5)
///     .build();
/// let best = max_density_subgraph(&g, &[1; 6]).unwrap();
/// assert_eq!(best.num_edges, 9);
/// assert_eq!(best.weight, 3);
/// ```
#[must_use]
pub fn max_density_subgraph(g: &Multigraph, weights: &[u64]) -> Option<DensestResult> {
    let n = g.num_nodes();
    assert!(weights.len() >= n, "weights shorter than node count");
    let m = g.num_edges() as u64;
    if m == 0 {
        return None;
    }
    for v in g.nodes() {
        assert!(
            g.degree(v) == 0 || weights[v.index()] > 0,
            "non-isolated node {v} must have positive weight"
        );
    }

    // Initial candidate: all non-isolated nodes.
    let mut best: Vec<bool> = (0..n).map(|i| g.degree(NodeId::new(i)) > 0).collect();
    let (mut num, mut den) = evaluate(g, weights, &best);
    debug_assert!(den > 0);

    loop {
        match improve(g, weights, num, den) {
            Some(subset) => {
                let (num2, den2) = evaluate(g, weights, &subset);
                // Strict improvement is guaranteed by the cut condition.
                debug_assert!(
                    (num2 as u128) * (den as u128) > (num as u128) * (den2 as u128),
                    "dinkelbach step must strictly improve density"
                );
                best = subset;
                num = num2;
                den = den2;
            }
            None => {
                let nodes = best
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| NodeId::new(i))
                    .collect();
                return Some(DensestResult {
                    nodes,
                    num_edges: num,
                    weight: den,
                });
            }
        }
    }
}

/// Counts `(|E(S)|, w(S))` for a subset mask.
fn evaluate(g: &Multigraph, weights: &[u64], subset: &[bool]) -> (u64, u64) {
    let mut edges = 0u64;
    for (_, ep) in g.edges() {
        if subset[ep.u.index()] && subset[ep.v.index()] {
            edges += 1;
        }
    }
    let weight = subset
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| weights[i])
        .sum();
    (edges, weight)
}

/// One Dinkelbach step: is there `S` with `|E(S)|/w(S) > p/q`, i.e. with
/// `q·|E(S)| − p·w(S) > 0`? If so return such an `S` (the min-cut source
/// side), else `None`.
fn improve(g: &Multigraph, weights: &[u64], p: u64, q: u64) -> Option<Vec<bool>> {
    let n = g.num_nodes();
    let m = g.num_edges();
    // Layout: 0 = source, 1 = sink, 2..2+m = edge nodes, 2+m.. = vertex nodes.
    let s = 0usize;
    let t = 1usize;
    let edge_base = 2usize;
    let vertex_base = 2 + m;
    let mut net = FlowNetwork::new(2 + m + n);

    let q_i = i64::try_from(q).expect("density denominator too large");
    let total_source = q_i.checked_mul(m as i64).expect("q*m overflows");
    let inf = total_source + 1;

    for (e, ep) in g.edges() {
        let en = edge_base + e.index();
        net.add_edge(s, en, q_i);
        net.add_edge(en, vertex_base + ep.u.index(), inf);
        if !ep.is_loop() {
            net.add_edge(en, vertex_base + ep.v.index(), inf);
        }
    }
    for (v, &w) in weights.iter().enumerate().take(n) {
        let cap = i64::try_from(p.checked_mul(w).expect("p*w overflows"))
            .expect("vertex capacity too large");
        net.add_edge(vertex_base + v, t, cap);
    }

    let flow = net.max_flow(s, t);
    // max_S (q·E(S) − p·w(S)) = q·m − flow; positive iff some S beats p/q.
    if flow >= total_source {
        return None;
    }
    let side = net.min_cut_source_side(s);
    let subset: Vec<bool> = (0..n).map(|v| side[vertex_base + v]).collect();
    // The subset is non-empty: flow < total_source means some s→edge arc is
    // uncut, whose endpoints are then reachable.
    debug_assert!(subset.iter().any(|&b| b));
    Some(subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_graph::builder::{
        complete_multigraph, path_multigraph, star_multigraph, GraphBuilder,
    };

    /// Brute-force reference over all subsets (n ≤ 16).
    fn brute_force(g: &Multigraph, weights: &[u64]) -> Option<(u64, u64)> {
        let n = g.num_nodes();
        assert!(n <= 16);
        let mut best: Option<(u64, u64)> = None;
        for mask in 1u32..(1 << n) {
            let subset: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let (num, den) = evaluate(g, weights, &subset);
            if den == 0 {
                continue;
            }
            match best {
                None => best = Some((num, den)),
                Some((bn, bd)) => {
                    if (num as u128) * (bd as u128) > (bn as u128) * (den as u128) {
                        best = Some((num, den));
                    }
                }
            }
        }
        best
    }

    fn assert_matches_brute(g: &Multigraph, weights: &[u64]) {
        let got = max_density_subgraph(g, weights).unwrap();
        let (bn, bd) = brute_force(g, weights).unwrap();
        assert_eq!(
            (got.num_edges as u128) * (bd as u128),
            (bn as u128) * (got.weight as u128),
            "density mismatch: got {}/{}, brute {}/{}",
            got.num_edges,
            got.weight,
            bn,
            bd
        );
        // Reported subset must actually realize the reported density.
        let mask: Vec<bool> = {
            let mut m = vec![false; g.num_nodes()];
            for v in &got.nodes {
                m[v.index()] = true;
            }
            m
        };
        assert_eq!(evaluate(g, weights, &mask), (got.num_edges, got.weight));
    }

    #[test]
    fn empty_graph_none() {
        let g = Multigraph::with_nodes(4);
        assert!(max_density_subgraph(&g, &[1; 4]).is_none());
    }

    #[test]
    fn single_edge() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let r = max_density_subgraph(&g, &[1, 1]).unwrap();
        assert_eq!((r.num_edges, r.weight), (1, 2));
        assert_eq!(r.ceil_scaled(2), 1);
    }

    #[test]
    fn triangle_unit_weights() {
        let g = complete_multigraph(3, 1);
        let r = max_density_subgraph(&g, &[1; 3]).unwrap();
        assert_eq!((r.num_edges, r.weight), (3, 3));
    }

    #[test]
    fn dense_core_beats_whole_graph() {
        let g = GraphBuilder::new()
            .parallel_edges(0, 1, 5)
            .parallel_edges(1, 2, 5)
            .parallel_edges(0, 2, 5)
            .edge(2, 3)
            .edge(3, 4)
            .build();
        let r = max_density_subgraph(&g, &[1; 5]).unwrap();
        assert_eq!((r.num_edges, r.weight), (15, 3));
        assert_eq!(
            r.nodes,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn weights_shift_the_optimum() {
        // Same graph, but the triangle's nodes are heavy: the single light
        // parallel-pair becomes denser per unit weight.
        let g = GraphBuilder::new()
            .parallel_edges(0, 1, 3)
            .parallel_edges(1, 2, 3)
            .parallel_edges(0, 2, 3)
            .parallel_edges(3, 4, 4)
            .build();
        // Triangle density 9/30; pair density 4/2.
        let r = max_density_subgraph(&g, &[10, 10, 10, 1, 1]).unwrap();
        assert_eq!((r.num_edges, r.weight), (4, 2));
    }

    #[test]
    fn matches_brute_force_on_fixtures() {
        let fixtures: Vec<(Multigraph, Vec<u64>)> = vec![
            (complete_multigraph(5, 2), vec![1; 5]),
            (complete_multigraph(4, 3), vec![2, 1, 4, 1]),
            (star_multigraph(5, 2), vec![3, 1, 1, 1, 1, 1]),
            (path_multigraph(7, 2), vec![1, 2, 1, 2, 1, 2, 1]),
            (
                GraphBuilder::new()
                    .edge(0, 1)
                    .parallel_edges(2, 3, 6)
                    .edge(1, 2)
                    .build(),
                vec![1, 1, 2, 2],
            ),
        ];
        for (g, w) in &fixtures {
            assert_matches_brute(g, w);
        }
    }

    #[test]
    fn randomized_against_brute_force() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD16E57);
        for trial in 0..30 {
            let n = rng.gen_range(2..9);
            let m = rng.gen_range(1..15);
            let mut g = Multigraph::with_nodes(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(u.into(), v.into());
                }
            }
            if g.num_edges() == 0 {
                continue;
            }
            let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..6)).collect();
            assert_matches_brute(&g, &weights);
            let _ = trial;
        }
    }

    #[test]
    fn gamma_prime_example_from_odd_capacities() {
        // K4 with c_v = 1 everywhere: Γ' = ⌈2·6/4⌉ = 3 > Δ' would be 3 too;
        // but on K3, Γ' = ⌈2·3/3⌉ = 2, matching the classic odd-cycle bound.
        let g = complete_multigraph(3, 1);
        let r = max_density_subgraph(&g, &[1; 3]).unwrap();
        assert_eq!(r.ceil_scaled(2), 2);
    }

    #[test]
    fn self_loop_counts_once() {
        let mut g = Multigraph::with_nodes(2);
        g.add_edge(0.into(), 0.into());
        g.add_edge(0.into(), 1.into());
        let r = max_density_subgraph(&g, &[1, 1]).unwrap();
        // {0} alone has density 1/1 (the loop counts once); {0,1} ties at
        // 2/2. Either optimum is acceptable — the density must be exactly 1.
        assert_eq!(r.num_edges, r.weight);
        assert!(r.nodes.contains(&NodeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_on_used_node_panics() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let _ = max_density_subgraph(&g, &[0, 1]);
    }
}
