//! Max-flow substrate for heterogeneous data-migration scheduling.
//!
//! Three pieces, each motivated by a specific step of the ICDCS 2011 paper:
//!
//! * [`network::FlowNetwork`] — Dinic's max-flow algorithm with residual-
//!   graph min-cut extraction; the workhorse under everything else.
//! * [`degree_constrained`] — the flow network of the paper's **Fig. 3**:
//!   extracting a subgraph of the oriented bipartite graph `H` in which
//!   every `v_out` has exactly `c_v/2` outgoing and every `v_in` exactly
//!   `c_v/2` incoming edges (§IV step 4, Lemma 4.1/4.2).
//! * [`push_relabel`] — an independent Goldberg–Tarjan engine used to
//!   cross-validate every flow value and as a benchmark alternative.
//! * [`densest`] — exact vertex-weighted maximum-density subgraph via
//!   Dinkelbach iterations over min cuts, which computes the paper's second
//!   lower bound `Γ' = max_S ⌈2|E(S)| / Σ_{v∈S} c_v⌉` (§III) in polynomial
//!   time — no heuristic search over subsets is needed.
//! * [`pool`] — the process-wide worker-thread budget shared between
//!   component-level (`dmig-core::parallel`) and recursion-level
//!   ([`quota_round_partition`]) parallelism, plus scratch-arena pooling
//!   for the zero-allocation solver hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree_constrained;
pub mod densest;
pub mod network;
pub mod pool;
pub mod push_relabel;

pub use degree_constrained::{
    exact_degree_subgraph, quota_euler_splits, quota_flow_solves, quota_round_partition,
    DegreeConstraintError, DegreePeeler, DegreeSubgraphExtractor, SolveScratch,
};
pub use densest::{max_density_subgraph, DensestResult};
pub use network::{EdgeHandle, FlowNetwork};
pub use push_relabel::{PrEdgeHandle, PushRelabelNetwork};
