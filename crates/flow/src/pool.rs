//! Process-wide worker budget and scratch pooling for parallel solving.
//!
//! Four layers of parallelism want threads at once: the sharded solve
//! driver in `dmig-core::shard` (one worker per cell shard), the
//! component-parallel driver in `dmig-core::parallel` (one worker per
//! connected component), the intra-component quota recursion in
//! [`crate::quota_round_partition`] (one worker per Euler-split subtree),
//! and the chunked Euler orientation in `dmig-graph::euler` (one worker
//! per cycle-chunk claimer). If each
//! spawned `--threads` workers independently the process could run
//! `threads²` threads. Instead all layers draw [`WorkerPermit`]s from one
//! global [`ThreadBudget`]: the calling thread always works for free, and
//! a layer may only spawn an *extra* worker while it holds a permit.
//! Whoever asks first — shards, outer components, inner subtrees, or the
//! orientation pass — wins the spare threads; a multi-component instance
//! spends them on components, a single giant component hands them to the
//! orientation and then the recursion as each phase runs, and a sharded
//! solve claims them for its cell shards before the per-cell machinery
//! sees any.
//!
//! The budget is a soft cap enforced at acquisition time. Races between
//! concurrent acquirers can only affect *how fast* a solve runs, never its
//! result: every parallel consumer writes into position-indexed slots, so
//! schedules are byte-identical for any permit outcome (see the
//! determinism notes on [`crate::quota_round_partition`] and
//! `DESIGN.md`).
//!
//! [`ObjectPool`] is the companion allocation amortizer: solver scratch
//! arenas (`SolveScratch`) are parked here between solves so steady-state
//! recursion levels perform no heap allocation at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// A counting semaphore of *extra* worker threads the process may run.
///
/// Permits are handed out by [`ThreadBudget::try_acquire`] and returned
/// when the [`WorkerPermit`] drops. `set_parallelism(t)` resets the pool
/// to `t - 1` permits (the calling thread is the implicit `t`-th worker).
#[derive(Debug)]
pub struct ThreadBudget {
    permits: AtomicUsize,
}

impl ThreadBudget {
    /// Creates a budget with `permits` extra-worker permits.
    #[must_use]
    pub const fn new(permits: usize) -> Self {
        ThreadBudget {
            permits: AtomicUsize::new(permits),
        }
    }

    /// Resets the budget for a `threads`-thread run: `threads - 1` extra
    /// workers beyond the calling thread.
    ///
    /// Called by `dmig-core`'s `solve_split` (and thus the CLI `--threads`
    /// flag) at the top of every solve. Outstanding permits are not
    /// revoked; the new value takes effect for subsequent acquisitions.
    pub fn set_parallelism(&self, threads: usize) {
        let extras = threads.saturating_sub(1);
        self.permits.store(extras, Ordering::Relaxed);
        dmig_obs::gauge_set(dmig_obs::keys::POOL_PERMITS_CAPACITY, extras as u64);
        dmig_obs::gauge_set(dmig_obs::keys::POOL_PERMITS_AVAILABLE, extras as u64);
    }

    /// Permits currently available (racy; informational only).
    #[must_use]
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }

    /// Takes one permit, or returns `None` when the budget is spent.
    ///
    /// Never blocks: a denied acquirer simply does the work on its own
    /// thread. Counted under [`dmig_obs::keys::POOL_ACQUIRES`] /
    /// [`dmig_obs::keys::POOL_ACQUIRE_DENIED`].
    #[must_use]
    pub fn try_acquire(&self) -> Option<WorkerPermit<'_>> {
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                dmig_obs::counter_add(dmig_obs::keys::POOL_ACQUIRE_DENIED, 1);
                return None;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    dmig_obs::counter_add(dmig_obs::keys::POOL_ACQUIRES, 1);
                    // Occupancy gauge is racy-but-close, like available().
                    dmig_obs::gauge_set(dmig_obs::keys::POOL_PERMITS_AVAILABLE, (cur - 1) as u64);
                    return Some(WorkerPermit { budget: self });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes up to `max` permits in one call, returning however many were
    /// available (possibly none). Never blocks.
    ///
    /// This is the idiom every parallel stage uses — "recruit as many extra
    /// workers as the budget allows, up to what the problem can feed" —
    /// shared by the component driver, the quota recursion, and the chunked
    /// Euler orientation. Dropping the returned vector releases all permits.
    #[must_use]
    pub fn try_acquire_many(&self, max: usize) -> Vec<WorkerPermit<'_>> {
        (0..max).map_while(|_| self.try_acquire()).collect()
    }
}

/// RAII permit for one extra worker thread; returns to the budget on drop.
#[derive(Debug)]
pub struct WorkerPermit<'a> {
    budget: &'a ThreadBudget,
}

impl Drop for WorkerPermit<'_> {
    fn drop(&mut self) {
        let before = self.budget.permits.fetch_add(1, Ordering::Relaxed);
        dmig_obs::gauge_set(dmig_obs::keys::POOL_PERMITS_AVAILABLE, (before + 1) as u64);
    }
}

/// The process-wide budget shared by component- and recursion-level
/// parallelism. Defaults to `available_parallelism() - 1` extra workers
/// until a solve entry point calls
/// [`set_parallelism`](ThreadBudget::set_parallelism).
#[must_use]
pub fn budget() -> &'static ThreadBudget {
    static GLOBAL: OnceLock<ThreadBudget> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ThreadBudget::new(threads.saturating_sub(1))
    })
}

/// Minimum work units (arcs, for the quota recursion) below which a solve
/// must not recruit extra workers, even when permits are free.
///
/// Spawning a thread costs tens of microseconds; tiny subproblems finish
/// faster than that. Tests that want to force the parallel path on small
/// instances may lower this with [`set_spawn_min_work`].
#[must_use]
pub fn spawn_min_work() -> usize {
    SPAWN_MIN_WORK.load(Ordering::Relaxed)
}

/// Overrides the [`spawn_min_work`] threshold (testing hook; results are
/// identical either way, only thread recruitment changes).
pub fn set_spawn_min_work(units: usize) {
    SPAWN_MIN_WORK.store(units, Ordering::Relaxed);
}

/// Default [`spawn_min_work`] threshold.
pub const DEFAULT_SPAWN_MIN_WORK: usize = 512;

static SPAWN_MIN_WORK: AtomicUsize = AtomicUsize::new(DEFAULT_SPAWN_MIN_WORK);

/// A bounded free-list of reusable scratch objects.
///
/// `acquire` pops a parked object (counted as a
/// [`scratch reuse`](dmig_obs::keys::SCRATCH_REUSES)) or default-constructs
/// a fresh one ([`scratch alloc`](dmig_obs::keys::SCRATCH_ALLOCS));
/// `release` parks it again, dropping the object instead when the pool
/// already holds [`ObjectPool::MAX_PARKED`] entries so a burst of workers
/// cannot pin memory forever.
#[derive(Debug)]
pub struct ObjectPool<T> {
    parked: Mutex<Vec<T>>,
}

impl<T: Default> ObjectPool<T> {
    /// Most objects kept alive between solves.
    pub const MAX_PARKED: usize = 32;

    /// Creates an empty pool (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        ObjectPool {
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Pops a parked object or default-constructs one.
    #[must_use]
    pub fn acquire(&self) -> T {
        let (reused, parked_now) = {
            let mut parked = self.parked.lock().expect("scratch pool poisoned");
            let obj = parked.pop();
            (obj, parked.len())
        };
        dmig_obs::gauge_set(dmig_obs::keys::POOL_PARKED, parked_now as u64);
        match reused {
            Some(obj) => {
                dmig_obs::counter_add(dmig_obs::keys::SCRATCH_REUSES, 1);
                obj
            }
            None => {
                dmig_obs::counter_add(dmig_obs::keys::SCRATCH_ALLOCS, 1);
                T::default()
            }
        }
    }

    /// Parks an object for the next acquirer (dropped if the pool is full).
    pub fn release(&self, obj: T) {
        let parked_now = {
            let mut parked = self.parked.lock().expect("scratch pool poisoned");
            if parked.len() < Self::MAX_PARKED {
                parked.push(obj);
            }
            parked.len()
        };
        dmig_obs::gauge_set(dmig_obs::keys::POOL_PARKED, parked_now as u64);
        dmig_obs::gauge_max(dmig_obs::keys::POOL_PARKED_HIGH_WATER, parked_now as u64);
    }

    /// Number of parked objects (racy; informational only).
    #[must_use]
    pub fn parked(&self) -> usize {
        self.parked.lock().expect("scratch pool poisoned").len()
    }
}

impl<T: Default> Default for ObjectPool<T> {
    fn default() -> Self {
        ObjectPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_are_returned_on_drop() {
        let budget = ThreadBudget::new(2);
        let a = budget.try_acquire().expect("2 permits available");
        let b = budget.try_acquire().expect("1 permit available");
        assert!(budget.try_acquire().is_none(), "budget spent");
        drop(a);
        assert_eq!(budget.available(), 1);
        let c = budget.try_acquire().expect("permit came back");
        drop(b);
        drop(c);
        assert_eq!(budget.available(), 2);
    }

    #[test]
    fn set_parallelism_counts_the_caller() {
        let budget = ThreadBudget::new(0);
        budget.set_parallelism(4);
        assert_eq!(budget.available(), 3, "the caller is the 4th worker");
        budget.set_parallelism(1);
        assert!(budget.try_acquire().is_none(), "1 thread = no extras");
        budget.set_parallelism(0);
        assert!(budget.try_acquire().is_none());
    }

    #[test]
    fn try_acquire_many_takes_at_most_whats_there() {
        let budget = ThreadBudget::new(3);
        let batch = budget.try_acquire_many(8);
        assert_eq!(batch.len(), 3, "capped by the budget");
        assert!(budget.try_acquire().is_none());
        drop(batch);
        assert_eq!(budget.available(), 3);
        assert_eq!(budget.try_acquire_many(2).len(), 2, "capped by the ask");
        assert_eq!(budget.available(), 3, "batch released on drop");
        assert!(budget.try_acquire_many(0).is_empty());
    }

    #[test]
    fn global_budget_is_initialized() {
        // Other tests mutate the global budget concurrently; only check
        // that it exists and hands back what it hands out.
        let b = budget();
        if let Some(p) = b.try_acquire() {
            drop(p);
        }
    }

    #[test]
    fn object_pool_reuses_released_objects() {
        let pool: ObjectPool<Vec<usize>> = ObjectPool::new();
        let mut v = pool.acquire();
        assert!(v.is_empty());
        v.reserve(100);
        let cap = v.capacity();
        pool.release(v);
        assert_eq!(pool.parked(), 1);
        let v = pool.acquire();
        assert!(v.capacity() >= cap, "reused object keeps its capacity");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn object_pool_is_bounded() {
        let pool: ObjectPool<Vec<usize>> = ObjectPool::new();
        for _ in 0..2 * ObjectPool::<Vec<usize>>::MAX_PARKED {
            pool.release(Vec::new());
        }
        assert_eq!(pool.parked(), ObjectPool::<Vec<usize>>::MAX_PARKED);
    }

    #[test]
    fn spawn_min_work_round_trips() {
        let old = spawn_min_work();
        set_spawn_min_work(7);
        assert_eq!(spawn_min_work(), 7);
        set_spawn_min_work(old);
    }
}
