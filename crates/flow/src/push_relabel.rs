//! Push–relabel max-flow (Goldberg–Tarjan) with FIFO selection.
//!
//! A second, independently-implemented max-flow engine. Dinic's algorithm
//! ([`crate::FlowNetwork`]) is the workhorse of the scheduling pipeline;
//! this implementation exists to (a) cross-validate every flow value the
//! pipeline relies on — the property tests drive both engines over the
//! same random networks and require identical values — and (b) provide the
//! `O(V²√E)`-ish alternative for dense parametric networks (the `Γ'`
//! computation), benchmarked in `flow.rs`.
//!
//! Like [`crate::FlowNetwork`], the adjacency is a flat CSR index built
//! lazily by one counting sort, and the labeling scratch (heights, excess,
//! cursors, FIFO queue) is retained across [`PushRelabelNetwork::max_flow`]
//! calls.

/// A directed flow network solved by FIFO push–relabel.
///
/// The API mirrors [`crate::FlowNetwork`] deliberately so callers (and
/// tests) can swap engines.
///
/// # Example
///
/// ```
/// use dmig_flow::push_relabel::PushRelabelNetwork;
///
/// let mut net = PushRelabelNetwork::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// net.add_edge(1, 2, 5);
/// assert_eq!(net.max_flow(0, 3), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PushRelabelNetwork {
    num_vertices: usize,
    to: Vec<usize>,
    cap: Vec<i64>,
    tail: Vec<usize>,
    original_cap: Vec<i64>,
    /// CSR index: arc ids grouped by tail, insertion order preserved.
    csr_offsets: Vec<usize>,
    csr_arcs: Vec<usize>,
    csr_valid: bool,
    // Labeling scratch, reused across max_flow calls.
    height: Vec<usize>,
    excess: Vec<i64>,
    cursor: Vec<usize>,
    queue: std::collections::VecDeque<usize>,
}

/// Handle to an added edge, for flow read-back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrEdgeHandle(usize);

impl PushRelabelNetwork {
    /// Creates a network with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PushRelabelNetwork {
            num_vertices: n,
            ..PushRelabelNetwork::default()
        }
    }

    /// Creates a network with `n` vertices and room for `edges` edges.
    #[must_use]
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        PushRelabelNetwork {
            num_vertices: n,
            to: Vec::with_capacity(2 * edges),
            cap: Vec::with_capacity(2 * edges),
            tail: Vec::with_capacity(2 * edges),
            original_cap: Vec::with_capacity(edges),
            csr_offsets: Vec::with_capacity(n + 1),
            csr_arcs: Vec::with_capacity(2 * edges),
            ..PushRelabelNetwork::default()
        }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Empties the network down to `n` isolated vertices, retaining every
    /// internal allocation.
    pub fn clear(&mut self, n: usize) {
        self.num_vertices = n;
        self.to.clear();
        self.cap.clear();
        self.tail.clear();
        self.original_cap.clear();
        self.csr_valid = false;
    }

    /// Restores every edge to its original capacity (zero flow), keeping
    /// the topology and the CSR index intact.
    pub fn reset(&mut self) {
        for (k, &cap) in self.original_cap.iter().enumerate() {
            self.cap[2 * k] = cap;
            self.cap[2 * k + 1] = 0;
        }
    }

    /// Adds a directed edge with capacity `cap ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> PrEdgeHandle {
        let n = self.num_vertices;
        assert!(from < n && to < n, "flow edge endpoint out of range");
        assert!(cap >= 0, "flow capacity must be non-negative");
        self.csr_valid = false;
        self.to.push(to);
        self.cap.push(cap);
        self.tail.push(from);
        self.to.push(from);
        self.cap.push(0);
        self.tail.push(to);
        self.original_cap.push(cap);
        PrEdgeHandle(self.original_cap.len() - 1)
    }

    /// Flow carried by the edge after [`PushRelabelNetwork::max_flow`].
    #[must_use]
    pub fn flow(&self, handle: PrEdgeHandle) -> i64 {
        self.original_cap[handle.0] - self.cap[handle.0 * 2]
    }

    fn ensure_csr(&mut self) {
        if !self.csr_valid {
            self.csr_offsets.clear();
            self.csr_offsets.resize(self.num_vertices + 1, 0);
            for &tail in &self.tail {
                self.csr_offsets[tail + 1] += 1;
            }
            for v in 0..self.num_vertices {
                self.csr_offsets[v + 1] += self.csr_offsets[v];
            }
            self.csr_arcs.clear();
            self.csr_arcs.resize(self.tail.len(), 0);
            let mut fill = self.csr_offsets.clone();
            for (a, &tail) in self.tail.iter().enumerate() {
                self.csr_arcs[fill[tail]] = a;
                fill[tail] += 1;
            }
            self.csr_valid = true;
        }
    }

    /// Computes the maximum `s → t` flow (FIFO push–relabel with the
    /// global-relabel-free textbook variant; heights capped at `2V`).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.num_vertices;
        assert!(s < n && t < n, "source/sink out of range");
        if s == t {
            return 0;
        }
        self.ensure_csr();
        let PushRelabelNetwork {
            to,
            cap,
            csr_offsets,
            csr_arcs,
            height,
            excess,
            cursor,
            queue,
            ..
        } = self;
        height.clear();
        height.resize(n, 0);
        excess.clear();
        excess.resize(n, 0);
        cursor.clear();
        cursor.extend_from_slice(&csr_offsets[..n]);
        queue.clear();
        height[s] = n;
        let mut pushes = 0u64;
        let mut relabels = 0u64;

        // Saturate all source arcs.
        for &a in &csr_arcs[csr_offsets[s]..csr_offsets[s + 1]] {
            let c = cap[a];
            if c > 0 {
                let v = to[a];
                cap[a] = 0;
                cap[a ^ 1] += c;
                excess[v] += c;
                excess[s] -= c;
                if v != t && v != s && excess[v] == c {
                    queue.push_back(v);
                }
            }
        }

        while let Some(v) = queue.pop_front() {
            // Discharge v.
            while excess[v] > 0 {
                if cursor[v] == csr_offsets[v + 1] {
                    // Relabel: minimal neighbor height + 1.
                    let mut min_h = usize::MAX;
                    for &a in &csr_arcs[csr_offsets[v]..csr_offsets[v + 1]] {
                        if cap[a] > 0 {
                            min_h = min_h.min(height[to[a]]);
                        }
                    }
                    if min_h == usize::MAX || min_h + 1 > 2 * n {
                        // No admissible arcs can ever appear: excess is
                        // trapped (flows back via other relabels).
                        break;
                    }
                    height[v] = min_h + 1;
                    relabels += 1;
                    cursor[v] = csr_offsets[v];
                    continue;
                }
                let a = csr_arcs[cursor[v]];
                let w = to[a];
                if cap[a] > 0 && height[v] == height[w] + 1 {
                    let delta = excess[v].min(cap[a]);
                    pushes += 1;
                    cap[a] -= delta;
                    cap[a ^ 1] += delta;
                    excess[v] -= delta;
                    let had_excess = excess[w] > 0;
                    excess[w] += delta;
                    if w != s && w != t && !had_excess {
                        queue.push_back(w);
                    }
                } else {
                    cursor[v] += 1;
                }
            }
        }
        dmig_obs::counter_add(dmig_obs::keys::PUSH_RELABEL_CALLS, 1);
        dmig_obs::counter_add(dmig_obs::keys::PUSH_RELABEL_PUSHES, pushes);
        dmig_obs::counter_add(dmig_obs::keys::PUSH_RELABEL_RELABELS, relabels);
        excess[t]
    }

    /// Source side of a minimum cut: vertices reachable from `s` in the
    /// residual graph (call after [`PushRelabelNetwork::max_flow`]).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_vertices;
        assert!(s < n, "source out of range");
        let mut reach = vec![false; n];
        reach[s] = true;
        let mut stack = vec![s];
        if self.csr_valid {
            while let Some(v) = stack.pop() {
                for &a in &self.csr_arcs[self.csr_offsets[v]..self.csr_offsets[v + 1]] {
                    if self.cap[a] > 0 && !reach[self.to[a]] {
                        reach[self.to[a]] = true;
                        stack.push(self.to[a]);
                    }
                }
            }
        } else {
            // Not solved yet: scan the flat arc list per fixpoint round
            // (only reachable without a prior max_flow call).
            let mut changed = true;
            while changed {
                changed = false;
                for a in 0..self.tail.len() {
                    if self.cap[a] > 0 && reach[self.tail[a]] && !reach[self.to[a]] {
                        reach[self.to[a]] = true;
                        changed = true;
                    }
                }
            }
        }
        reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn single_edge() {
        let mut net = PushRelabelNetwork::new(2);
        let h = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(h), 7);
    }

    #[test]
    fn no_path() {
        let mut net = PushRelabelNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn classic_diamond() {
        let mut net = PushRelabelNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = PushRelabelNetwork::new(1);
        assert_eq!(net.max_flow(0, 0), 0);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(0x9812);
        for _ in 0..60 {
            let n = rng.gen_range(2..12);
            let m = rng.gen_range(0..40);
            let mut dinic = FlowNetwork::new(n);
            let mut pr = PushRelabelNetwork::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                let c = rng.gen_range(0..15);
                dinic.add_edge(u, v, c);
                pr.add_edge(u, v, c);
            }
            let s = 0;
            let t = n - 1;
            assert_eq!(dinic.max_flow(s, t), pr.max_flow(s, t), "engines disagree");
        }
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut net = PushRelabelNetwork::new(5);
        let edges = [
            (0usize, 1usize, 4i64),
            (0, 2, 3),
            (1, 3, 2),
            (2, 3, 5),
            (3, 4, 6),
            (1, 4, 1),
        ];
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let value = net.max_flow(0, 4);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[4]);
        let cut: i64 = edges
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut, value);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = PushRelabelNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn reset_and_clear_reuse_the_network() {
        let mut net = PushRelabelNetwork::with_capacity(4, 5);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 2);
        net.add_edge(2, 3, 3);
        let first = net.max_flow(0, 3);
        net.reset();
        assert_eq!(net.max_flow(0, 3), first);
        net.clear(2);
        let h = net.add_edge(0, 1, 9);
        assert_eq!(net.max_flow(0, 1), 9);
        assert_eq!(net.flow(h), 9);
    }
}
