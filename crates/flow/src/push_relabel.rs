//! Push–relabel max-flow (Goldberg–Tarjan) with FIFO selection.
//!
//! A second, independently-implemented max-flow engine. Dinic's algorithm
//! ([`crate::FlowNetwork`]) is the workhorse of the scheduling pipeline;
//! this implementation exists to (a) cross-validate every flow value the
//! pipeline relies on — the property tests drive both engines over the
//! same random networks and require identical values — and (b) provide the
//! `O(V²√E)`-ish alternative for dense parametric networks (the `Γ'`
//! computation), benchmarked in `flow.rs`.

/// A directed flow network solved by FIFO push–relabel.
///
/// The API mirrors [`crate::FlowNetwork`] deliberately so callers (and
/// tests) can swap engines.
///
/// # Example
///
/// ```
/// use dmig_flow::push_relabel::PushRelabelNetwork;
///
/// let mut net = PushRelabelNetwork::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// net.add_edge(1, 2, 5);
/// assert_eq!(net.max_flow(0, 3), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PushRelabelNetwork {
    to: Vec<usize>,
    cap: Vec<i64>,
    original_cap: Vec<i64>,
    adjacency: Vec<Vec<usize>>,
}

/// Handle to an added edge, for flow read-back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrEdgeHandle(usize);

impl PushRelabelNetwork {
    /// Creates a network with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PushRelabelNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            original_cap: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds a directed edge with capacity `cap ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> PrEdgeHandle {
        let n = self.num_vertices();
        assert!(from < n && to < n, "flow edge endpoint out of range");
        assert!(cap >= 0, "flow capacity must be non-negative");
        let id = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.to.push(from);
        self.cap.push(0);
        self.adjacency[from].push(id);
        self.adjacency[to].push(id + 1);
        self.original_cap.push(cap);
        PrEdgeHandle(id / 2)
    }

    /// Flow carried by the edge after [`PushRelabelNetwork::max_flow`].
    #[must_use]
    pub fn flow(&self, handle: PrEdgeHandle) -> i64 {
        self.original_cap[handle.0] - self.cap[handle.0 * 2]
    }

    /// Computes the maximum `s → t` flow (FIFO push–relabel with the
    /// global-relabel-free textbook variant; heights capped at `2V`).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.num_vertices();
        assert!(s < n && t < n, "source/sink out of range");
        if s == t {
            return 0;
        }
        let mut height = vec![0usize; n];
        let mut excess = vec![0i64; n];
        let mut cursor = vec![0usize; n];
        height[s] = n;

        let mut queue = std::collections::VecDeque::new();
        // Saturate all source arcs.
        for i in 0..self.adjacency[s].len() {
            let a = self.adjacency[s][i];
            let c = self.cap[a];
            if c > 0 {
                let v = self.to[a];
                self.cap[a] = 0;
                self.cap[a ^ 1] += c;
                excess[v] += c;
                excess[s] -= c;
                if v != t && v != s && excess[v] == c {
                    queue.push_back(v);
                }
            }
        }

        while let Some(v) = queue.pop_front() {
            // Discharge v.
            while excess[v] > 0 {
                if cursor[v] == self.adjacency[v].len() {
                    // Relabel: minimal neighbor height + 1.
                    let mut min_h = usize::MAX;
                    for &a in &self.adjacency[v] {
                        if self.cap[a] > 0 {
                            min_h = min_h.min(height[self.to[a]]);
                        }
                    }
                    if min_h == usize::MAX || min_h + 1 > 2 * n {
                        // No admissible arcs can ever appear: excess is
                        // trapped (flows back via other relabels).
                        break;
                    }
                    height[v] = min_h + 1;
                    cursor[v] = 0;
                    continue;
                }
                let a = self.adjacency[v][cursor[v]];
                let w = self.to[a];
                if self.cap[a] > 0 && height[v] == height[w] + 1 {
                    let delta = excess[v].min(self.cap[a]);
                    self.cap[a] -= delta;
                    self.cap[a ^ 1] += delta;
                    excess[v] -= delta;
                    let had_excess = excess[w] > 0;
                    excess[w] += delta;
                    if w != s && w != t && !had_excess {
                        queue.push_back(w);
                    }
                } else {
                    cursor[v] += 1;
                }
            }
        }
        excess[t]
    }

    /// Source side of a minimum cut: vertices reachable from `s` in the
    /// residual graph (call after [`PushRelabelNetwork::max_flow`]).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_vertices();
        assert!(s < n, "source out of range");
        let mut reach = vec![false; n];
        reach[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &a in &self.adjacency[v] {
                if self.cap[a] > 0 && !reach[self.to[a]] {
                    reach[self.to[a]] = true;
                    stack.push(self.to[a]);
                }
            }
        }
        reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowNetwork;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn single_edge() {
        let mut net = PushRelabelNetwork::new(2);
        let h = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(h), 7);
    }

    #[test]
    fn no_path() {
        let mut net = PushRelabelNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn classic_diamond() {
        let mut net = PushRelabelNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = PushRelabelNetwork::new(1);
        assert_eq!(net.max_flow(0, 0), 0);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        let mut rng = StdRng::seed_from_u64(0x9812);
        for _ in 0..60 {
            let n = rng.gen_range(2..12);
            let m = rng.gen_range(0..40);
            let mut dinic = FlowNetwork::new(n);
            let mut pr = PushRelabelNetwork::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                let c = rng.gen_range(0..15);
                dinic.add_edge(u, v, c);
                pr.add_edge(u, v, c);
            }
            let s = 0;
            let t = n - 1;
            assert_eq!(dinic.max_flow(s, t), pr.max_flow(s, t), "engines disagree");
        }
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut net = PushRelabelNetwork::new(5);
        let edges = [(0usize, 1usize, 4i64), (0, 2, 3), (1, 3, 2), (2, 3, 5), (3, 4, 6), (1, 4, 1)];
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let value = net.max_flow(0, 4);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[4]);
        let cut: i64 = edges
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(cut, value);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = PushRelabelNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }
}
