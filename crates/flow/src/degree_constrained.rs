//! Exact degree-constrained subgraph extraction — the paper's Fig. 3.
//!
//! Step (4) of the even-capacity algorithm (§IV) repeatedly extracts from
//! the oriented bipartite graph `H` a subgraph in which each node `v_out`
//! has exactly `c_v/2` selected outgoing arcs and each `v_in` exactly
//! `c_v/2` selected incoming arcs. The paper realizes this as a flow
//! network (Fig. 3): a source feeding every `v_out` with capacity `c_v/2`,
//! unit-capacity arcs for the oriented edges, and every `v_in` draining
//! into the sink with capacity `c_v/2`. Integrality of max flow turns the
//! fractional existence argument of Lemma 4.1 into an integral selection.

use core::fmt;

use crate::FlowNetwork;

/// Error returned when no subgraph meets the exact quotas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeConstraintError {
    /// The flow value actually achieved.
    pub achieved: i64,
    /// The flow value required (`Σ out_quota = Σ in_quota`).
    pub required: i64,
}

impl fmt::Display for DegreeConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no degree-exact subgraph: max flow {} of required {}",
            self.achieved, self.required
        )
    }
}

impl std::error::Error for DegreeConstraintError {}

/// Selects a subset of the oriented arcs such that node `v` is the tail of
/// exactly `out_quota[v]` selected arcs and the head of exactly
/// `in_quota[v]` selected arcs.
///
/// Returns a selection mask aligned with `arcs`.
///
/// The quotas must be balanced (`Σ out_quota == Σ in_quota`); when the
/// input comes from an Euler orientation with quotas `c_v/2` this holds by
/// construction and a solution exists by the paper's Lemma 4.1.
///
/// # Errors
///
/// Returns [`DegreeConstraintError`] when the max flow falls short of the
/// quota sum, i.e. no exact selection exists.
///
/// # Panics
///
/// Panics if quota slices are shorter than `num_nodes` or an arc endpoint
/// is out of range.
///
/// # Example
///
/// ```
/// use dmig_flow::exact_degree_subgraph;
///
/// // Oriented 4-cycle: select exactly one outgoing and one incoming arc
/// // per node — must take all four arcs.
/// let arcs = [(0, 1), (1, 2), (2, 3), (3, 0)];
/// let sel = exact_degree_subgraph(4, &arcs, &[1, 1, 1, 1], &[1, 1, 1, 1])?;
/// assert_eq!(sel, vec![true; 4]);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
pub fn exact_degree_subgraph(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
) -> Result<Vec<bool>, DegreeConstraintError> {
    assert!(out_quota.len() >= num_nodes, "out_quota shorter than node count");
    assert!(in_quota.len() >= num_nodes, "in_quota shorter than node count");

    // Vertex layout: 0 = source, 1 = sink, 2..2+n = out copies,
    // 2+n..2+2n = in copies.
    let s = 0usize;
    let t = 1usize;
    let out_base = 2usize;
    let in_base = 2 + num_nodes;
    let mut net = FlowNetwork::new(2 + 2 * num_nodes);

    let mut required = 0i64;
    for v in 0..num_nodes {
        net.add_edge(s, out_base + v, i64::from(out_quota[v]));
        net.add_edge(in_base + v, t, i64::from(in_quota[v]));
        required += i64::from(out_quota[v]);
    }
    let handles: Vec<_> = arcs
        .iter()
        .map(|&(u, v)| {
            assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
            net.add_edge(out_base + u, in_base + v, 1)
        })
        .collect();

    let achieved = net.max_flow(s, t);
    if achieved != required {
        return Err(DegreeConstraintError { achieved, required });
    }
    Ok(handles.into_iter().map(|h| net.flow(h) == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_quotas(
        num_nodes: usize,
        arcs: &[(usize, usize)],
        sel: &[bool],
        out_quota: &[u32],
        in_quota: &[u32],
    ) {
        let mut out = vec![0u32; num_nodes];
        let mut inn = vec![0u32; num_nodes];
        for (i, &(u, v)) in arcs.iter().enumerate() {
            if sel[i] {
                out[u] += 1;
                inn[v] += 1;
            }
        }
        assert_eq!(out, out_quota[..num_nodes]);
        assert_eq!(inn, in_quota[..num_nodes]);
    }

    #[test]
    fn cycle_forced_selection() {
        let arcs = [(0, 1), (1, 2), (2, 0)];
        let sel = exact_degree_subgraph(3, &arcs, &[1; 3], &[1; 3]).unwrap();
        assert_eq!(sel, vec![true; 3]);
    }

    #[test]
    fn zero_quotas_select_nothing() {
        let arcs = [(0, 1), (1, 0)];
        let sel = exact_degree_subgraph(2, &arcs, &[0, 0], &[0, 0]).unwrap();
        assert_eq!(sel, vec![false, false]);
    }

    #[test]
    fn parallel_arcs_pick_exact_count() {
        let arcs = [(0, 1), (0, 1), (0, 1), (0, 1)];
        let sel = exact_degree_subgraph(2, &arcs, &[2, 0], &[0, 2]).unwrap();
        assert_eq!(sel.iter().filter(|&&b| b).count(), 2);
        check_quotas(2, &arcs, &sel, &[2, 0], &[0, 2]);
    }

    #[test]
    fn infeasible_reports_shortfall() {
        // Node 1 must emit 1 arc but has none.
        let arcs = [(0, 1)];
        let err = exact_degree_subgraph(2, &arcs, &[0, 1], &[1, 0]).unwrap_err();
        assert_eq!(err.achieved, 0);
        assert_eq!(err.required, 1);
        assert!(err.to_string().contains("max flow 0"));
    }

    #[test]
    fn doubled_euler_style_instance() {
        // Every node out-quota 1 / in-quota 1, arcs forming two disjoint
        // 2-cycles plus chords; a valid selection exists.
        let arcs = [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0)];
        let sel = exact_degree_subgraph(4, &arcs, &[1; 4], &[1; 4]).unwrap();
        check_quotas(4, &arcs, &sel, &[1; 4], &[1; 4]);
    }

    #[test]
    fn heterogeneous_quotas() {
        // Node 0 sends 2, nodes 1 and 2 each receive 1.
        let arcs = [(0, 1), (0, 1), (0, 2)];
        let sel = exact_degree_subgraph(3, &arcs, &[2, 0, 0], &[0, 1, 1]).unwrap();
        check_quotas(3, &arcs, &sel, &[2, 0, 0], &[0, 1, 1]);
    }

    #[test]
    fn self_arc_allowed() {
        // An Euler orientation of a self-loop yields an arc v -> v.
        let arcs = [(0, 0)];
        let sel = exact_degree_subgraph(1, &arcs, &[1], &[1]).unwrap();
        assert_eq!(sel, vec![true]);
    }

    #[test]
    #[should_panic(expected = "arc endpoint out of range")]
    fn arc_out_of_range_panics() {
        let _ = exact_degree_subgraph(1, &[(0, 3)], &[1], &[1]);
    }
}
