//! Exact degree-constrained subgraph extraction — the paper's Fig. 3.
//!
//! Step (4) of the even-capacity algorithm (§IV) repeatedly extracts from
//! the oriented bipartite graph `H` a subgraph in which each node `v_out`
//! has exactly `c_v/2` selected outgoing arcs and each `v_in` exactly
//! `c_v/2` selected incoming arcs. The paper realizes this as a flow
//! network (Fig. 3): a source feeding every `v_out` with capacity `c_v/2`,
//! unit-capacity arcs for the oriented edges, and every `v_in` draining
//! into the sink with capacity `c_v/2`. Integrality of max flow turns the
//! fractional existence argument of Lemma 4.1 into an integral selection.

use core::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::{pool, EdgeHandle, FlowNetwork};

/// Error returned when no subgraph meets the exact quotas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeConstraintError {
    /// The flow value actually achieved.
    pub achieved: i64,
    /// The flow value required (`Σ out_quota = Σ in_quota`).
    pub required: i64,
}

impl fmt::Display for DegreeConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no degree-exact subgraph: max flow {} of required {}",
            self.achieved, self.required
        )
    }
}

impl std::error::Error for DegreeConstraintError {}

/// Selects a subset of the oriented arcs such that node `v` is the tail of
/// exactly `out_quota[v]` selected arcs and the head of exactly
/// `in_quota[v]` selected arcs.
///
/// Returns a selection mask aligned with `arcs`.
///
/// The quotas must be balanced (`Σ out_quota == Σ in_quota`); when the
/// input comes from an Euler orientation with quotas `c_v/2` this holds by
/// construction and a solution exists by the paper's Lemma 4.1.
///
/// # Errors
///
/// Returns [`DegreeConstraintError`] when the max flow falls short of the
/// quota sum, i.e. no exact selection exists.
///
/// # Panics
///
/// Panics if quota slices are shorter than `num_nodes` or an arc endpoint
/// is out of range.
///
/// # Example
///
/// ```
/// use dmig_flow::exact_degree_subgraph;
///
/// // Oriented 4-cycle: select exactly one outgoing and one incoming arc
/// // per node — must take all four arcs.
/// let arcs = [(0, 1), (1, 2), (2, 3), (3, 0)];
/// let sel = exact_degree_subgraph(4, &arcs, &[1, 1, 1, 1], &[1, 1, 1, 1])?;
/// assert_eq!(sel, vec![true; 4]);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
pub fn exact_degree_subgraph(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
) -> Result<Vec<bool>, DegreeConstraintError> {
    DegreeSubgraphExtractor::new().extract(num_nodes, arcs, out_quota, in_quota)
}

/// Reusable buffer for repeated [`exact_degree_subgraph`] solves.
///
/// The even-capacity solver extracts `Δ'` successive subgraphs from a
/// shrinking arc set; building a fresh Fig. 3 network each round spends
/// most of its time in the allocator. The extractor keeps one
/// [`FlowNetwork`] (and its CSR/scratch buffers) alive across
/// [`DegreeSubgraphExtractor::extract`] calls and rebuilds it in place.
///
/// # Example
///
/// ```
/// use dmig_flow::DegreeSubgraphExtractor;
///
/// let mut ex = DegreeSubgraphExtractor::new();
/// let sel = ex.extract(3, &[(0, 1), (1, 2), (2, 0)], &[1; 3], &[1; 3])?;
/// assert_eq!(sel, vec![true; 3]);
/// // Second solve reuses the same buffers.
/// let sel = ex.extract(2, &[(0, 1), (1, 0)], &[1, 1], &[1, 1])?;
/// assert_eq!(sel, vec![true, true]);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct DegreeSubgraphExtractor {
    net: FlowNetwork,
    handles: Vec<EdgeHandle>,
    out_handles: Vec<EdgeHandle>,
    in_handles: Vec<EdgeHandle>,
    // Greedy warm-start scratch, reused across extracts.
    out_rem: Vec<i64>,
    in_rem: Vec<i64>,
}

impl DegreeSubgraphExtractor {
    /// Creates an extractor with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        DegreeSubgraphExtractor::default()
    }

    /// Creates an extractor pre-sized for instances with up to `num_nodes`
    /// nodes and `num_arcs` oriented arcs.
    #[must_use]
    pub fn with_capacity(num_nodes: usize, num_arcs: usize) -> Self {
        DegreeSubgraphExtractor {
            net: FlowNetwork::with_capacity(2 + 2 * num_nodes, 2 * num_nodes + num_arcs),
            handles: Vec::with_capacity(num_arcs),
            out_handles: Vec::with_capacity(num_nodes),
            in_handles: Vec::with_capacity(num_nodes),
            out_rem: Vec::with_capacity(num_nodes),
            in_rem: Vec::with_capacity(num_nodes),
        }
    }

    /// Same contract as [`exact_degree_subgraph`], reusing this extractor's
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeConstraintError`] when no exact selection exists.
    ///
    /// # Panics
    ///
    /// Panics if quota slices are shorter than `num_nodes` or an arc
    /// endpoint is out of range.
    pub fn extract(
        &mut self,
        num_nodes: usize,
        arcs: &[(usize, usize)],
        out_quota: &[u32],
        in_quota: &[u32],
    ) -> Result<Vec<bool>, DegreeConstraintError> {
        let mut selection = Vec::with_capacity(arcs.len());
        self.extract_into(num_nodes, arcs, out_quota, in_quota, &mut selection)?;
        Ok(selection)
    }

    /// Allocation-free variant of [`DegreeSubgraphExtractor::extract`]: the
    /// selection mask is written into `selection` (cleared first), so a
    /// caller that reuses both the extractor and the mask performs no heap
    /// allocation in steady state. This is the quota recursion's hot path.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeConstraintError`] when no exact selection exists;
    /// `selection` is then unspecified.
    ///
    /// # Panics
    ///
    /// Panics if quota slices are shorter than `num_nodes` or an arc
    /// endpoint is out of range.
    pub fn extract_into(
        &mut self,
        num_nodes: usize,
        arcs: &[(usize, usize)],
        out_quota: &[u32],
        in_quota: &[u32],
        selection: &mut Vec<bool>,
    ) -> Result<(), DegreeConstraintError> {
        assert!(
            out_quota.len() >= num_nodes,
            "out_quota shorter than node count"
        );
        assert!(
            in_quota.len() >= num_nodes,
            "in_quota shorter than node count"
        );

        // Vertex layout: 0 = source, 1 = sink, 2..2+n = out copies,
        // 2+n..2+2n = in copies.
        let s = 0usize;
        let t = 1usize;
        let out_base = 2usize;
        let in_base = 2 + num_nodes;
        let net = &mut self.net;
        net.clear(2 + 2 * num_nodes);

        let mut required = 0i64;
        self.out_handles.clear();
        self.in_handles.clear();
        for v in 0..num_nodes {
            self.out_handles
                .push(net.add_edge(s, out_base + v, i64::from(out_quota[v])));
            self.in_handles
                .push(net.add_edge(in_base + v, t, i64::from(in_quota[v])));
            required += i64::from(out_quota[v]);
        }
        self.handles.clear();
        self.handles.extend(arcs.iter().map(|&(u, v)| {
            assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
            net.add_edge(out_base + u, in_base + v, 1)
        }));

        // Greedy warm start: a maximal quota-respecting arc selection,
        // pushed as flow along complete s → arc → t paths, leaves Dinic
        // only the (small) deficit to augment.
        self.out_rem.clear();
        self.out_rem
            .extend(out_quota[..num_nodes].iter().map(|&q| i64::from(q)));
        self.in_rem.clear();
        self.in_rem
            .extend(in_quota[..num_nodes].iter().map(|&q| i64::from(q)));
        let mut greedy = 0i64;
        for (&(u, v), &h) in arcs.iter().zip(&self.handles) {
            if self.out_rem[u] > 0 && self.in_rem[v] > 0 {
                self.out_rem[u] -= 1;
                self.in_rem[v] -= 1;
                net.push_flow(h, 1);
                greedy += 1;
            }
        }
        for v in 0..num_nodes {
            net.push_flow(
                self.out_handles[v],
                i64::from(out_quota[v]) - self.out_rem[v],
            );
            net.push_flow(self.in_handles[v], i64::from(in_quota[v]) - self.in_rem[v]);
        }

        let achieved = greedy + net.max_flow(s, t);
        record_flow_solve(greedy, achieved);
        if achieved != required {
            return Err(DegreeConstraintError { achieved, required });
        }
        selection.clear();
        selection.extend(self.handles.iter().map(|&h| self.net.flow(h) == 1));
        Ok(())
    }
}

/// Peels successive exact degree-constrained subgraphs from one arc set.
///
/// The even-capacity solver extracts `Δ'` subgraphs from a *shrinking* arc
/// set — the arcs selected in round `r` vanish from rounds `r+1..`. The
/// peeler exploits that the Fig. 3 topology never changes: it builds the
/// flow network (and its CSR index) **once**, and each [`DegreePeeler::peel`]
/// only resets residual capacities, warm-starts with a greedy maximal
/// selection, lets Dinic augment the deficit, and then *disables* the
/// selected unit arcs (capacity 0) so later rounds skip them. No per-round
/// allocation, no per-round CSR counting sort.
///
/// # Example
///
/// ```
/// use dmig_flow::DegreePeeler;
///
/// // Two oriented 2-cycles; quota 1 in/out per node per round peels one
/// // cycle's worth of arcs each time, exhausting the arc set in 2 rounds.
/// let arcs = [(0, 1), (1, 0), (0, 1), (1, 0)];
/// let mut peeler = DegreePeeler::new(2, &arcs, &[1, 1], &[1, 1]);
/// let first = peeler.peel()?;
/// assert_eq!(first.len(), 2);
/// let second = peeler.peel()?;
/// assert_eq!(second.len(), 2);
/// assert_eq!(peeler.remaining(), 0);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DegreePeeler {
    net: FlowNetwork,
    arcs: Vec<(usize, usize)>,
    arc_handles: Vec<EdgeHandle>,
    out_handles: Vec<EdgeHandle>,
    in_handles: Vec<EdgeHandle>,
    out_quota: Vec<i64>,
    in_quota: Vec<i64>,
    active: Vec<bool>,
    remaining: usize,
    required: i64,
    // Greedy scratch, reused across peels.
    out_rem: Vec<i64>,
    in_rem: Vec<i64>,
}

impl DegreePeeler {
    /// Builds the Fig. 3 network once for `arcs` with per-node quotas.
    ///
    /// # Panics
    ///
    /// Panics if quota slices are shorter than `num_nodes` or an arc
    /// endpoint is out of range.
    #[must_use]
    pub fn new(
        num_nodes: usize,
        arcs: &[(usize, usize)],
        out_quota: &[u32],
        in_quota: &[u32],
    ) -> Self {
        assert!(
            out_quota.len() >= num_nodes,
            "out_quota shorter than node count"
        );
        assert!(
            in_quota.len() >= num_nodes,
            "in_quota shorter than node count"
        );
        let (s, t, out_base, in_base) = (0, 1, 2, 2 + num_nodes);
        let mut net = FlowNetwork::with_capacity(2 + 2 * num_nodes, 2 * num_nodes + arcs.len());
        let mut required = 0i64;
        let mut out_handles = Vec::with_capacity(num_nodes);
        let mut in_handles = Vec::with_capacity(num_nodes);
        for v in 0..num_nodes {
            out_handles.push(net.add_edge(s, out_base + v, i64::from(out_quota[v])));
            in_handles.push(net.add_edge(in_base + v, t, i64::from(in_quota[v])));
            required += i64::from(out_quota[v]);
        }
        let arc_handles: Vec<EdgeHandle> = arcs
            .iter()
            .map(|&(u, v)| {
                assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
                net.add_edge(out_base + u, in_base + v, 1)
            })
            .collect();
        DegreePeeler {
            net,
            arcs: arcs.to_vec(),
            arc_handles,
            out_handles,
            in_handles,
            out_quota: out_quota[..num_nodes]
                .iter()
                .map(|&q| i64::from(q))
                .collect(),
            in_quota: in_quota[..num_nodes]
                .iter()
                .map(|&q| i64::from(q))
                .collect(),
            active: vec![true; arcs.len()],
            remaining: arcs.len(),
            required,
            out_rem: vec![0; num_nodes],
            in_rem: vec![0; num_nodes],
        }
    }

    /// Arcs not yet peeled away.
    #[inline]
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Extracts one exact degree-constrained subgraph from the still-active
    /// arcs and removes the selected arcs from future peels.
    ///
    /// Returns the selected positions (indices into the original `arcs`
    /// slice), ascending.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeConstraintError`] when the active arcs admit no
    /// exact selection; the peeler state is then unspecified (no arcs are
    /// removed, but residuals are mid-solve).
    pub fn peel(&mut self) -> Result<Vec<usize>, DegreeConstraintError> {
        let (s, t) = (0, 1);
        self.net.reset();

        // Greedy warm start over the active arcs (disabled arcs have
        // original capacity 0, so pushing through them is impossible).
        self.out_rem.copy_from_slice(&self.out_quota);
        self.in_rem.copy_from_slice(&self.in_quota);
        let mut greedy = 0i64;
        for (pos, &(u, v)) in self.arcs.iter().enumerate() {
            if self.active[pos] && self.out_rem[u] > 0 && self.in_rem[v] > 0 {
                self.out_rem[u] -= 1;
                self.in_rem[v] -= 1;
                self.net.push_flow(self.arc_handles[pos], 1);
                greedy += 1;
            }
        }
        for v in 0..self.out_handles.len() {
            self.net
                .push_flow(self.out_handles[v], self.out_quota[v] - self.out_rem[v]);
            self.net
                .push_flow(self.in_handles[v], self.in_quota[v] - self.in_rem[v]);
        }

        let achieved = greedy + self.net.max_flow(s, t);
        record_flow_solve(greedy, achieved);
        if achieved != self.required {
            return Err(DegreeConstraintError {
                achieved,
                required: self.required,
            });
        }

        let mut selected = Vec::new();
        for pos in 0..self.arcs.len() {
            if self.active[pos] && self.net.flow(self.arc_handles[pos]) == 1 {
                selected.push(pos);
                self.active[pos] = false;
                self.remaining -= 1;
                self.net.set_capacity(self.arc_handles[pos], 0);
            }
        }
        Ok(selected)
    }
}

/// Counter bookkeeping shared by [`DegreeSubgraphExtractor::extract`] and
/// [`DegreePeeler::peel`]: one flow solve, with the units satisfied by the
/// greedy warm start counted as hits and the deficit Dinic had to augment
/// as misses.
fn record_flow_solve(greedy: i64, achieved: i64) {
    dmig_obs::counter_add(dmig_obs::keys::FLOW_SOLVES, 1);
    dmig_obs::counter_add(dmig_obs::keys::WARM_START_HITS, greedy.max(0) as u64);
    dmig_obs::counter_add(
        dmig_obs::keys::WARM_START_MISSES,
        (achieved - greedy).max(0) as u64,
    );
}

/// Number of max-flow solves [`quota_round_partition`] performs for a given
/// round count: odd levels peel one subgraph by flow, even levels split.
///
/// `E(1) = 0`, `E(2k+1) = 1 + E(2k)`, `E(2k) = 2·E(k)` — so a power of two
/// needs no flow at all and the count is `O(rounds)` worst case but tiny in
/// practice. `perf_report` and the observability tests assert the
/// [`flow_solves`](dmig_obs::keys::FLOW_SOLVES) counter against this.
#[must_use]
pub fn quota_flow_solves(rounds: usize) -> u64 {
    match rounds {
        0 | 1 => 0,
        r if r % 2 == 1 => 1 + quota_flow_solves(r - 1),
        r => 2 * quota_flow_solves(r / 2),
    }
}

/// Number of Euler splits [`quota_round_partition`] performs for a given
/// round count (`S(1) = 0`, `S(2k+1) = S(2k)`, `S(2k) = 1 + 2·S(k)`);
/// the counterpart of [`quota_flow_solves`] for the
/// [`euler_splits`](dmig_obs::keys::EULER_SPLITS) counter.
#[must_use]
pub fn quota_euler_splits(rounds: usize) -> u64 {
    match rounds {
        0 | 1 => 0,
        r if r % 2 == 1 => quota_euler_splits(r - 1),
        r => 1 + 2 * quota_euler_splits(r / 2),
    }
}

/// Partitions `arcs` into `rounds` groups, each meeting the quotas exactly.
///
/// Preconditions (guaranteed by the even solver's padding + Euler
/// orientation, verified here in `O(arcs)`): node `v` is the tail of
/// exactly `out_quota[v] · rounds` arcs and the head of exactly
/// `in_quota[v] · rounds` arcs.
///
/// This is the Kariv–Gabow divide-and-conquer view of the paper's step 4:
/// when the round count is **even**, the bipartite multigraph on
/// out-copies × in-copies has all degrees even, so an *Euler split* —
/// walking closed trails and assigning arcs alternately to two halves —
/// divides every degree exactly in two (every closed trail in a bipartite
/// graph has even length), yielding two independent subproblems with half
/// the rounds, in linear time. When the count is **odd**, one exact
/// subgraph is peeled by max flow. Flow therefore runs `O(log rounds)`
/// times instead of `rounds` times, on geometrically shrinking arc sets.
///
/// Returns `rounds` vectors of positions into `arcs` (a partition of
/// `0..arcs.len()`), deterministically.
///
/// # Parallelism and determinism
///
/// The two halves of an Euler split are **independent** subproblems, so on
/// instances worth the thread-spawn cost the recursion recruits extra
/// workers from the process-wide [`pool::budget`] (shared with the
/// component-parallel driver in `dmig-core` and ultimately governed by the
/// CLI `--threads` flag). Each subtree owns a disjoint `&mut` slice of the
/// position array and a disjoint range of tree-position-indexed output
/// slots, obtained by `split_at_mut` — workers cannot observe each other,
/// every round lands in the slot its recursion path dictates, and the
/// Euler walk itself is untouched, so the returned partition is
/// **byte-identical for any thread count** (including zero extra workers).
/// Per-level scratch lives in a pooled [`SolveScratch`] arena; steady-state
/// levels allocate nothing.
///
/// # Errors
///
/// Returns [`DegreeConstraintError`] if the degree preconditions fail or an
/// odd-level peel finds no exact subgraph (impossible on inputs meeting the
/// preconditions).
///
/// # Panics
///
/// Panics if quota slices are shorter than `num_nodes` or an arc endpoint
/// is out of range.
///
/// # Example
///
/// ```
/// use dmig_flow::quota_round_partition;
///
/// // 3 cyclic shifts on 4 nodes: out/in-degree 3 per node, quota 1 per
/// // round over 3 rounds.
/// let mut arcs = Vec::new();
/// for k in 1..=3 {
///     for u in 0..4 {
///         arcs.push((u, (u + k) % 4));
///     }
/// }
/// let rounds = quota_round_partition(4, &arcs, &[1; 4], &[1; 4], 3)?;
/// assert_eq!(rounds.len(), 3);
/// assert_eq!(rounds.iter().map(Vec::len).sum::<usize>(), arcs.len());
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
pub fn quota_round_partition(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
    rounds: usize,
) -> Result<Vec<Vec<usize>>, DegreeConstraintError> {
    assert!(
        out_quota.len() >= num_nodes,
        "out_quota shorter than node count"
    );
    assert!(
        in_quota.len() >= num_nodes,
        "in_quota shorter than node count"
    );
    let _span = dmig_obs::span_labeled("quota_round_partition", || {
        format!("rounds={rounds} arcs={}", arcs.len())
    });
    if rounds == 0 {
        return if arcs.is_empty() {
            Ok(Vec::new())
        } else {
            Err(DegreeConstraintError {
                achieved: arcs.len() as i64,
                required: 0,
            })
        };
    }

    // Verify the regularity preconditions; the Euler splits silently assume
    // them, so a violation must be caught here.
    let mut out_deg = vec![0i64; num_nodes];
    let mut in_deg = vec![0i64; num_nodes];
    for &(u, v) in arcs {
        assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
        out_deg[u] += 1;
        in_deg[v] += 1;
    }
    let r = rounds as i64;
    for v in 0..num_nodes {
        for (deg, quota) in [(out_deg[v], out_quota[v]), (in_deg[v], in_quota[v])] {
            let required = i64::from(quota) * r;
            if deg != required {
                return Err(DegreeConstraintError {
                    achieved: deg,
                    required,
                });
            }
        }
    }

    let ctx = QuotaCtx {
        arcs,
        num_nodes,
        out_quota,
        in_quota,
    };
    let mut rounds_out: Vec<Vec<usize>> = Vec::with_capacity(rounds);
    rounds_out.resize_with(rounds, Vec::new);
    let mut positions: Vec<usize> = (0..arcs.len()).collect();
    run_partition(ctx, &mut positions, &mut rounds_out, rounds)?;
    Ok(rounds_out)
}

/// Reusable per-worker scratch arena for the quota recursion.
///
/// Holds every buffer a recursion level touches — the Fig. 3 extractor
/// (with its Dinic network), the Euler-split CSR, the staging area for the
/// in-place split, and the odd-level sub-arc/selection buffers — so a
/// worker that reuses one arena performs **zero heap allocation per
/// recursion level** once the buffers have grown to the working-set size.
/// Arenas are parked in a process-wide [`pool::ObjectPool`] between solves;
/// reuse is observable via [`dmig_obs::keys::SCRATCH_REUSES`].
#[derive(Clone, Debug, Default)]
pub struct SolveScratch {
    extractor: DegreeSubgraphExtractor,
    // Euler-split CSR over the 2m half-edges, reused across levels.
    offsets: Vec<usize>,
    cursor: Vec<usize>,
    half_to: Vec<usize>,
    half_arc: Vec<usize>,
    used: Vec<bool>,
    // In-place split staging: left half then right half.
    stage: Vec<usize>,
    // Odd-level extraction scratch.
    sub_arcs: Vec<(usize, usize)>,
    selection: Vec<bool>,
}

impl SolveScratch {
    /// Creates an empty arena (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SolveScratch::default()
    }
}

/// The process-wide park for [`SolveScratch`] arenas.
fn scratch_pool() -> &'static pool::ObjectPool<SolveScratch> {
    static POOL: pool::ObjectPool<SolveScratch> = pool::ObjectPool::new();
    &POOL
}

/// Most extra workers one quota recursion will recruit, even when the
/// budget is larger; deeper fan-out than the split tree's width is waste.
const MAX_EXTRA_WORKERS: usize = 8;

/// Worker id of the calling thread (helpers are `1..`).
const MAIN_WORKER: usize = 0;

/// Immutable problem context shared by every recursion task.
#[derive(Clone, Copy)]
struct QuotaCtx<'a> {
    arcs: &'a [(usize, usize)],
    num_nodes: usize,
    out_quota: &'a [u32],
    in_quota: &'a [u32],
}

/// One independent subtree of the quota recursion.
///
/// `subset` is the task's private window of the position array and `out`
/// its private window of the output slots (`out.len() == rounds`); both are
/// carved with `split_at_mut`, so tasks are disjoint by construction.
/// `base` is the absolute index of `out[0]` — the task's tree position —
/// used only to pick the canonical (lowest-slot) error.
struct Task<'s> {
    subset: &'s mut [usize],
    out: &'s mut [Vec<usize>],
    rounds: usize,
    base: usize,
    depth: u64,
    pusher: usize,
}

/// State shared by the workers of one [`quota_round_partition`] call.
struct ParShared<'s, 'a> {
    ctx: QuotaCtx<'a>,
    /// LIFO task queue: popping the most recently pushed task keeps each
    /// worker on the subtree it just split (depth-first, cache-warm).
    queue: Mutex<Vec<Task<'s>>>,
    cond: Condvar,
    /// Tasks pushed but not yet finished; the pool drains when it hits 0.
    outstanding: AtomicUsize,
    /// Lowest-`base` error seen — exactly the error a sequential
    /// depth-first recursion would have returned first.
    error: Mutex<Option<(usize, DegreeConstraintError)>>,
}

/// Runs the recursion over `positions`, writing each round into its
/// tree-position-indexed slot of `out`.
///
/// Always drives the same task machinery; extra workers (recruited from
/// the shared [`pool::budget`] when the instance clears
/// [`pool::spawn_min_work`]) merely drain the queue concurrently. With no
/// helpers the LIFO queue degenerates to an explicit depth-first stack.
fn run_partition(
    ctx: QuotaCtx<'_>,
    positions: &mut [usize],
    out: &mut [Vec<usize>],
    rounds: usize,
) -> Result<(), DegreeConstraintError> {
    let mut helpers = Vec::new();
    if rounds >= 4 && positions.len() >= pool::spawn_min_work() {
        let cap = (rounds / 2).min(MAX_EXTRA_WORKERS);
        while helpers.len() < cap {
            match pool::budget().try_acquire() {
                Some(permit) => helpers.push(permit),
                None => break,
            }
        }
    }

    let shared = ParShared {
        ctx,
        queue: Mutex::new(Vec::with_capacity(rounds.min(64))),
        cond: Condvar::new(),
        outstanding: AtomicUsize::new(1),
        error: Mutex::new(None),
    };
    shared
        .queue
        .lock()
        .expect("task queue poisoned")
        .push(Task {
            subset: positions,
            out,
            rounds,
            base: 0,
            depth: 0,
            pusher: MAIN_WORKER,
        });

    if helpers.is_empty() {
        worker_loop(&shared, MAIN_WORKER);
    } else {
        dmig_obs::gauge_max(dmig_obs::keys::POOL_MAX_WORKERS, helpers.len() as u64 + 1);
        let parent = dmig_obs::current_span();
        std::thread::scope(|scope| {
            for (w, permit) in helpers.into_iter().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    let _permit = permit;
                    let _span =
                        dmig_obs::span_under(parent, "quota_worker", || format!("#{}", w + 1));
                    worker_loop(shared, w + 1);
                });
            }
            worker_loop(&shared, MAIN_WORKER);
        });
    }

    match shared.error.into_inner().expect("error slot poisoned") {
        Some((_, err)) => Err(err),
        None => Ok(()),
    }
}

/// Pops and runs tasks until every outstanding task has finished.
fn worker_loop(shared: &ParShared<'_, '_>, worker: usize) {
    let mut scratch = scratch_pool().acquire();
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("task queue poisoned");
            loop {
                if let Some(task) = queue.pop() {
                    break task;
                }
                if shared.outstanding.load(Ordering::Acquire) == 0 {
                    drop(queue);
                    scratch_pool().release(scratch);
                    return;
                }
                queue = shared.cond.wait(queue).expect("task queue poisoned");
            }
        };
        if task.pusher != worker {
            dmig_obs::counter_add(dmig_obs::keys::POOL_STEALS, 1);
        }
        run_task(shared, task, worker, &mut scratch);
        if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task in the tree: wake the idle workers so they exit.
            // Taking the lock orders the wake after any in-progress wait.
            let _queue = shared.queue.lock().expect("task queue poisoned");
            shared.cond.notify_all();
        }
    }
}

/// Solves one subtree, descending into the left child iteratively and
/// publishing right children of Euler splits as stealable tasks.
fn run_task<'s>(
    shared: &ParShared<'s, '_>,
    task: Task<'s>,
    worker: usize,
    scratch: &mut SolveScratch,
) {
    let Task {
        mut subset,
        mut out,
        mut rounds,
        base,
        mut depth,
        ..
    } = task;
    let mut slot = base;
    loop {
        dmig_obs::gauge_max(dmig_obs::keys::QUOTA_MAX_DEPTH, depth);
        if rounds == 1 {
            out[0].clear();
            out[0].extend_from_slice(subset);
            return;
        }
        if rounds % 2 == 1 {
            // Peel one exact subgraph by max flow, leaving an even count.
            let (head, tail) = out.split_first_mut().expect("rounds >= 1");
            match peel_one(&shared.ctx, subset, scratch, head) {
                Ok(kept) => {
                    let remaining = subset;
                    subset = &mut remaining[..kept];
                    out = tail;
                    rounds -= 1;
                    slot += 1;
                    depth += 1;
                    continue;
                }
                Err(err) => {
                    record_partition_error(shared, slot, err);
                    return;
                }
            }
        }
        dmig_obs::counter_add(dmig_obs::keys::EULER_SPLITS, 1);
        euler_split_in_place(&shared.ctx, subset, scratch);
        let half_rounds = rounds / 2;
        let mid = subset.len() / 2;
        let (left, right) = subset.split_at_mut(mid);
        let (left_out, right_out) = out.split_at_mut(half_rounds);
        if half_rounds == 1 {
            // A leaf is cheaper than a queue round-trip: fill it inline.
            right_out[0].clear();
            right_out[0].extend_from_slice(right);
        } else {
            shared.outstanding.fetch_add(1, Ordering::AcqRel);
            let mut queue = shared.queue.lock().expect("task queue poisoned");
            queue.push(Task {
                subset: right,
                out: right_out,
                rounds: half_rounds,
                base: slot + half_rounds,
                depth: depth + 1,
                pusher: worker,
            });
            dmig_obs::counter_add(dmig_obs::keys::POOL_TASKS, 1);
            dmig_obs::gauge_max(dmig_obs::keys::POOL_MAX_QUEUE_DEPTH, queue.len() as u64);
            drop(queue);
            shared.cond.notify_one();
        }
        subset = left;
        out = left_out;
        rounds = half_rounds;
        depth += 1;
    }
}

/// Records `err` unless an error from a lower output slot already won.
fn record_partition_error(shared: &ParShared<'_, '_>, slot: usize, err: DegreeConstraintError) {
    let mut best = shared.error.lock().expect("error slot poisoned");
    match &*best {
        Some((winner, _)) if *winner <= slot => {}
        _ => *best = Some((slot, err)),
    }
}

/// Peels one exact degree-constrained subgraph: the selected positions go
/// to `round_out` (in subset order), the rest compact to `subset[..kept]`
/// (order preserved). Returns `kept`.
fn peel_one(
    ctx: &QuotaCtx<'_>,
    subset: &mut [usize],
    scratch: &mut SolveScratch,
    round_out: &mut Vec<usize>,
) -> Result<usize, DegreeConstraintError> {
    scratch.sub_arcs.clear();
    scratch.sub_arcs.extend(subset.iter().map(|&p| ctx.arcs[p]));
    scratch.extractor.extract_into(
        ctx.num_nodes,
        &scratch.sub_arcs,
        ctx.out_quota,
        ctx.in_quota,
        &mut scratch.selection,
    )?;
    round_out.clear();
    let mut kept = 0;
    for i in 0..subset.len() {
        if scratch.selection[i] {
            round_out.push(subset[i]);
        } else {
            subset[kept] = subset[i];
            kept += 1;
        }
    }
    Ok(kept)
}

/// Splits the subset in place into two halves in which every out/in-copy
/// keeps exactly half its degree: walk closed trails of the bipartite
/// multigraph (out-copy `u` ↔ in-copy `v` per arc), assigning arcs
/// alternately. All degrees are even (degree = quota · even rounds) and
/// all closed trails have even length (bipartite), so the alternation
/// balances at every vertex. On return `subset[..m/2]` is the left half
/// and `subset[m/2..]` the right, in trail order — identical to what the
/// sequential recursion has always produced.
fn euler_split_in_place(ctx: &QuotaCtx<'_>, subset: &mut [usize], scratch: &mut SolveScratch) {
    let n2 = 2 * ctx.num_nodes;
    let m = subset.len();

    // CSR over the 2m half-edges: endpoint u for out-copies, n+v for
    // in-copies.
    scratch.offsets.clear();
    scratch.offsets.resize(n2 + 1, 0);
    for &pos in subset.iter() {
        let (u, v) = ctx.arcs[pos];
        scratch.offsets[u + 1] += 1;
        scratch.offsets[ctx.num_nodes + v + 1] += 1;
    }
    for i in 0..n2 {
        scratch.offsets[i + 1] += scratch.offsets[i];
    }
    scratch.half_to.clear();
    scratch.half_to.resize(2 * m, 0);
    scratch.half_arc.clear();
    scratch.half_arc.resize(2 * m, 0);
    scratch.cursor.clear();
    scratch.cursor.extend_from_slice(&scratch.offsets[..n2]);
    for (local, &pos) in subset.iter().enumerate() {
        let (u, v) = ctx.arcs[pos];
        let (a, b) = (u, ctx.num_nodes + v);
        scratch.half_to[scratch.cursor[a]] = b;
        scratch.half_arc[scratch.cursor[a]] = local;
        scratch.cursor[a] += 1;
        scratch.half_to[scratch.cursor[b]] = a;
        scratch.half_arc[scratch.cursor[b]] = local;
        scratch.cursor[b] += 1;
    }
    scratch.cursor.clear();
    scratch.cursor.extend_from_slice(&scratch.offsets[..n2]);
    scratch.used.clear();
    scratch.used.resize(m, false);
    scratch.stage.clear();
    scratch.stage.resize(m, 0);

    let (mut li, mut ri) = (0, m / 2);
    for start in 0..n2 {
        // Walk closed trails from `start` until its arcs are exhausted.
        // The walk can only get stuck at `start` (every other vertex on
        // the trail has an odd number of used half-edges, hence an
        // unused one).
        let mut v = start;
        let mut to_left = true;
        loop {
            while scratch.cursor[v] < scratch.offsets[v + 1]
                && scratch.used[scratch.half_arc[scratch.cursor[v]]]
            {
                scratch.cursor[v] += 1;
            }
            if scratch.cursor[v] == scratch.offsets[v + 1] {
                debug_assert_eq!(v, start, "Euler walk stuck away from its start");
                break;
            }
            let i = scratch.cursor[v];
            let local = scratch.half_arc[i];
            scratch.used[local] = true;
            if to_left {
                scratch.stage[li] = subset[local];
                li += 1;
            } else {
                scratch.stage[ri] = subset[local];
                ri += 1;
            }
            to_left = !to_left;
            v = scratch.half_to[i];
        }
    }
    debug_assert_eq!(li, m / 2, "bipartite Euler split must balance");
    debug_assert_eq!(ri, m, "bipartite Euler split must balance");
    subset.copy_from_slice(&scratch.stage[..m]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_quotas(
        num_nodes: usize,
        arcs: &[(usize, usize)],
        sel: &[bool],
        out_quota: &[u32],
        in_quota: &[u32],
    ) {
        let mut out = vec![0u32; num_nodes];
        let mut inn = vec![0u32; num_nodes];
        for (i, &(u, v)) in arcs.iter().enumerate() {
            if sel[i] {
                out[u] += 1;
                inn[v] += 1;
            }
        }
        assert_eq!(out, out_quota[..num_nodes]);
        assert_eq!(inn, in_quota[..num_nodes]);
    }

    #[test]
    fn cycle_forced_selection() {
        let arcs = [(0, 1), (1, 2), (2, 0)];
        let sel = exact_degree_subgraph(3, &arcs, &[1; 3], &[1; 3]).unwrap();
        assert_eq!(sel, vec![true; 3]);
    }

    #[test]
    fn zero_quotas_select_nothing() {
        let arcs = [(0, 1), (1, 0)];
        let sel = exact_degree_subgraph(2, &arcs, &[0, 0], &[0, 0]).unwrap();
        assert_eq!(sel, vec![false, false]);
    }

    #[test]
    fn parallel_arcs_pick_exact_count() {
        let arcs = [(0, 1), (0, 1), (0, 1), (0, 1)];
        let sel = exact_degree_subgraph(2, &arcs, &[2, 0], &[0, 2]).unwrap();
        assert_eq!(sel.iter().filter(|&&b| b).count(), 2);
        check_quotas(2, &arcs, &sel, &[2, 0], &[0, 2]);
    }

    #[test]
    fn infeasible_reports_shortfall() {
        // Node 1 must emit 1 arc but has none.
        let arcs = [(0, 1)];
        let err = exact_degree_subgraph(2, &arcs, &[0, 1], &[1, 0]).unwrap_err();
        assert_eq!(err.achieved, 0);
        assert_eq!(err.required, 1);
        assert!(err.to_string().contains("max flow 0"));
    }

    #[test]
    fn doubled_euler_style_instance() {
        // Every node out-quota 1 / in-quota 1, arcs forming two disjoint
        // 2-cycles plus chords; a valid selection exists.
        let arcs = [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0)];
        let sel = exact_degree_subgraph(4, &arcs, &[1; 4], &[1; 4]).unwrap();
        check_quotas(4, &arcs, &sel, &[1; 4], &[1; 4]);
    }

    #[test]
    fn heterogeneous_quotas() {
        // Node 0 sends 2, nodes 1 and 2 each receive 1.
        let arcs = [(0, 1), (0, 1), (0, 2)];
        let sel = exact_degree_subgraph(3, &arcs, &[2, 0, 0], &[0, 1, 1]).unwrap();
        check_quotas(3, &arcs, &sel, &[2, 0, 0], &[0, 1, 1]);
    }

    #[test]
    fn self_arc_allowed() {
        // An Euler orientation of a self-loop yields an arc v -> v.
        let arcs = [(0, 0)];
        let sel = exact_degree_subgraph(1, &arcs, &[1], &[1]).unwrap();
        assert_eq!(sel, vec![true]);
    }

    #[test]
    #[should_panic(expected = "arc endpoint out of range")]
    fn arc_out_of_range_panics() {
        let _ = exact_degree_subgraph(1, &[(0, 3)], &[1], &[1]);
    }

    #[test]
    fn peeler_exhausts_regular_arc_set() {
        // Out/in-degree 3 per node (three cyclic shifts on 5 nodes); quota
        // 1 per round peels a permutation each time, 3 rounds total.
        let n = 5;
        let mut arcs = Vec::new();
        for k in 1..=3 {
            for u in 0..n {
                arcs.push((u, (u + k) % n));
            }
        }
        let quota = vec![1u32; n];
        let mut peeler = DegreePeeler::new(n, &arcs, &quota, &quota);
        let mut seen = vec![false; arcs.len()];
        for _ in 0..3 {
            let sel = peeler.peel().unwrap();
            assert_eq!(sel.len(), n);
            let mut sel_mask = vec![false; arcs.len()];
            for &pos in &sel {
                assert!(!seen[pos], "arc peeled twice");
                seen[pos] = true;
                sel_mask[pos] = true;
            }
            check_quotas(n, &arcs, &sel_mask, &quota, &quota);
        }
        assert_eq!(peeler.remaining(), 0);
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn peeler_matches_extractor_per_round() {
        // Peeling must stay feasible round by round exactly like the
        // rebuild-from-scratch extractor does on the same shrinking arc set.
        let n = 4;
        let arcs = [
            (0, 1),
            (1, 0),
            (2, 3),
            (3, 2),
            (0, 2),
            (2, 0),
            (1, 3),
            (3, 1),
        ];
        let quota = vec![1u32; n];
        let mut peeler = DegreePeeler::new(n, &arcs, &quota, &quota);
        let mut live: Vec<usize> = (0..arcs.len()).collect();
        for _ in 0..2 {
            let sel = peeler.peel().unwrap();
            // Reference: fresh extraction over the same remaining arcs.
            let remaining_arcs: Vec<(usize, usize)> = live.iter().map(|&p| arcs[p]).collect();
            let ref_sel = exact_degree_subgraph(n, &remaining_arcs, &quota, &quota).unwrap();
            assert_eq!(sel.len(), ref_sel.iter().filter(|&&b| b).count());
            live.retain(|p| !sel.contains(p));
        }
        assert_eq!(peeler.remaining(), 0);
    }

    #[test]
    fn flow_solve_predictors_match_recursion() {
        // E(r): odd levels peel by flow, even levels halve.
        assert_eq!(
            (1..=8).map(quota_flow_solves).collect::<Vec<_>>(),
            [0, 0, 1, 0, 1, 2, 3, 0]
        );
        // S(r): splits double down the even halvings.
        assert_eq!(
            (1..=8).map(quota_euler_splits).collect::<Vec<_>>(),
            [0, 1, 1, 3, 3, 3, 3, 7]
        );
    }

    #[test]
    fn peeler_reports_infeasible() {
        // One arc, but node 1 must also emit one: infeasible immediately.
        let mut peeler = DegreePeeler::new(2, &[(0, 1)], &[1, 1], &[1, 1]);
        let err = peeler.peel().unwrap_err();
        assert_eq!(err.required, 2);
    }

    /// `rounds` cyclic shifts on `n` nodes: out/in-degree `rounds` per
    /// node, quota 1 per round.
    fn shift_instance(n: usize, rounds: usize) -> Vec<(usize, usize)> {
        let mut arcs = Vec::new();
        for k in 1..=rounds {
            for u in 0..n {
                arcs.push((u, (u + k) % n));
            }
        }
        arcs
    }

    fn check_partition(n: usize, arcs: &[(usize, usize)], rounds: &[Vec<usize>], quota: &[u32]) {
        for round in rounds {
            let mut mask = vec![false; arcs.len()];
            for &pos in round {
                assert!(!mask[pos], "position repeated within a round");
                mask[pos] = true;
            }
            check_quotas(n, arcs, &mask, quota, quota);
        }
        assert_eq!(
            rounds.iter().map(Vec::len).sum::<usize>(),
            arcs.len(),
            "rounds must partition the arc set"
        );
    }

    #[test]
    fn partition_is_identical_with_and_without_extra_workers() {
        // rounds = 12 gives a split tree with both even halvings and an
        // odd peel; force the parallel path by zeroing the spawn floor.
        let n = 12;
        let arcs = shift_instance(n, 12);
        let quota = vec![1u32; n];
        pool::budget().set_parallelism(1);
        let sequential = quota_round_partition(n, &arcs, &quota, &quota, 12).unwrap();
        check_partition(n, &arcs, &sequential, &quota);
        let saved_floor = pool::spawn_min_work();
        pool::set_spawn_min_work(0);
        for threads in [2, 3, 4] {
            pool::budget().set_parallelism(threads);
            let parallel = quota_round_partition(n, &arcs, &quota, &quota, 12).unwrap();
            assert_eq!(
                sequential, parallel,
                "schedule differs with {threads}-thread budget"
            );
        }
        pool::budget().set_parallelism(1);
        pool::set_spawn_min_work(saved_floor);
    }

    #[test]
    fn warm_start_hits_on_doubled_euler_instance() {
        // rounds = 3 is odd, so the quota recursion must run a flow solve;
        // the greedy pre-matching saturates at least one unit of quota and
        // the hit counter must move. Counters are global and other tests
        // only ever add, so comparing before/after is race-safe.
        let n = 6;
        let arcs = shift_instance(n, 3);
        let quota = vec![1u32; n];
        let was_enabled = dmig_obs::is_enabled();
        dmig_obs::set_enabled(true);
        let hits = |snap: &dmig_obs::Snapshot| {
            snap.counters
                .get(dmig_obs::keys::WARM_START_HITS)
                .copied()
                .unwrap_or(0)
        };
        let before = hits(&dmig_obs::snapshot());
        let rounds = quota_round_partition(n, &arcs, &quota, &quota, 3).unwrap();
        let after = hits(&dmig_obs::snapshot());
        dmig_obs::set_enabled(was_enabled);
        check_partition(n, &arcs, &rounds, &quota);
        assert!(
            after > before,
            "warm start must satisfy at least one quota unit ({before} -> {after})"
        );
    }

    #[test]
    fn empty_arc_set_partitions_into_empty_rounds() {
        let rounds = quota_round_partition(3, &[], &[0; 3], &[0; 3], 4).unwrap();
        assert_eq!(rounds, vec![Vec::<usize>::new(); 4]);
    }

    #[test]
    fn deep_power_of_two_rounds_need_no_flow() {
        // rounds = 8: pure Euler halvings, no flow solve (E(8) = 0), and
        // the partition still lands every arc in a quota-exact round.
        let n = 8;
        let arcs = shift_instance(n, 8);
        let quota = vec![1u32; n];
        let rounds = quota_round_partition(n, &arcs, &quota, &quota, 8).unwrap();
        assert_eq!(rounds.len(), 8);
        check_partition(n, &arcs, &rounds, &quota);
    }
}
