//! Exact degree-constrained subgraph extraction — the paper's Fig. 3.
//!
//! Step (4) of the even-capacity algorithm (§IV) repeatedly extracts from
//! the oriented bipartite graph `H` a subgraph in which each node `v_out`
//! has exactly `c_v/2` selected outgoing arcs and each `v_in` exactly
//! `c_v/2` selected incoming arcs. The paper realizes this as a flow
//! network (Fig. 3): a source feeding every `v_out` with capacity `c_v/2`,
//! unit-capacity arcs for the oriented edges, and every `v_in` draining
//! into the sink with capacity `c_v/2`. Integrality of max flow turns the
//! fractional existence argument of Lemma 4.1 into an integral selection.

use core::fmt;

use crate::{EdgeHandle, FlowNetwork};

/// Error returned when no subgraph meets the exact quotas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeConstraintError {
    /// The flow value actually achieved.
    pub achieved: i64,
    /// The flow value required (`Σ out_quota = Σ in_quota`).
    pub required: i64,
}

impl fmt::Display for DegreeConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no degree-exact subgraph: max flow {} of required {}",
            self.achieved, self.required
        )
    }
}

impl std::error::Error for DegreeConstraintError {}

/// Selects a subset of the oriented arcs such that node `v` is the tail of
/// exactly `out_quota[v]` selected arcs and the head of exactly
/// `in_quota[v]` selected arcs.
///
/// Returns a selection mask aligned with `arcs`.
///
/// The quotas must be balanced (`Σ out_quota == Σ in_quota`); when the
/// input comes from an Euler orientation with quotas `c_v/2` this holds by
/// construction and a solution exists by the paper's Lemma 4.1.
///
/// # Errors
///
/// Returns [`DegreeConstraintError`] when the max flow falls short of the
/// quota sum, i.e. no exact selection exists.
///
/// # Panics
///
/// Panics if quota slices are shorter than `num_nodes` or an arc endpoint
/// is out of range.
///
/// # Example
///
/// ```
/// use dmig_flow::exact_degree_subgraph;
///
/// // Oriented 4-cycle: select exactly one outgoing and one incoming arc
/// // per node — must take all four arcs.
/// let arcs = [(0, 1), (1, 2), (2, 3), (3, 0)];
/// let sel = exact_degree_subgraph(4, &arcs, &[1, 1, 1, 1], &[1, 1, 1, 1])?;
/// assert_eq!(sel, vec![true; 4]);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
pub fn exact_degree_subgraph(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
) -> Result<Vec<bool>, DegreeConstraintError> {
    DegreeSubgraphExtractor::new().extract(num_nodes, arcs, out_quota, in_quota)
}

/// Reusable buffer for repeated [`exact_degree_subgraph`] solves.
///
/// The even-capacity solver extracts `Δ'` successive subgraphs from a
/// shrinking arc set; building a fresh Fig. 3 network each round spends
/// most of its time in the allocator. The extractor keeps one
/// [`FlowNetwork`] (and its CSR/scratch buffers) alive across
/// [`DegreeSubgraphExtractor::extract`] calls and rebuilds it in place.
///
/// # Example
///
/// ```
/// use dmig_flow::DegreeSubgraphExtractor;
///
/// let mut ex = DegreeSubgraphExtractor::new();
/// let sel = ex.extract(3, &[(0, 1), (1, 2), (2, 0)], &[1; 3], &[1; 3])?;
/// assert_eq!(sel, vec![true; 3]);
/// // Second solve reuses the same buffers.
/// let sel = ex.extract(2, &[(0, 1), (1, 0)], &[1, 1], &[1, 1])?;
/// assert_eq!(sel, vec![true, true]);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct DegreeSubgraphExtractor {
    net: FlowNetwork,
    handles: Vec<EdgeHandle>,
    out_handles: Vec<EdgeHandle>,
    in_handles: Vec<EdgeHandle>,
}

impl DegreeSubgraphExtractor {
    /// Creates an extractor with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        DegreeSubgraphExtractor::default()
    }

    /// Creates an extractor pre-sized for instances with up to `num_nodes`
    /// nodes and `num_arcs` oriented arcs.
    #[must_use]
    pub fn with_capacity(num_nodes: usize, num_arcs: usize) -> Self {
        DegreeSubgraphExtractor {
            net: FlowNetwork::with_capacity(2 + 2 * num_nodes, 2 * num_nodes + num_arcs),
            handles: Vec::with_capacity(num_arcs),
            out_handles: Vec::with_capacity(num_nodes),
            in_handles: Vec::with_capacity(num_nodes),
        }
    }

    /// Same contract as [`exact_degree_subgraph`], reusing this extractor's
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeConstraintError`] when no exact selection exists.
    ///
    /// # Panics
    ///
    /// Panics if quota slices are shorter than `num_nodes` or an arc
    /// endpoint is out of range.
    pub fn extract(
        &mut self,
        num_nodes: usize,
        arcs: &[(usize, usize)],
        out_quota: &[u32],
        in_quota: &[u32],
    ) -> Result<Vec<bool>, DegreeConstraintError> {
        assert!(
            out_quota.len() >= num_nodes,
            "out_quota shorter than node count"
        );
        assert!(
            in_quota.len() >= num_nodes,
            "in_quota shorter than node count"
        );

        // Vertex layout: 0 = source, 1 = sink, 2..2+n = out copies,
        // 2+n..2+2n = in copies.
        let s = 0usize;
        let t = 1usize;
        let out_base = 2usize;
        let in_base = 2 + num_nodes;
        let net = &mut self.net;
        net.clear(2 + 2 * num_nodes);

        let mut required = 0i64;
        self.out_handles.clear();
        self.in_handles.clear();
        for v in 0..num_nodes {
            self.out_handles
                .push(net.add_edge(s, out_base + v, i64::from(out_quota[v])));
            self.in_handles
                .push(net.add_edge(in_base + v, t, i64::from(in_quota[v])));
            required += i64::from(out_quota[v]);
        }
        self.handles.clear();
        self.handles.extend(arcs.iter().map(|&(u, v)| {
            assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
            net.add_edge(out_base + u, in_base + v, 1)
        }));

        // Greedy warm start: a maximal quota-respecting arc selection,
        // pushed as flow along complete s → arc → t paths, leaves Dinic
        // only the (small) deficit to augment.
        let mut out_rem: Vec<i64> = out_quota[..num_nodes]
            .iter()
            .map(|&q| i64::from(q))
            .collect();
        let mut in_rem: Vec<i64> = in_quota[..num_nodes]
            .iter()
            .map(|&q| i64::from(q))
            .collect();
        let mut greedy = 0i64;
        for (&(u, v), &h) in arcs.iter().zip(&self.handles) {
            if out_rem[u] > 0 && in_rem[v] > 0 {
                out_rem[u] -= 1;
                in_rem[v] -= 1;
                net.push_flow(h, 1);
                greedy += 1;
            }
        }
        for v in 0..num_nodes {
            net.push_flow(self.out_handles[v], i64::from(out_quota[v]) - out_rem[v]);
            net.push_flow(self.in_handles[v], i64::from(in_quota[v]) - in_rem[v]);
        }

        let achieved = greedy + net.max_flow(s, t);
        record_flow_solve(greedy, achieved);
        if achieved != required {
            return Err(DegreeConstraintError { achieved, required });
        }
        Ok(self
            .handles
            .iter()
            .map(|&h| self.net.flow(h) == 1)
            .collect())
    }
}

/// Peels successive exact degree-constrained subgraphs from one arc set.
///
/// The even-capacity solver extracts `Δ'` subgraphs from a *shrinking* arc
/// set — the arcs selected in round `r` vanish from rounds `r+1..`. The
/// peeler exploits that the Fig. 3 topology never changes: it builds the
/// flow network (and its CSR index) **once**, and each [`DegreePeeler::peel`]
/// only resets residual capacities, warm-starts with a greedy maximal
/// selection, lets Dinic augment the deficit, and then *disables* the
/// selected unit arcs (capacity 0) so later rounds skip them. No per-round
/// allocation, no per-round CSR counting sort.
///
/// # Example
///
/// ```
/// use dmig_flow::DegreePeeler;
///
/// // Two oriented 2-cycles; quota 1 in/out per node per round peels one
/// // cycle's worth of arcs each time, exhausting the arc set in 2 rounds.
/// let arcs = [(0, 1), (1, 0), (0, 1), (1, 0)];
/// let mut peeler = DegreePeeler::new(2, &arcs, &[1, 1], &[1, 1]);
/// let first = peeler.peel()?;
/// assert_eq!(first.len(), 2);
/// let second = peeler.peel()?;
/// assert_eq!(second.len(), 2);
/// assert_eq!(peeler.remaining(), 0);
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DegreePeeler {
    net: FlowNetwork,
    arcs: Vec<(usize, usize)>,
    arc_handles: Vec<EdgeHandle>,
    out_handles: Vec<EdgeHandle>,
    in_handles: Vec<EdgeHandle>,
    out_quota: Vec<i64>,
    in_quota: Vec<i64>,
    active: Vec<bool>,
    remaining: usize,
    required: i64,
    // Greedy scratch, reused across peels.
    out_rem: Vec<i64>,
    in_rem: Vec<i64>,
}

impl DegreePeeler {
    /// Builds the Fig. 3 network once for `arcs` with per-node quotas.
    ///
    /// # Panics
    ///
    /// Panics if quota slices are shorter than `num_nodes` or an arc
    /// endpoint is out of range.
    #[must_use]
    pub fn new(
        num_nodes: usize,
        arcs: &[(usize, usize)],
        out_quota: &[u32],
        in_quota: &[u32],
    ) -> Self {
        assert!(
            out_quota.len() >= num_nodes,
            "out_quota shorter than node count"
        );
        assert!(
            in_quota.len() >= num_nodes,
            "in_quota shorter than node count"
        );
        let (s, t, out_base, in_base) = (0, 1, 2, 2 + num_nodes);
        let mut net = FlowNetwork::with_capacity(2 + 2 * num_nodes, 2 * num_nodes + arcs.len());
        let mut required = 0i64;
        let mut out_handles = Vec::with_capacity(num_nodes);
        let mut in_handles = Vec::with_capacity(num_nodes);
        for v in 0..num_nodes {
            out_handles.push(net.add_edge(s, out_base + v, i64::from(out_quota[v])));
            in_handles.push(net.add_edge(in_base + v, t, i64::from(in_quota[v])));
            required += i64::from(out_quota[v]);
        }
        let arc_handles: Vec<EdgeHandle> = arcs
            .iter()
            .map(|&(u, v)| {
                assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
                net.add_edge(out_base + u, in_base + v, 1)
            })
            .collect();
        DegreePeeler {
            net,
            arcs: arcs.to_vec(),
            arc_handles,
            out_handles,
            in_handles,
            out_quota: out_quota[..num_nodes]
                .iter()
                .map(|&q| i64::from(q))
                .collect(),
            in_quota: in_quota[..num_nodes]
                .iter()
                .map(|&q| i64::from(q))
                .collect(),
            active: vec![true; arcs.len()],
            remaining: arcs.len(),
            required,
            out_rem: vec![0; num_nodes],
            in_rem: vec![0; num_nodes],
        }
    }

    /// Arcs not yet peeled away.
    #[inline]
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Extracts one exact degree-constrained subgraph from the still-active
    /// arcs and removes the selected arcs from future peels.
    ///
    /// Returns the selected positions (indices into the original `arcs`
    /// slice), ascending.
    ///
    /// # Errors
    ///
    /// Returns [`DegreeConstraintError`] when the active arcs admit no
    /// exact selection; the peeler state is then unspecified (no arcs are
    /// removed, but residuals are mid-solve).
    pub fn peel(&mut self) -> Result<Vec<usize>, DegreeConstraintError> {
        let (s, t) = (0, 1);
        self.net.reset();

        // Greedy warm start over the active arcs (disabled arcs have
        // original capacity 0, so pushing through them is impossible).
        self.out_rem.copy_from_slice(&self.out_quota);
        self.in_rem.copy_from_slice(&self.in_quota);
        let mut greedy = 0i64;
        for (pos, &(u, v)) in self.arcs.iter().enumerate() {
            if self.active[pos] && self.out_rem[u] > 0 && self.in_rem[v] > 0 {
                self.out_rem[u] -= 1;
                self.in_rem[v] -= 1;
                self.net.push_flow(self.arc_handles[pos], 1);
                greedy += 1;
            }
        }
        for v in 0..self.out_handles.len() {
            self.net
                .push_flow(self.out_handles[v], self.out_quota[v] - self.out_rem[v]);
            self.net
                .push_flow(self.in_handles[v], self.in_quota[v] - self.in_rem[v]);
        }

        let achieved = greedy + self.net.max_flow(s, t);
        record_flow_solve(greedy, achieved);
        if achieved != self.required {
            return Err(DegreeConstraintError {
                achieved,
                required: self.required,
            });
        }

        let mut selected = Vec::new();
        for pos in 0..self.arcs.len() {
            if self.active[pos] && self.net.flow(self.arc_handles[pos]) == 1 {
                selected.push(pos);
                self.active[pos] = false;
                self.remaining -= 1;
                self.net.set_capacity(self.arc_handles[pos], 0);
            }
        }
        Ok(selected)
    }
}

/// Counter bookkeeping shared by [`DegreeSubgraphExtractor::extract`] and
/// [`DegreePeeler::peel`]: one flow solve, with the units satisfied by the
/// greedy warm start counted as hits and the deficit Dinic had to augment
/// as misses.
fn record_flow_solve(greedy: i64, achieved: i64) {
    dmig_obs::counter_add(dmig_obs::keys::FLOW_SOLVES, 1);
    dmig_obs::counter_add(dmig_obs::keys::WARM_START_HITS, greedy.max(0) as u64);
    dmig_obs::counter_add(
        dmig_obs::keys::WARM_START_MISSES,
        (achieved - greedy).max(0) as u64,
    );
}

/// Number of max-flow solves [`quota_round_partition`] performs for a given
/// round count: odd levels peel one subgraph by flow, even levels split.
///
/// `E(1) = 0`, `E(2k+1) = 1 + E(2k)`, `E(2k) = 2·E(k)` — so a power of two
/// needs no flow at all and the count is `O(rounds)` worst case but tiny in
/// practice. `perf_report` and the observability tests assert the
/// [`flow_solves`](dmig_obs::keys::FLOW_SOLVES) counter against this.
#[must_use]
pub fn quota_flow_solves(rounds: usize) -> u64 {
    match rounds {
        0 | 1 => 0,
        r if r % 2 == 1 => 1 + quota_flow_solves(r - 1),
        r => 2 * quota_flow_solves(r / 2),
    }
}

/// Number of Euler splits [`quota_round_partition`] performs for a given
/// round count (`S(1) = 0`, `S(2k+1) = S(2k)`, `S(2k) = 1 + 2·S(k)`);
/// the counterpart of [`quota_flow_solves`] for the
/// [`euler_splits`](dmig_obs::keys::EULER_SPLITS) counter.
#[must_use]
pub fn quota_euler_splits(rounds: usize) -> u64 {
    match rounds {
        0 | 1 => 0,
        r if r % 2 == 1 => quota_euler_splits(r - 1),
        r => 1 + 2 * quota_euler_splits(r / 2),
    }
}

/// Partitions `arcs` into `rounds` groups, each meeting the quotas exactly.
///
/// Preconditions (guaranteed by the even solver's padding + Euler
/// orientation, verified here in `O(arcs)`): node `v` is the tail of
/// exactly `out_quota[v] · rounds` arcs and the head of exactly
/// `in_quota[v] · rounds` arcs.
///
/// This is the Kariv–Gabow divide-and-conquer view of the paper's step 4:
/// when the round count is **even**, the bipartite multigraph on
/// out-copies × in-copies has all degrees even, so an *Euler split* —
/// walking closed trails and assigning arcs alternately to two halves —
/// divides every degree exactly in two (every closed trail in a bipartite
/// graph has even length), yielding two independent subproblems with half
/// the rounds, in linear time. When the count is **odd**, one exact
/// subgraph is peeled by max flow. Flow therefore runs `O(log rounds)`
/// times instead of `rounds` times, on geometrically shrinking arc sets.
///
/// Returns `rounds` vectors of positions into `arcs` (a partition of
/// `0..arcs.len()`), deterministically.
///
/// # Errors
///
/// Returns [`DegreeConstraintError`] if the degree preconditions fail or an
/// odd-level peel finds no exact subgraph (impossible on inputs meeting the
/// preconditions).
///
/// # Panics
///
/// Panics if quota slices are shorter than `num_nodes` or an arc endpoint
/// is out of range.
///
/// # Example
///
/// ```
/// use dmig_flow::quota_round_partition;
///
/// // 3 cyclic shifts on 4 nodes: out/in-degree 3 per node, quota 1 per
/// // round over 3 rounds.
/// let mut arcs = Vec::new();
/// for k in 1..=3 {
///     for u in 0..4 {
///         arcs.push((u, (u + k) % 4));
///     }
/// }
/// let rounds = quota_round_partition(4, &arcs, &[1; 4], &[1; 4], 3)?;
/// assert_eq!(rounds.len(), 3);
/// assert_eq!(rounds.iter().map(Vec::len).sum::<usize>(), arcs.len());
/// # Ok::<(), dmig_flow::DegreeConstraintError>(())
/// ```
pub fn quota_round_partition(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
    rounds: usize,
) -> Result<Vec<Vec<usize>>, DegreeConstraintError> {
    assert!(
        out_quota.len() >= num_nodes,
        "out_quota shorter than node count"
    );
    assert!(
        in_quota.len() >= num_nodes,
        "in_quota shorter than node count"
    );
    let _span = dmig_obs::span_labeled("quota_round_partition", || {
        format!("rounds={rounds} arcs={}", arcs.len())
    });
    if rounds == 0 {
        return if arcs.is_empty() {
            Ok(Vec::new())
        } else {
            Err(DegreeConstraintError {
                achieved: arcs.len() as i64,
                required: 0,
            })
        };
    }

    // Verify the regularity preconditions; the Euler splits silently assume
    // them, so a violation must be caught here.
    let mut out_deg = vec![0i64; num_nodes];
    let mut in_deg = vec![0i64; num_nodes];
    for &(u, v) in arcs {
        assert!(u < num_nodes && v < num_nodes, "arc endpoint out of range");
        out_deg[u] += 1;
        in_deg[v] += 1;
    }
    let r = rounds as i64;
    for v in 0..num_nodes {
        for (deg, quota) in [(out_deg[v], out_quota[v]), (in_deg[v], in_quota[v])] {
            let required = i64::from(quota) * r;
            if deg != required {
                return Err(DegreeConstraintError {
                    achieved: deg,
                    required,
                });
            }
        }
    }

    let mut state = PartitionState {
        arcs,
        num_nodes,
        out_quota,
        in_quota,
        extractor: DegreeSubgraphExtractor::with_capacity(num_nodes, arcs.len()),
        rounds_out: Vec::with_capacity(rounds),
        offsets: Vec::new(),
        cursor: Vec::new(),
        half_to: Vec::new(),
        half_arc: Vec::new(),
        used: Vec::new(),
        sub_arcs: Vec::new(),
    };
    state.solve((0..arcs.len()).collect(), rounds, 0)?;
    Ok(state.rounds_out)
}

/// Recursion state + scratch buffers for [`quota_round_partition`].
struct PartitionState<'a> {
    arcs: &'a [(usize, usize)],
    num_nodes: usize,
    out_quota: &'a [u32],
    in_quota: &'a [u32],
    extractor: DegreeSubgraphExtractor,
    rounds_out: Vec<Vec<usize>>,
    // Euler-split scratch, reused across levels.
    offsets: Vec<usize>,
    cursor: Vec<usize>,
    half_to: Vec<usize>,
    half_arc: Vec<usize>,
    used: Vec<bool>,
    // Odd-level extraction scratch.
    sub_arcs: Vec<(usize, usize)>,
}

impl PartitionState<'_> {
    fn solve(
        &mut self,
        subset: Vec<usize>,
        rounds: usize,
        depth: u64,
    ) -> Result<(), DegreeConstraintError> {
        dmig_obs::gauge_max(dmig_obs::keys::QUOTA_MAX_DEPTH, depth);
        if rounds == 1 {
            self.rounds_out.push(subset);
            return Ok(());
        }
        if rounds % 2 == 1 {
            // Peel one exact subgraph by max flow, leaving an even count.
            self.sub_arcs.clear();
            self.sub_arcs.extend(subset.iter().map(|&p| self.arcs[p]));
            let selection = self.extractor.extract(
                self.num_nodes,
                &self.sub_arcs,
                self.out_quota,
                self.in_quota,
            )?;
            let mut round = Vec::new();
            let mut rest = Vec::with_capacity(subset.len());
            for (pos, selected) in subset.into_iter().zip(selection) {
                if selected {
                    round.push(pos);
                } else {
                    rest.push(pos);
                }
            }
            self.rounds_out.push(round);
            return self.solve(rest, rounds - 1, depth + 1);
        }
        dmig_obs::counter_add(dmig_obs::keys::EULER_SPLITS, 1);
        let (a, b) = self.euler_split(&subset);
        self.solve(a, rounds / 2, depth + 1)?;
        self.solve(b, rounds / 2, depth + 1)
    }

    /// Splits the subset into two halves in which every out/in-copy keeps
    /// exactly half its degree: walk closed trails of the bipartite
    /// multigraph (out-copy `u` ↔ in-copy `v` per arc), assigning arcs
    /// alternately. All degrees are even (degree = quota · even rounds) and
    /// all closed trails have even length (bipartite), so the alternation
    /// balances at every vertex.
    fn euler_split(&mut self, subset: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let n2 = 2 * self.num_nodes;
        let m = subset.len();

        // CSR over the 2m half-edges: endpoint u for out-copies, n+v for
        // in-copies.
        self.offsets.clear();
        self.offsets.resize(n2 + 1, 0);
        for &pos in subset {
            let (u, v) = self.arcs[pos];
            self.offsets[u + 1] += 1;
            self.offsets[self.num_nodes + v + 1] += 1;
        }
        for i in 0..n2 {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.half_to.clear();
        self.half_to.resize(2 * m, 0);
        self.half_arc.clear();
        self.half_arc.resize(2 * m, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n2]);
        for (local, &pos) in subset.iter().enumerate() {
            let (u, v) = self.arcs[pos];
            let (a, b) = (u, self.num_nodes + v);
            self.half_to[self.cursor[a]] = b;
            self.half_arc[self.cursor[a]] = local;
            self.cursor[a] += 1;
            self.half_to[self.cursor[b]] = a;
            self.half_arc[self.cursor[b]] = local;
            self.cursor[b] += 1;
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n2]);
        self.used.clear();
        self.used.resize(m, false);

        let mut left = Vec::with_capacity(m / 2);
        let mut right = Vec::with_capacity(m / 2);
        for start in 0..n2 {
            // Walk closed trails from `start` until its arcs are exhausted.
            // The walk can only get stuck at `start` (every other vertex on
            // the trail has an odd number of used half-edges, hence an
            // unused one).
            let mut v = start;
            let mut to_left = true;
            loop {
                while self.cursor[v] < self.offsets[v + 1]
                    && self.used[self.half_arc[self.cursor[v]]]
                {
                    self.cursor[v] += 1;
                }
                if self.cursor[v] == self.offsets[v + 1] {
                    debug_assert_eq!(v, start, "Euler walk stuck away from its start");
                    break;
                }
                let i = self.cursor[v];
                let local = self.half_arc[i];
                self.used[local] = true;
                if to_left {
                    left.push(subset[local]);
                } else {
                    right.push(subset[local]);
                }
                to_left = !to_left;
                v = self.half_to[i];
            }
        }
        debug_assert_eq!(
            left.len(),
            right.len(),
            "bipartite Euler split must balance"
        );
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_quotas(
        num_nodes: usize,
        arcs: &[(usize, usize)],
        sel: &[bool],
        out_quota: &[u32],
        in_quota: &[u32],
    ) {
        let mut out = vec![0u32; num_nodes];
        let mut inn = vec![0u32; num_nodes];
        for (i, &(u, v)) in arcs.iter().enumerate() {
            if sel[i] {
                out[u] += 1;
                inn[v] += 1;
            }
        }
        assert_eq!(out, out_quota[..num_nodes]);
        assert_eq!(inn, in_quota[..num_nodes]);
    }

    #[test]
    fn cycle_forced_selection() {
        let arcs = [(0, 1), (1, 2), (2, 0)];
        let sel = exact_degree_subgraph(3, &arcs, &[1; 3], &[1; 3]).unwrap();
        assert_eq!(sel, vec![true; 3]);
    }

    #[test]
    fn zero_quotas_select_nothing() {
        let arcs = [(0, 1), (1, 0)];
        let sel = exact_degree_subgraph(2, &arcs, &[0, 0], &[0, 0]).unwrap();
        assert_eq!(sel, vec![false, false]);
    }

    #[test]
    fn parallel_arcs_pick_exact_count() {
        let arcs = [(0, 1), (0, 1), (0, 1), (0, 1)];
        let sel = exact_degree_subgraph(2, &arcs, &[2, 0], &[0, 2]).unwrap();
        assert_eq!(sel.iter().filter(|&&b| b).count(), 2);
        check_quotas(2, &arcs, &sel, &[2, 0], &[0, 2]);
    }

    #[test]
    fn infeasible_reports_shortfall() {
        // Node 1 must emit 1 arc but has none.
        let arcs = [(0, 1)];
        let err = exact_degree_subgraph(2, &arcs, &[0, 1], &[1, 0]).unwrap_err();
        assert_eq!(err.achieved, 0);
        assert_eq!(err.required, 1);
        assert!(err.to_string().contains("max flow 0"));
    }

    #[test]
    fn doubled_euler_style_instance() {
        // Every node out-quota 1 / in-quota 1, arcs forming two disjoint
        // 2-cycles plus chords; a valid selection exists.
        let arcs = [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0)];
        let sel = exact_degree_subgraph(4, &arcs, &[1; 4], &[1; 4]).unwrap();
        check_quotas(4, &arcs, &sel, &[1; 4], &[1; 4]);
    }

    #[test]
    fn heterogeneous_quotas() {
        // Node 0 sends 2, nodes 1 and 2 each receive 1.
        let arcs = [(0, 1), (0, 1), (0, 2)];
        let sel = exact_degree_subgraph(3, &arcs, &[2, 0, 0], &[0, 1, 1]).unwrap();
        check_quotas(3, &arcs, &sel, &[2, 0, 0], &[0, 1, 1]);
    }

    #[test]
    fn self_arc_allowed() {
        // An Euler orientation of a self-loop yields an arc v -> v.
        let arcs = [(0, 0)];
        let sel = exact_degree_subgraph(1, &arcs, &[1], &[1]).unwrap();
        assert_eq!(sel, vec![true]);
    }

    #[test]
    #[should_panic(expected = "arc endpoint out of range")]
    fn arc_out_of_range_panics() {
        let _ = exact_degree_subgraph(1, &[(0, 3)], &[1], &[1]);
    }

    #[test]
    fn peeler_exhausts_regular_arc_set() {
        // Out/in-degree 3 per node (three cyclic shifts on 5 nodes); quota
        // 1 per round peels a permutation each time, 3 rounds total.
        let n = 5;
        let mut arcs = Vec::new();
        for k in 1..=3 {
            for u in 0..n {
                arcs.push((u, (u + k) % n));
            }
        }
        let quota = vec![1u32; n];
        let mut peeler = DegreePeeler::new(n, &arcs, &quota, &quota);
        let mut seen = vec![false; arcs.len()];
        for _ in 0..3 {
            let sel = peeler.peel().unwrap();
            assert_eq!(sel.len(), n);
            let mut sel_mask = vec![false; arcs.len()];
            for &pos in &sel {
                assert!(!seen[pos], "arc peeled twice");
                seen[pos] = true;
                sel_mask[pos] = true;
            }
            check_quotas(n, &arcs, &sel_mask, &quota, &quota);
        }
        assert_eq!(peeler.remaining(), 0);
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn peeler_matches_extractor_per_round() {
        // Peeling must stay feasible round by round exactly like the
        // rebuild-from-scratch extractor does on the same shrinking arc set.
        let n = 4;
        let arcs = [
            (0, 1),
            (1, 0),
            (2, 3),
            (3, 2),
            (0, 2),
            (2, 0),
            (1, 3),
            (3, 1),
        ];
        let quota = vec![1u32; n];
        let mut peeler = DegreePeeler::new(n, &arcs, &quota, &quota);
        let mut live: Vec<usize> = (0..arcs.len()).collect();
        for _ in 0..2 {
            let sel = peeler.peel().unwrap();
            // Reference: fresh extraction over the same remaining arcs.
            let remaining_arcs: Vec<(usize, usize)> = live.iter().map(|&p| arcs[p]).collect();
            let ref_sel = exact_degree_subgraph(n, &remaining_arcs, &quota, &quota).unwrap();
            assert_eq!(sel.len(), ref_sel.iter().filter(|&&b| b).count());
            live.retain(|p| !sel.contains(p));
        }
        assert_eq!(peeler.remaining(), 0);
    }

    #[test]
    fn flow_solve_predictors_match_recursion() {
        // E(r): odd levels peel by flow, even levels halve.
        assert_eq!(
            (1..=8).map(quota_flow_solves).collect::<Vec<_>>(),
            [0, 0, 1, 0, 1, 2, 3, 0]
        );
        // S(r): splits double down the even halvings.
        assert_eq!(
            (1..=8).map(quota_euler_splits).collect::<Vec<_>>(),
            [0, 1, 1, 3, 3, 3, 3, 7]
        );
    }

    #[test]
    fn peeler_reports_infeasible() {
        // One arc, but node 1 must also emit one: infeasible immediately.
        let mut peeler = DegreePeeler::new(2, &[(0, 1)], &[1, 1], &[1, 1]);
        let err = peeler.peel().unwrap_err();
        assert_eq!(err.required, 2);
    }
}
