//! A directed flow network with Dinic's max-flow algorithm.

use core::fmt;

/// Opaque handle to a directed edge added to a [`FlowNetwork`].
///
/// Use it after [`FlowNetwork::max_flow`] to read back how much flow the
/// edge carries ([`FlowNetwork::flow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeHandle(usize);

#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    /// Remaining residual capacity.
    cap: i64,
}

/// A directed flow network over dense vertex indices `0..n`.
///
/// Max flow is computed with Dinic's algorithm: `O(V²·E)` in general and
/// `O(E·√V)` on the unit-capacity bipartite networks this workspace mostly
/// builds — comfortably polynomial, as Lemma 4.1 of the paper requires.
///
/// # Example
///
/// ```
/// use dmig_flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// let (s, a, b, t) = (0, 1, 2, 3);
/// net.add_edge(s, a, 3);
/// net.add_edge(s, b, 2);
/// net.add_edge(a, t, 2);
/// net.add_edge(b, t, 3);
/// net.add_edge(a, b, 5);
/// assert_eq!(net.max_flow(s, t), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Forward/backward arcs interleaved: arc `2k` is the forward arc of the
    /// `k`-th added edge, arc `2k+1` its residual twin.
    arcs: Vec<Arc>,
    /// Original capacity of each forward arc (for flow read-back).
    original_cap: Vec<i64>,
    adjacency: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork { arcs: Vec::new(), original_cap: Vec::new(), adjacency: vec![Vec::new(); n] }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed edges added (residual twins not counted).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Adds another vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Adds a directed edge `from → to` with capacity `cap ≥ 0` and returns
    /// a handle for flow read-back.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeHandle {
        let n = self.num_vertices();
        assert!(from < n && to < n, "flow edge endpoint out of range");
        assert!(cap >= 0, "flow capacity must be non-negative");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adjacency[from].push(id);
        self.adjacency[to].push(id + 1);
        self.original_cap.push(cap);
        EdgeHandle(id / 2)
    }

    /// Flow currently carried by the edge behind `handle` (meaningful after
    /// [`FlowNetwork::max_flow`]).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this network.
    #[must_use]
    pub fn flow(&self, handle: EdgeHandle) -> i64 {
        let fwd = handle.0 * 2;
        self.original_cap[handle.0] - self.arcs[fwd].cap
    }

    /// Computes the maximum `s → t` flow, mutating residual capacities.
    ///
    /// Calling it again continues from the current residual state, so the
    /// usual pattern is one call per network. `s == t` yields 0.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.num_vertices();
        assert!(s < n && t < n, "source/sink out of range");
        if s == t {
            return 0;
        }
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS: build level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &a in &self.adjacency[v] {
                    let arc = &self.arcs[a];
                    if arc.cap > 0 && level[arc.to] < 0 {
                        level[arc.to] = level[v] + 1;
                        queue.push_back(arc.to);
                    }
                }
            }
            if level[t] < 0 {
                return total;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            // DFS blocking flow.
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, v: usize, t: usize, limit: i64, level: &[i32], iter: &mut [usize]) -> i64 {
        if v == t {
            return limit;
        }
        while iter[v] < self.adjacency[v].len() {
            let a = self.adjacency[v][iter[v]];
            let (to, cap) = {
                let arc = &self.arcs[a];
                (arc.to, arc.cap)
            };
            if cap > 0 && level[to] == level[v] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.arcs[a].cap -= pushed;
                    self.arcs[a ^ 1].cap += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// Returns the source side of a minimum `s`–`t` cut: the set of vertices
    /// reachable from `s` in the residual graph.
    ///
    /// Call after [`FlowNetwork::max_flow`]; before it, the whole graph is
    /// typically reachable.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_vertices();
        assert!(s < n, "source out of range");
        let mut reach = vec![false; n];
        reach[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &a in &self.adjacency[v] {
                let arc = &self.arcs[a];
                if arc.cap > 0 && !reach[arc.to] {
                    reach[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        reach
    }
}

impl fmt::Display for FlowNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow network(V={}, E={})", self.num_vertices(), self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_no_path() {
        let mut net = FlowNetwork::new(2);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(e), 7);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::new(1);
        assert_eq!(net.max_flow(0, 0), 0);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn flow_conservation_and_capacity() {
        // Random-ish fixed network; verify conservation at internal nodes.
        let mut net = FlowNetwork::new(6);
        let edges = [
            (0usize, 1usize, 10i64),
            (0, 2, 10),
            (1, 3, 4),
            (1, 4, 8),
            (2, 4, 9),
            (3, 5, 10),
            (4, 3, 6),
            (4, 5, 10),
        ];
        let handles: Vec<_> = edges.iter().map(|&(u, v, c)| (net.add_edge(u, v, c), u, v, c)).collect();
        let value = net.max_flow(0, 5);
        assert_eq!(value, 19);
        let mut net_in = [0i64; 6];
        let mut net_out = [0i64; 6];
        for (h, u, v, c) in handles {
            let f = net.flow(h);
            assert!((0..=c).contains(&f), "flow within capacity");
            net_out[u] += f;
            net_in[v] += f;
        }
        for v in 1..5 {
            assert_eq!(net_in[v], net_out[v], "conservation at {v}");
        }
        assert_eq!(net_out[0] - net_in[0], value);
        assert_eq!(net_in[5] - net_out[5], value);
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut net = FlowNetwork::new(4);
        let h = [
            net.add_edge(0, 1, 3),
            net.add_edge(0, 2, 2),
            net.add_edge(1, 3, 2),
            net.add_edge(2, 3, 3),
        ];
        let caps = [3i64, 2, 2, 3];
        let ends = [(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        let value = net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[3]);
        let cut: i64 = ends
            .iter()
            .zip(caps.iter())
            .filter(|(&(u, v), _)| side[u] && !side[v])
            .map(|(_, &c)| c)
            .sum();
        assert_eq!(cut, value);
        let _ = h;
    }

    #[test]
    fn bipartite_matching_via_unit_capacities() {
        // 3x3 bipartite: left {1,2,3}, right {4,5,6}; perfect matching exists.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (0, 7);
        for l in 1..=3 {
            net.add_edge(s, l, 1);
        }
        for r in 4..=6 {
            net.add_edge(r, t, 1);
        }
        for (l, r) in [(1, 4), (1, 5), (2, 4), (3, 6)] {
            net.add_edge(l, r, 1);
        }
        assert_eq!(net.max_flow(s, t), 3);
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 2), 0);
        assert_eq!(net.flow(e), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 1, -1);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_edge_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 5, 1);
    }

    #[test]
    fn add_vertex_grows_network() {
        let mut net = FlowNetwork::new(0);
        let a = net.add_vertex();
        let b = net.add_vertex();
        net.add_edge(a, b, 4);
        assert_eq!(net.max_flow(a, b), 4);
        assert_eq!(net.to_string(), "flow network(V=2, E=1)");
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn long_chain_with_bottleneck() {
        let n = 50;
        let mut net = FlowNetwork::new(n);
        for v in 0..n - 1 {
            let cap = if v == 25 { 3 } else { 100 };
            net.add_edge(v, v + 1, cap);
        }
        assert_eq!(net.max_flow(0, n - 1), 3);
        let side = net.min_cut_source_side(0);
        assert!(side[25] && !side[26]);
    }
}
