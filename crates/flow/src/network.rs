//! A directed flow network with Dinic's max-flow algorithm.
//!
//! The adjacency structure is a flat CSR (compressed sparse row) index
//! built lazily from the arc list: one counting sort groups arc ids by
//! tail vertex into a single contiguous array, so the BFS/DFS inner loops
//! walk cache-friendly slices instead of chasing one heap allocation per
//! vertex. The index and all traversal scratch (levels, DFS cursors, BFS
//! queue) persist inside the network, so repeated [`FlowNetwork::max_flow`]
//! calls — and repeated [`FlowNetwork::clear`]/rebuild cycles, the hot
//! pattern of the even-capacity solver's per-round subgraph extraction —
//! allocate nothing after the first solve.

use core::fmt;

/// Opaque handle to a directed edge added to a [`FlowNetwork`].
///
/// Use it after [`FlowNetwork::max_flow`] to read back how much flow the
/// edge carries ([`FlowNetwork::flow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeHandle(usize);

/// A directed flow network over dense vertex indices `0..n`.
///
/// Max flow is computed with Dinic's algorithm: `O(V²·E)` in general and
/// `O(E·√V)` on the unit-capacity bipartite networks this workspace mostly
/// builds — comfortably polynomial, as Lemma 4.1 of the paper requires.
///
/// # Example
///
/// ```
/// use dmig_flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// let (s, a, b, t) = (0, 1, 2, 3);
/// net.add_edge(s, a, 3);
/// net.add_edge(s, b, 2);
/// net.add_edge(a, t, 2);
/// net.add_edge(b, t, 3);
/// net.add_edge(a, b, 5);
/// assert_eq!(net.max_flow(s, t), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    num_vertices: usize,
    /// Head vertex per arc; arc `2k` is the forward arc of the `k`-th added
    /// edge, arc `2k+1` its residual twin.
    arc_to: Vec<usize>,
    /// Remaining residual capacity per arc.
    arc_cap: Vec<i64>,
    /// Tail vertex per arc (drives the CSR build).
    arc_tail: Vec<usize>,
    /// Original capacity of each forward arc (for flow read-back).
    original_cap: Vec<i64>,
    /// CSR index: arc ids grouped by tail, insertion order preserved.
    csr_offsets: Vec<usize>,
    csr_arcs: Vec<usize>,
    csr_valid: bool,
    // Traversal scratch, reused across max_flow calls.
    level: Vec<i32>,
    cursor: Vec<usize>,
    queue: Vec<usize>,
}

/// Stable counting sort of arc ids by tail vertex.
fn build_csr(
    num_vertices: usize,
    arc_tail: &[usize],
    offsets: &mut Vec<usize>,
    arcs: &mut Vec<usize>,
) {
    offsets.clear();
    offsets.resize(num_vertices + 1, 0);
    for &tail in arc_tail {
        offsets[tail + 1] += 1;
    }
    for v in 0..num_vertices {
        offsets[v + 1] += offsets[v];
    }
    arcs.clear();
    arcs.resize(arc_tail.len(), 0);
    let mut fill = offsets.clone();
    for (a, &tail) in arc_tail.iter().enumerate() {
        arcs[fill[tail]] = a;
        fill[tail] += 1;
    }
}

/// Dinic blocking-flow DFS over the CSR index (free function so the split
/// field borrows survive the recursion).
#[allow(clippy::too_many_arguments)]
fn blocking_dfs(
    arc_to: &[usize],
    arc_cap: &mut [i64],
    csr_offsets: &[usize],
    csr_arcs: &[usize],
    level: &[i32],
    cursor: &mut [usize],
    v: usize,
    t: usize,
    limit: i64,
) -> i64 {
    if v == t {
        return limit;
    }
    while cursor[v] < csr_offsets[v + 1] {
        let a = csr_arcs[cursor[v]];
        let (to, cap) = (arc_to[a], arc_cap[a]);
        if cap > 0 && level[to] == level[v] + 1 {
            let pushed = blocking_dfs(
                arc_to,
                arc_cap,
                csr_offsets,
                csr_arcs,
                level,
                cursor,
                to,
                t,
                limit.min(cap),
            );
            if pushed > 0 {
                arc_cap[a] -= pushed;
                arc_cap[a ^ 1] += pushed;
                return pushed;
            }
        }
        cursor[v] += 1;
    }
    0
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            num_vertices: n,
            ..FlowNetwork::default()
        }
    }

    /// Creates a network with `n` vertices and room for `edges` edges, so
    /// edge insertion never reallocates.
    #[must_use]
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        FlowNetwork {
            num_vertices: n,
            arc_to: Vec::with_capacity(2 * edges),
            arc_cap: Vec::with_capacity(2 * edges),
            arc_tail: Vec::with_capacity(2 * edges),
            original_cap: Vec::with_capacity(edges),
            csr_offsets: Vec::with_capacity(n + 1),
            csr_arcs: Vec::with_capacity(2 * edges),
            ..FlowNetwork::default()
        }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges added (residual twins not counted).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.original_cap.len()
    }

    /// Adds another vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.csr_valid = false;
        self.num_vertices += 1;
        self.num_vertices - 1
    }

    /// Empties the network down to `n` isolated vertices, retaining every
    /// internal allocation so the next build reuses the same buffers.
    ///
    /// This is the cheap path for solving a *sequence* of flow problems
    /// with one network, e.g. the Δ′ per-round subgraph extractions of the
    /// even-capacity solver.
    pub fn clear(&mut self, n: usize) {
        self.num_vertices = n;
        self.arc_to.clear();
        self.arc_cap.clear();
        self.arc_tail.clear();
        self.original_cap.clear();
        self.csr_valid = false;
    }

    /// Restores every edge to its original capacity (zero flow), keeping
    /// the topology and the CSR index intact.
    ///
    /// After a `reset()` the network answers [`FlowNetwork::max_flow`]
    /// exactly as a freshly built copy would.
    pub fn reset(&mut self) {
        for (k, &cap) in self.original_cap.iter().enumerate() {
            self.arc_cap[2 * k] = cap;
            self.arc_cap[2 * k + 1] = 0;
        }
    }

    /// Sets the capacity of an existing edge, zeroing its flow.
    ///
    /// The topology (and therefore the CSR index) is untouched — only the
    /// capacity changes. Setting a capacity to 0 disables the edge for all
    /// later [`FlowNetwork::max_flow`]/[`FlowNetwork::reset`] cycles, which
    /// is how the peeling extractor removes the arcs selected in one round
    /// from every later round without rebuilding the network.
    ///
    /// # Panics
    ///
    /// Panics if the handle is out of range or `cap < 0`.
    pub fn set_capacity(&mut self, handle: EdgeHandle, cap: i64) {
        assert!(cap >= 0, "flow capacity must be non-negative");
        self.original_cap[handle.0] = cap;
        self.arc_cap[2 * handle.0] = cap;
        self.arc_cap[2 * handle.0 + 1] = 0;
    }

    /// Remaining residual capacity on the forward arc of `handle`.
    #[inline]
    #[must_use]
    pub fn residual(&self, handle: EdgeHandle) -> i64 {
        self.arc_cap[2 * handle.0]
    }

    /// Forces `amount` units of flow through `handle`'s forward arc,
    /// adjusting its residual pair and nothing else.
    ///
    /// This is the warm-start primitive: a caller that already knows a
    /// feasible partial flow (e.g. a greedy matching through a bipartite
    /// network) pushes it along complete `s → t` paths before calling
    /// [`FlowNetwork::max_flow`], which then only augments the remainder —
    /// the final flow is still maximal, by the residual-graph argument.
    /// Pushing along anything but complete `s → t` paths leaves the network
    /// violating conservation and later results are meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or exceeds the remaining residual
    /// capacity.
    pub fn push_flow(&mut self, handle: EdgeHandle, amount: i64) {
        let a = 2 * handle.0;
        assert!(
            (0..=self.arc_cap[a]).contains(&amount),
            "push_flow exceeds residual capacity"
        );
        self.arc_cap[a] -= amount;
        self.arc_cap[a ^ 1] += amount;
    }

    /// Adds a directed edge `from → to` with capacity `cap ≥ 0` and returns
    /// a handle for flow read-back.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `cap < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeHandle {
        let n = self.num_vertices;
        assert!(from < n && to < n, "flow edge endpoint out of range");
        assert!(cap >= 0, "flow capacity must be non-negative");
        self.csr_valid = false;
        self.arc_to.push(to);
        self.arc_cap.push(cap);
        self.arc_tail.push(from);
        self.arc_to.push(from);
        self.arc_cap.push(0);
        self.arc_tail.push(to);
        self.original_cap.push(cap);
        EdgeHandle(self.original_cap.len() - 1)
    }

    /// Flow currently carried by the edge behind `handle` (meaningful after
    /// [`FlowNetwork::max_flow`]).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this network.
    #[must_use]
    pub fn flow(&self, handle: EdgeHandle) -> i64 {
        self.original_cap[handle.0] - self.arc_cap[handle.0 * 2]
    }

    fn ensure_csr(&mut self) {
        if !self.csr_valid {
            build_csr(
                self.num_vertices,
                &self.arc_tail,
                &mut self.csr_offsets,
                &mut self.csr_arcs,
            );
            self.csr_valid = true;
        }
    }

    /// Computes the maximum `s → t` flow, mutating residual capacities.
    ///
    /// Calling it again continues from the current residual state, so the
    /// usual pattern is one call per network (or per [`FlowNetwork::reset`]).
    /// `s == t` yields 0.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.num_vertices;
        assert!(s < n && t < n, "source/sink out of range");
        if s == t {
            return 0;
        }
        self.ensure_csr();
        let _watch = dmig_obs::stopwatch(dmig_obs::keys::DINIC_MAX_FLOW_NS);
        let FlowNetwork {
            arc_to,
            arc_cap,
            csr_offsets,
            csr_arcs,
            level,
            cursor,
            queue,
            ..
        } = self;
        let mut total = 0i64;
        let mut bfs_phases = 0u64;
        let mut aug_paths = 0u64;
        loop {
            bfs_phases += 1;
            // BFS: build the level graph.
            level.clear();
            level.resize(n, -1);
            level[s] = 0;
            queue.clear();
            queue.push(s);
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                for &a in &csr_arcs[csr_offsets[v]..csr_offsets[v + 1]] {
                    let to = arc_to[a];
                    if arc_cap[a] > 0 && level[to] < 0 {
                        level[to] = level[v] + 1;
                        queue.push(to);
                    }
                }
            }
            if level[t] < 0 {
                break;
            }
            cursor.clear();
            cursor.extend_from_slice(&csr_offsets[..n]);
            // DFS blocking flow.
            loop {
                let pushed = blocking_dfs(
                    arc_to,
                    arc_cap,
                    csr_offsets,
                    csr_arcs,
                    level,
                    cursor,
                    s,
                    t,
                    i64::MAX,
                );
                if pushed == 0 {
                    break;
                }
                aug_paths += 1;
                total += pushed;
            }
        }
        dmig_obs::counter_add(dmig_obs::keys::DINIC_CALLS, 1);
        dmig_obs::counter_add(dmig_obs::keys::DINIC_BFS_PHASES, bfs_phases);
        dmig_obs::counter_add(dmig_obs::keys::DINIC_AUGMENTING_PATHS, aug_paths);
        total
    }

    /// Returns the source side of a minimum `s`–`t` cut: the set of vertices
    /// reachable from `s` in the residual graph.
    ///
    /// Call after [`FlowNetwork::max_flow`]; before it, the whole graph is
    /// typically reachable.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_vertices;
        assert!(s < n, "source out of range");
        let reach_over = |offsets: &[usize], arcs: &[usize]| {
            let mut reach = vec![false; n];
            reach[s] = true;
            let mut stack = vec![s];
            while let Some(v) = stack.pop() {
                for &a in &arcs[offsets[v]..offsets[v + 1]] {
                    let to = self.arc_to[a];
                    if self.arc_cap[a] > 0 && !reach[to] {
                        reach[to] = true;
                        stack.push(to);
                    }
                }
            }
            reach
        };
        if self.csr_valid {
            reach_over(&self.csr_offsets, &self.csr_arcs)
        } else {
            // Not solved yet (no CSR): build a throwaway index.
            let mut offsets = Vec::new();
            let mut arcs = Vec::new();
            build_csr(n, &self.arc_tail, &mut offsets, &mut arcs);
            reach_over(&offsets, &arcs)
        }
    }
}

impl fmt::Display for FlowNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow network(V={}, E={})",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_no_path() {
        let mut net = FlowNetwork::new(2);
        assert_eq!(net.max_flow(0, 1), 0);
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow(e), 7);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::new(1);
        assert_eq!(net.max_flow(0, 0), 0);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn flow_conservation_and_capacity() {
        // Random-ish fixed network; verify conservation at internal nodes.
        let mut net = FlowNetwork::new(6);
        let edges = [
            (0usize, 1usize, 10i64),
            (0, 2, 10),
            (1, 3, 4),
            (1, 4, 8),
            (2, 4, 9),
            (3, 5, 10),
            (4, 3, 6),
            (4, 5, 10),
        ];
        let handles: Vec<_> = edges
            .iter()
            .map(|&(u, v, c)| (net.add_edge(u, v, c), u, v, c))
            .collect();
        let value = net.max_flow(0, 5);
        assert_eq!(value, 19);
        let mut net_in = [0i64; 6];
        let mut net_out = [0i64; 6];
        for (h, u, v, c) in handles {
            let f = net.flow(h);
            assert!((0..=c).contains(&f), "flow within capacity");
            net_out[u] += f;
            net_in[v] += f;
        }
        for v in 1..5 {
            assert_eq!(net_in[v], net_out[v], "conservation at {v}");
        }
        assert_eq!(net_out[0] - net_in[0], value);
        assert_eq!(net_in[5] - net_out[5], value);
    }

    #[test]
    fn min_cut_matches_flow_value() {
        let mut net = FlowNetwork::new(4);
        let h = [
            net.add_edge(0, 1, 3),
            net.add_edge(0, 2, 2),
            net.add_edge(1, 3, 2),
            net.add_edge(2, 3, 3),
        ];
        let caps = [3i64, 2, 2, 3];
        let ends = [(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        let value = net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[3]);
        let cut: i64 = ends
            .iter()
            .zip(caps.iter())
            .filter(|(&(u, v), _)| side[u] && !side[v])
            .map(|(_, &c)| c)
            .sum();
        assert_eq!(cut, value);
        let _ = h;
    }

    #[test]
    fn min_cut_before_solving_reaches_everything() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        // No max_flow yet: the residual graph is the full graph.
        assert_eq!(net.min_cut_source_side(0), vec![true, true, true]);
    }

    #[test]
    fn bipartite_matching_via_unit_capacities() {
        // 3x3 bipartite: left {1,2,3}, right {4,5,6}; perfect matching exists.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (0, 7);
        for l in 1..=3 {
            net.add_edge(s, l, 1);
        }
        for r in 4..=6 {
            net.add_edge(r, t, 1);
        }
        for (l, r) in [(1, 4), (1, 5), (2, 4), (3, 6)] {
            net.add_edge(l, r, 1);
        }
        assert_eq!(net.max_flow(s, t), 3);
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 2), 0);
        assert_eq!(net.flow(e), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 1, -1);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_edge_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 5, 1);
    }

    #[test]
    fn add_vertex_grows_network() {
        let mut net = FlowNetwork::new(0);
        let a = net.add_vertex();
        let b = net.add_vertex();
        net.add_edge(a, b, 4);
        assert_eq!(net.max_flow(a, b), 4);
        assert_eq!(net.to_string(), "flow network(V=2, E=1)");
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn long_chain_with_bottleneck() {
        let n = 50;
        let mut net = FlowNetwork::new(n);
        for v in 0..n - 1 {
            let cap = if v == 25 { 3 } else { 100 };
            net.add_edge(v, v + 1, cap);
        }
        assert_eq!(net.max_flow(0, n - 1), 3);
        let side = net.min_cut_source_side(0);
        assert!(side[25] && !side[26]);
    }

    #[test]
    fn reset_restores_fresh_behavior() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        let first = net.max_flow(0, 3);
        assert_eq!(net.max_flow(0, 3), 0, "network is saturated");
        net.reset();
        assert_eq!(net.max_flow(0, 3), first);
    }

    #[test]
    fn clear_reuses_buffers_for_new_topology() {
        let mut net = FlowNetwork::with_capacity(4, 8);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 3, 5);
        assert_eq!(net.max_flow(0, 3), 5);
        net.clear(3);
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.num_edges(), 0);
        let e = net.add_edge(0, 2, 7);
        assert_eq!(net.max_flow(0, 2), 7);
        assert_eq!(net.flow(e), 7);
        // Old vertex 3 is gone.
        assert_eq!(net.min_cut_source_side(0).len(), 3);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = FlowNetwork::new(5);
        let mut b = FlowNetwork::with_capacity(5, 6);
        for &(u, v, c) in &[
            (0usize, 1usize, 2i64),
            (1, 2, 2),
            (2, 4, 1),
            (0, 3, 1),
            (3, 4, 9),
        ] {
            a.add_edge(u, v, c);
            b.add_edge(u, v, c);
        }
        assert_eq!(a.max_flow(0, 4), b.max_flow(0, 4));
    }
}
