//! Text format for migration instances (transfer graph + capacities).
//!
//! Extends the `dmig-graph` edge-list format with capacity directives:
//!
//! ```text
//! # disks and transfer constraints
//! nodes 4
//! default_cap 2
//! cap 0 4          # disk 0 can run 4 transfers at a time
//! caps 4 2 2 1     # alternatively: the whole vector at once
//! edge 0 1
//! edge 0 1
//! edge 2 3
//! ```
//!
//! `default_cap` (default 1) applies to disks not covered by `cap`/`caps`.

use std::fmt::Write as _;

use dmig_core::{Capacities, MigrationProblem, ProblemError};
use dmig_graph::{GraphError, Multigraph, NodeId};

/// Errors from parsing an instance file.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InstanceError {
    /// Graph-level parse problem.
    Graph(GraphError),
    /// Instance-level validation problem.
    Problem(ProblemError),
    /// Instance-specific directive problem.
    Directive {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Graph(e) => write!(f, "{e}"),
            InstanceError::Problem(e) => write!(f, "{e}"),
            InstanceError::Directive { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<GraphError> for InstanceError {
    fn from(e: GraphError) -> Self {
        InstanceError::Graph(e)
    }
}

impl From<ProblemError> for InstanceError {
    fn from(e: ProblemError) -> Self {
        InstanceError::Problem(e)
    }
}

/// Parses an instance from the text format described at module level.
///
/// # Errors
///
/// Returns [`InstanceError`] on malformed directives, graph errors, or
/// instance validation failures.
pub fn parse_instance(text: &str) -> Result<MigrationProblem, InstanceError> {
    let mut declared_nodes: Option<usize> = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut default_cap = 1u32;
    let mut caps_vec: Option<Vec<u32>> = None;
    let mut cap_overrides: Vec<(usize, u32)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        let mut next_num = |what: &str| -> Result<usize, InstanceError> {
            parts
                .next()
                .ok_or_else(|| InstanceError::Directive {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<usize>()
                .map_err(|_| InstanceError::Directive {
                    line: lineno + 1,
                    message: format!("invalid {what}"),
                })
        };
        match keyword {
            "nodes" => declared_nodes = Some(next_num("node count")?),
            "edge" => {
                let u = next_num("edge endpoint")?;
                let v = next_num("edge endpoint")?;
                edges.push((u, v));
            }
            "default_cap" => {
                default_cap =
                    u32::try_from(next_num("capacity")?).map_err(|_| InstanceError::Directive {
                        line: lineno + 1,
                        message: "capacity too large".to_string(),
                    })?;
            }
            "cap" => {
                let v = next_num("disk index")?;
                let c = next_num("capacity")?;
                cap_overrides.push((
                    v,
                    u32::try_from(c).map_err(|_| InstanceError::Directive {
                        line: lineno + 1,
                        message: "capacity too large".to_string(),
                    })?,
                ));
            }
            "caps" => {
                let mut values = Vec::new();
                for tok in parts.by_ref() {
                    let c = tok.parse::<u32>().map_err(|_| InstanceError::Directive {
                        line: lineno + 1,
                        message: format!("invalid capacity `{tok}`"),
                    })?;
                    values.push(c);
                }
                if values.is_empty() {
                    return Err(InstanceError::Directive {
                        line: lineno + 1,
                        message: "caps needs at least one value".to_string(),
                    });
                }
                caps_vec = Some(values);
            }
            other => {
                return Err(InstanceError::Directive {
                    line: lineno + 1,
                    message: format!("unknown directive `{other}`"),
                });
            }
        }
    }

    let inferred = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = declared_nodes
        .unwrap_or(inferred)
        .max(inferred)
        .max(caps_vec.as_ref().map_or(0, Vec::len));
    let mut g = Multigraph::with_nodes(n);
    for (u, v) in edges {
        g.try_add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    let mut caps = match caps_vec {
        Some(mut values) => {
            values.resize(n, default_cap);
            values
        }
        None => vec![default_cap; n],
    };
    for (v, c) in cap_overrides {
        if v >= n {
            return Err(InstanceError::Directive {
                line: 0,
                message: format!("cap directive for unknown disk {v}"),
            });
        }
        caps[v] = c;
    }
    Ok(MigrationProblem::new(g, Capacities::from_vec(caps))?)
}

/// Serializes an instance back to the text format.
#[must_use]
pub fn to_instance_text(problem: &MigrationProblem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", problem.num_disks());
    let caps: Vec<String> = problem
        .capacities()
        .as_slice()
        .iter()
        .map(u32::to_string)
        .collect();
    let _ = writeln!(out, "caps {}", caps.join(" "));
    for (_, ep) in problem.graph().edges() {
        let _ = writeln!(out, "edge {} {}", ep.u.index(), ep.v.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_form() {
        let p = parse_instance("nodes 3\ncaps 2 4 2\nedge 0 1\nedge 1 2\n").unwrap();
        assert_eq!(p.num_disks(), 3);
        assert_eq!(p.capacities().as_slice(), &[2, 4, 2]);
        assert_eq!(p.num_items(), 2);
    }

    #[test]
    fn default_and_override_caps() {
        let p = parse_instance("default_cap 3\ncap 1 7\nedge 0 1\nedge 1 2\n").unwrap();
        assert_eq!(p.capacities().as_slice(), &[3, 7, 3]);
    }

    #[test]
    fn inline_comments_stripped() {
        let p = parse_instance("edge 0 1  # item A\n").unwrap();
        assert_eq!(p.num_items(), 1);
    }

    #[test]
    fn caps_extend_node_count() {
        let p = parse_instance("caps 1 1 1 1 1\nedge 0 1\n").unwrap();
        assert_eq!(p.num_disks(), 5);
    }

    #[test]
    fn roundtrip() {
        let text = "nodes 4\ncaps 2 1 3 1\nedge 0 1\nedge 0 1\nedge 2 3\n";
        let p = parse_instance(text).unwrap();
        let p2 = parse_instance(&to_instance_text(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse_instance("disk 0\n").unwrap_err();
        assert!(matches!(err, InstanceError::Directive { line: 1, .. }));
    }

    #[test]
    fn rejects_zero_cap_on_busy_disk() {
        let err = parse_instance("caps 0 1\nedge 0 1\n").unwrap_err();
        assert!(matches!(
            err,
            InstanceError::Problem(ProblemError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn rejects_bad_capacity_token() {
        let err = parse_instance("caps 1 x\n").unwrap_err();
        assert!(matches!(err, InstanceError::Directive { .. }));
    }
}
