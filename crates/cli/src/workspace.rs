//! Durable migration workspaces: `dmig migrate plan|execute|resume|export|import`.
//!
//! A *workspace* is a directory that holds everything a migration run
//! needs to survive its operator, its process, and its machine:
//!
//! * `manifest.json` — `dmig-workspace/1`: instance fingerprint, solver,
//!   thread count, and instance dimensions;
//! * `instance.txt` — the canonical instance text (re-fingerprinted on
//!   every load, so tampering is caught before execution);
//! * `plan.json` — `dmig-plan/1`: the solved schedule, round by round;
//! * `faults.toml` — the fault plan, verbatim;
//! * `config.json` — `dmig-exec-config/1`: the executor policy, with
//!   every float persisted as its IEEE-754 bit pattern so reload is exact;
//! * `journal.jsonl` — the write-ahead journal `execute` appends:
//!   `dmig-events/1` flight-recorder lines interleaved with
//!   `dmig-exec-ckpt/1` checkpoints, fsync'd at every round boundary;
//! * `report.json` — the final `dmig-exec-report/1` document.
//!
//! `execute` can be `kill -9`ed at any instant; `resume` rebuilds the
//! executor from the last durable checkpoint (a torn tail line is
//! expected and skipped) and the finished `report.json` is byte-identical
//! to an uninterrupted run. `export` packs the directory into an
//! integrity-checked `dmig-archive/1` file; `import` unpacks and refuses
//! anything whose checksums disagree, naming the manifest line.
//!
//! All one-shot files are published with write-to-temp + atomic rename
//! ([`dmig_obs::fsio`]); only the journal is appended in place, because
//! its durable prefix *is* the recovery record.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use dmig_core::parallel::ParallelSolver;
use dmig_core::solver::{solver_by_name, Solver};
use dmig_core::{MigrationProblem, MigrationSchedule};
use dmig_graph::EdgeId;
use dmig_obs::{fsio, history, Value};
use dmig_sim::{Cluster, ExecReport, Executor, ExecutorConfig, FaultPlan, StepOutcome};

use crate::archive;

/// Schema tag of `manifest.json`.
pub const WORKSPACE_SCHEMA: &str = "dmig-workspace/1";
/// Schema tag of `plan.json`.
pub const PLAN_SCHEMA: &str = "dmig-plan/1";
/// Schema tag of `config.json`.
pub const CONFIG_SCHEMA: &str = "dmig-exec-config/1";
/// Schema tag of the resume-marker lines `resume` appends to the journal.
pub const RESUME_SCHEMA: &str = "dmig-resume/1";

/// First bytes of every executor checkpoint line in the journal (the
/// executor serializes `{"schema": "dmig-exec-ckpt/1", …`).
const CKPT_PREFIX: &str = "{\"schema\": \"dmig-exec-ckpt/1\"";

const MANIFEST: &str = "manifest.json";
const INSTANCE: &str = "instance.txt";
const PLAN: &str = "plan.json";
const FAULTS: &str = "faults.toml";
const CONFIG: &str = "config.json";
const JOURNAL: &str = "journal.jsonl";
const REPORT: &str = "report.json";

/// `dmig migrate <verb> …` dispatch.
pub fn cmd_migrate(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("plan") => cmd_plan(&args[1..]),
        Some("execute") => cmd_execute(&args[1..], false),
        Some("resume") => cmd_execute(&args[1..], true),
        Some("export") => cmd_export(&args[1..]),
        Some("import") => cmd_import(&args[1..]),
        Some(other) => Err(format!(
            "migrate: unknown verb `{other}` (plan|execute|resume|export|import)"
        )),
        None => Err("migrate: missing verb (plan|execute|resume|export|import)".to_string()),
    }
}

// --- Workspace directory plumbing --------------------------------------

struct Workspace {
    dir: PathBuf,
}

impl Workspace {
    fn at(args: &[String]) -> Result<Workspace, String> {
        let dir =
            crate::optional_flag(args, "--workspace")?.ok_or("migrate: missing --workspace DIR")?;
        Ok(Workspace {
            dir: PathBuf::from(dir),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn read(&self, name: &str) -> Result<String, String> {
        let path = self.path(name);
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    }

    fn write(&self, name: &str, contents: &str) -> Result<(), String> {
        fsio::atomic_write_path(&self.path(name), contents.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", self.path(name).display()))
    }

    fn display(&self) -> String {
        self.dir.display().to_string()
    }
}

// --- Exact float persistence -------------------------------------------

/// An `f64` as the decimal rendering of its IEEE-754 bit pattern. The
/// executor's report is bit-for-bit deterministic, so the config that
/// shapes it must reload *exactly* — a round-trip through decimal
/// notation would be a silent source of divergence.
fn f64_bits(v: f64) -> String {
    v.to_bits().to_string()
}

fn f64_of_bits(v: &Value, what: &str) -> Result<f64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("{CONFIG}: {what} is not a bit-pattern string"))?;
    let bits: u64 = s
        .parse()
        .map_err(|e| format!("{CONFIG}: {what}: bad bit pattern: {e}"))?;
    Ok(f64::from_bits(bits))
}

// --- plan ---------------------------------------------------------------

fn cmd_plan(args: &[String]) -> Result<String, String> {
    let pos = crate::positional(args);
    let path = pos.first().ok_or("migrate plan: missing instance file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let problem =
        crate::instance::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let ws = Workspace::at(args)?;
    let solver = crate::pick_solver(args)?;
    let solver_name = crate::flag_value(args, "--solver")
        .unwrap_or("auto")
        .to_string();
    let threads = crate::parse_threads(args)?;
    let cluster = crate::parse_cluster(args, &problem)?;

    // The fault plan is validated against *this* instance at plan time —
    // a disk reference beyond the cluster is a line-numbered error here,
    // not a surprise mid-execution.
    let faults_text = match crate::optional_flag(args, "--faults")? {
        Some(fpath) => {
            let ftext =
                std::fs::read_to_string(&fpath).map_err(|e| format!("cannot read {fpath}: {e}"))?;
            FaultPlan::parse_checked(&ftext, problem.num_disks())
                .map_err(|e| format!("{fpath}: {e}"))?;
            ftext
        }
        None => "seed = 0\n".to_string(),
    };
    let config = ExecutorConfig {
        replan: args.iter().any(|a| a == "--replan"),
        retry_max: match crate::optional_flag(args, "--retry-max")? {
            Some(n) => n.parse().map_err(|e| format!("bad --retry-max: {e}"))?,
            None => ExecutorConfig::default().retry_max,
        },
        ..ExecutorConfig::default()
    };

    let started = Instant::now();
    let schedule = solver.solve(&problem).map_err(|e| e.to_string())?;
    schedule
        .validate(&problem)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    let wall = started.elapsed();

    std::fs::create_dir_all(&ws.dir).map_err(|e| format!("cannot create {}: {e}", ws.display()))?;
    if ws.path(MANIFEST).exists() {
        return Err(format!(
            "{} already holds a workspace ({MANIFEST} present); plan into a fresh directory",
            ws.display()
        ));
    }

    let canonical = crate::instance::to_instance_text(&problem);
    ws.write(INSTANCE, &canonical)?;
    ws.write(FAULTS, &faults_text)?;
    ws.write(PLAN, &render_plan(&schedule))?;
    ws.write(CONFIG, &render_config(&config, &cluster))?;
    ws.write(
        MANIFEST,
        &render_manifest(&canonical, &solver_name, threads, &problem, &schedule),
    )?;

    let mut out = String::new();
    let _ = writeln!(out, "planned workspace {}", ws.display());
    let _ = writeln!(
        out,
        "solver {solver_name}: {} rounds for {} items on {} disks ({:.3}s)",
        schedule.makespan(),
        problem.num_items(),
        problem.num_disks(),
        wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "next: dmig migrate execute --workspace {}",
        ws.display()
    );
    Ok(out)
}

fn render_manifest(
    canonical_instance: &str,
    solver_name: &str,
    threads: usize,
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
) -> String {
    format!(
        "{{\"schema\": {}, \"instance\": {}, \"solver\": {}, \"threads\": {threads}, \
         \"disks\": {}, \"items\": {}, \"planned_rounds\": {}}}\n",
        dmig_obs::json::string(WORKSPACE_SCHEMA),
        dmig_obs::json::string(&history::fingerprint(canonical_instance)),
        dmig_obs::json::string(solver_name),
        problem.num_disks(),
        problem.num_items(),
        schedule.makespan(),
    )
}

fn render_plan(schedule: &MigrationSchedule) -> String {
    let mut out = format!(
        "{{\"schema\": {}, \"rounds\": [",
        dmig_obs::json::string(PLAN_SCHEMA)
    );
    for (i, round) in schedule.rounds().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, e) in round.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", e.index());
        }
        out.push(']');
    }
    out.push_str("]}\n");
    out
}

fn render_config(config: &ExecutorConfig, cluster: &Cluster) -> String {
    let bws: Vec<String> = (0..cluster.num_disks())
        .map(|v| {
            format!(
                "\"{}\"",
                f64_bits(cluster.bandwidth(dmig_graph::NodeId::new(v)))
            )
        })
        .collect();
    format!(
        "{{\"schema\": {}, \"replan\": {}, \"retry_max\": {}, \"backoff_base\": \"{}\", \
         \"backoff_factor\": \"{}\", \"degrade_replan_threshold\": \"{}\", \
         \"stall_factor\": \"{}\", \"bandwidths\": [{}]}}\n",
        dmig_obs::json::string(CONFIG_SCHEMA),
        config.replan,
        config.retry_max,
        f64_bits(config.backoff_base),
        f64_bits(config.backoff_factor),
        f64_bits(config.degrade_replan_threshold),
        f64_bits(config.stall_factor),
        bws.join(", "),
    )
}

// --- Loading ------------------------------------------------------------

struct Loaded {
    problem: MigrationProblem,
    schedule: MigrationSchedule,
    faults: FaultPlan,
    config: ExecutorConfig,
    cluster: Cluster,
    solver_name: String,
    threads: usize,
}

fn field<'a>(doc: &'a Value, file: &str, key: &str) -> Result<&'a Value, String> {
    doc.get_path(key)
        .ok_or_else(|| format!("{file}: missing `{key}`"))
}

fn check_schema(doc: &Value, file: &str, want: &str) -> Result<(), String> {
    let got = field(doc, file, "schema")?.as_str().unwrap_or_default();
    if got != want {
        return Err(format!("{file}: schema `{got}` is not `{want}`"));
    }
    Ok(())
}

fn load_workspace(ws: &Workspace) -> Result<Loaded, String> {
    let manifest = Value::parse(&ws.read(MANIFEST)?).map_err(|e| format!("{MANIFEST}: {e}"))?;
    check_schema(&manifest, MANIFEST, WORKSPACE_SCHEMA)?;

    let instance_text = ws.read(INSTANCE)?;
    let want_fp = field(&manifest, MANIFEST, "instance")?
        .as_str()
        .ok_or(format!("{MANIFEST}: `instance` is not a string"))?;
    let got_fp = history::fingerprint(&instance_text);
    if got_fp != want_fp {
        return Err(format!(
            "{INSTANCE} does not match the manifest fingerprint \
             (manifest {want_fp}, file {got_fp}) — the workspace was modified"
        ));
    }
    let problem =
        crate::instance::parse_instance(&instance_text).map_err(|e| format!("{INSTANCE}: {e}"))?;

    let plan = Value::parse(&ws.read(PLAN)?).map_err(|e| format!("{PLAN}: {e}"))?;
    check_schema(&plan, PLAN, PLAN_SCHEMA)?;
    let rounds_doc = field(&plan, PLAN, "rounds")?
        .as_array()
        .ok_or(format!("{PLAN}: `rounds` is not an array"))?;
    let mut rounds = Vec::with_capacity(rounds_doc.len());
    for (i, round) in rounds_doc.iter().enumerate() {
        let edges = round
            .as_array()
            .ok_or_else(|| format!("{PLAN}: round {i} is not an array"))?;
        let mut ids = Vec::with_capacity(edges.len());
        for e in edges {
            let idx = e
                .as_f64()
                .filter(|v| v.fract() == 0.0 && *v >= 0.0)
                .ok_or_else(|| format!("{PLAN}: round {i} holds a non-integer edge id"))?;
            let idx = idx as usize;
            if idx >= problem.num_items() {
                return Err(format!(
                    "{PLAN}: round {i} references edge {idx} but the instance has {} items",
                    problem.num_items()
                ));
            }
            ids.push(EdgeId::new(idx));
        }
        rounds.push(ids);
    }
    let schedule = MigrationSchedule::from_rounds(rounds);
    schedule
        .validate(&problem)
        .map_err(|e| format!("{PLAN}: schedule invalid for {INSTANCE}: {e}"))?;

    // Validation authority for disk references: the checked parser, with
    // line numbers pointing into faults.toml.
    let faults = FaultPlan::parse_checked(&ws.read(FAULTS)?, problem.num_disks())
        .map_err(|e| format!("{FAULTS}: {e}"))?;

    let cfg = Value::parse(&ws.read(CONFIG)?).map_err(|e| format!("{CONFIG}: {e}"))?;
    check_schema(&cfg, CONFIG, CONFIG_SCHEMA)?;
    let config = ExecutorConfig {
        replan: field(&cfg, CONFIG, "replan")?.as_f64().unwrap_or(0.0) != 0.0,
        retry_max: field(&cfg, CONFIG, "retry_max")?
            .as_f64()
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .ok_or(format!("{CONFIG}: `retry_max` is not a count"))? as u32,
        backoff_base: f64_of_bits(field(&cfg, CONFIG, "backoff_base")?, "backoff_base")?,
        backoff_factor: f64_of_bits(field(&cfg, CONFIG, "backoff_factor")?, "backoff_factor")?,
        degrade_replan_threshold: f64_of_bits(
            field(&cfg, CONFIG, "degrade_replan_threshold")?,
            "degrade_replan_threshold",
        )?,
        stall_factor: f64_of_bits(field(&cfg, CONFIG, "stall_factor")?, "stall_factor")?,
    };
    let bws_doc = field(&cfg, CONFIG, "bandwidths")?
        .as_array()
        .ok_or(format!("{CONFIG}: `bandwidths` is not an array"))?;
    if bws_doc.len() != problem.num_disks() {
        return Err(format!(
            "{CONFIG}: {} bandwidths for a {}-disk instance",
            bws_doc.len(),
            problem.num_disks()
        ));
    }
    let mut bws = Vec::with_capacity(bws_doc.len());
    for (i, b) in bws_doc.iter().enumerate() {
        bws.push(f64_of_bits(b, &format!("bandwidths[{i}]"))?);
    }
    let cluster = Cluster::from_bandwidths(bws);

    let solver_name = field(&manifest, MANIFEST, "solver")?
        .as_str()
        .ok_or(format!("{MANIFEST}: `solver` is not a string"))?
        .to_string();
    let threads = field(&manifest, MANIFEST, "threads")?
        .as_f64()
        .filter(|v| v.fract() == 0.0 && *v >= 1.0)
        .ok_or(format!("{MANIFEST}: `threads` is not a count"))? as usize;

    Ok(Loaded {
        problem,
        schedule,
        faults,
        config,
        cluster,
        solver_name,
        threads,
    })
}

// --- execute / resume ---------------------------------------------------

/// Scans journal text for the last *parseable* checkpoint line. A torn
/// final line (the process died mid-write before the fsync) is expected
/// and skipped — the journal discipline guarantees every line before the
/// tear was synced at a round boundary.
fn last_checkpoint(journal: &str) -> Option<String> {
    journal
        .lines()
        .rfind(|l| l.starts_with(CKPT_PREFIX) && Value::parse(l).is_ok())
        .map(str::to_string)
}

fn parse_abort_after(args: &[String]) -> Result<Option<u64>, String> {
    match crate::optional_flag(args, "--abort-after-checkpoint")? {
        Some(n) => {
            Ok(Some(n.parse().map_err(|e| {
                format!("bad --abort-after-checkpoint: {e}")
            })?))
        }
        None => Ok(None),
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_execute(args: &[String], resume: bool) -> Result<String, String> {
    let verb = if resume { "resume" } else { "execute" };
    let ws = Workspace::at(args)?;
    let loaded = load_workspace(&ws)?;
    let abort_after = parse_abort_after(args)?;
    let threads = match crate::flag_value(args, "--threads") {
        Some(_) => crate::parse_threads(args)?,
        None => loaded.threads,
    };
    let inner: Box<dyn Solver> = solver_by_name(&loaded.solver_name)
        .ok_or_else(|| format!("{MANIFEST}: unknown solver `{}`", loaded.solver_name))?;
    let solver = ParallelSolver::with_threads(inner, threads);

    if ws.path(REPORT).exists() {
        return Err(format!(
            "migrate {verb}: {} already holds {REPORT} — the run is complete \
             (delete it to force a re-run)",
            ws.display()
        ));
    }
    let journal_path = ws.path(JOURNAL);
    if resume && !journal_path.exists() {
        return Err(format!(
            "migrate resume: {} has no {JOURNAL}; start with `dmig migrate execute`",
            ws.display()
        ));
    }
    if !resume && journal_path.exists() {
        return Err(format!(
            "migrate execute: {} already holds {JOURNAL}; use `dmig migrate resume`",
            ws.display()
        ));
    }

    // Revive (or create) the executor *before* opening the journal so a
    // corrupt checkpoint cannot half-open the sink.
    let restored_from = if resume {
        let ck = last_checkpoint(&ws.read(JOURNAL)?).ok_or(format!(
            "migrate resume: {JOURNAL} holds no usable checkpoint line"
        ))?;
        Some(ck)
    } else {
        None
    };
    let mut exec = match &restored_from {
        Some(ck) => Executor::restore(
            &loaded.problem,
            &loaded.cluster,
            &loaded.faults,
            &loaded.config,
            &solver,
            ck,
        )
        .map_err(|e| format!("migrate resume: {e}"))?,
        None => Executor::new(
            &loaded.problem,
            &loaded.schedule,
            &loaded.cluster,
            &loaded.faults,
            &loaded.config,
            &solver,
        )
        .map_err(|e| format!("migrate execute: {e}"))?,
    };
    let resumed_at = exec.executed_rounds();

    // The journal sink: durable append mode, fenced at round boundaries.
    // The flight recorder streams dmig-events/1 lines into the same file;
    // checkpoints are spliced between them via append_sink_line.
    let journal_str = journal_path.display().to_string();
    dmig_obs::reset();
    dmig_obs::set_enabled(true);
    dmig_obs::events::reset();
    dmig_obs::events::open_sink(&journal_str)
        .map_err(|e| format!("cannot open {journal_str}: {e}"))?;
    dmig_obs::events::set_enabled(true);
    let teardown = |msg: String| -> String {
        dmig_obs::events::set_enabled(false);
        dmig_obs::events::close_sink();
        dmig_obs::events::reset();
        dmig_obs::set_enabled(false);
        msg
    };

    let mut journal_bytes = 0u64;
    let mut checkpoints = 0u64;
    let mut append_line = |line: &str, checkpoint: bool| -> Result<(u64, u64), String> {
        let n = dmig_obs::events::append_sink_line(line)
            .map_err(|e| format!("cannot append to {journal_str}: {e}"))?;
        dmig_obs::events::sync_sink().map_err(|e| format!("cannot sync {journal_str}: {e}"))?;
        journal_bytes += n;
        if checkpoint {
            checkpoints += 1;
            dmig_obs::counter_add(dmig_obs::keys::WS_CHECKPOINTS, 1);
        }
        dmig_obs::gauge_set(dmig_obs::keys::WS_JOURNAL_BYTES, journal_bytes);
        Ok((checkpoints, journal_bytes))
    };

    if resume {
        dmig_obs::counter_add(dmig_obs::keys::WS_RESUMES, 1);
        let marker = format!(
            "{{\"schema\": {}, \"from_round\": {resumed_at}}}",
            dmig_obs::json::string(RESUME_SCHEMA)
        );
        append_line(&marker, false).map_err(&teardown)?;
    }
    // The initial checkpoint makes round 0 resumable: a kill before the
    // first boundary resumes into a full (still byte-identical) re-run.
    let (mut ck_count, _) = append_line(&exec.checkpoint_json(), true).map_err(&teardown)?;
    dmig_obs::gauge_set(dmig_obs::keys::WS_ROUND, exec.executed_rounds() as u64);
    if abort_after == Some(ck_count) {
        std::process::abort();
    }

    loop {
        let outcome = match exec.step() {
            Ok(o) => o,
            Err(e) => return Err(teardown(format!("migrate {verb}: {e}"))),
        };
        if outcome == StepOutcome::Finished {
            break;
        }
        let (c, _) = append_line(&exec.checkpoint_json(), true).map_err(&teardown)?;
        ck_count = c;
        dmig_obs::gauge_set(dmig_obs::keys::WS_ROUND, exec.executed_rounds() as u64);
        if abort_after == Some(ck_count) {
            // The deterministic stand-in for `kill -9` the crash-resume
            // tests and CI smoke use: die *after* the fsync, with the
            // report unwritten, exactly like a real mid-run kill.
            std::process::abort();
        }
    }

    dmig_obs::events::set_enabled(false);
    dmig_obs::events::close_sink();
    dmig_obs::events::reset();
    let report = exec.into_report();
    ws.write(REPORT, &report.to_json())?;
    if let Some(path) = crate::optional_flag(args, "--metrics-out")? {
        let snap = dmig_obs::snapshot();
        fsio::atomic_write(&path, snap.to_json().as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    dmig_obs::set_enabled(false);

    Ok(render_exec_summary(
        verb,
        &ws,
        &loaded,
        &report,
        resume.then_some(resumed_at),
        checkpoints,
        journal_bytes,
    ))
}

fn render_exec_summary(
    verb: &str,
    ws: &Workspace,
    loaded: &Loaded,
    report: &ExecReport,
    resumed_at: Option<usize>,
    checkpoints: u64,
    journal_bytes: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "migrate {verb}: workspace {}", ws.display());
    if let Some(round) = resumed_at {
        let _ = writeln!(out, "resumed from the round-{round} checkpoint");
    }
    let _ = writeln!(
        out,
        "items: {} delivered ({} redirected), {} lost of {}",
        report.delivered(),
        report.redirected(),
        report.lost(),
        loaded.problem.num_items()
    );
    let _ = writeln!(
        out,
        "recovery: {} replans, {} retries, {} crashes, {} degraded rounds",
        report.replans, report.retries, report.crashes, report.degraded_rounds
    );
    let _ = writeln!(
        out,
        "journal: {checkpoints} checkpoints, {journal_bytes} bytes appended; report: {}",
        ws.path(REPORT).display()
    );
    out
}

// --- export / import ----------------------------------------------------

fn cmd_export(args: &[String]) -> Result<String, String> {
    let ws = Workspace::at(args)?;
    let out_path =
        crate::optional_flag(args, "--out")?.ok_or("migrate export: missing --out FILE")?;
    if !ws.path(MANIFEST).exists() {
        return Err(format!(
            "migrate export: {} is not a workspace (no {MANIFEST})",
            ws.display()
        ));
    }
    let mut files = archive::read_dir_files(&ws.dir)?;
    // Checksums are regenerated at export time over everything else.
    files.retain(|(name, _)| name != archive::CHECKSUM_FILE);
    let sums = archive::render_checksums(&files);
    ws.write(archive::CHECKSUM_FILE, &sums)?;
    files.push((archive::CHECKSUM_FILE.to_string(), sums.into_bytes()));
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let packed = archive::pack(&files);
    fsio::atomic_write(&out_path, &packed).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exported {} files ({} bytes) from {} to {out_path}",
        files.len(),
        packed.len(),
        ws.display()
    );
    Ok(out)
}

fn cmd_import(args: &[String]) -> Result<String, String> {
    let pos = crate::positional(args);
    let apath = pos.first().ok_or("migrate import: missing archive file")?;
    let ws = Workspace::at(args)?;
    let data = std::fs::read(apath).map_err(|e| format!("cannot read {apath}: {e}"))?;
    let files = archive::unpack(&data).map_err(|e| format!("{apath}: {e}"))?;
    archive::verify_checksums(&files).map_err(|e| format!("{apath}: {e}"))?;
    if ws.path(MANIFEST).exists() {
        return Err(format!(
            "migrate import: {} already holds a workspace; import into a fresh directory",
            ws.display()
        ));
    }
    std::fs::create_dir_all(&ws.dir).map_err(|e| format!("cannot create {}: {e}", ws.display()))?;
    for (name, bytes) in &files {
        fsio::atomic_write_path(&ws.path(name), bytes)
            .map_err(|e| format!("cannot write {}: {e}", ws.path(name).display()))?;
    }
    // A verified unpack still has to *be* a workspace: full reload, which
    // re-checks the fingerprint, the schedule, and the fault references.
    let loaded = load_workspace(&ws)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "imported {} files into {} (checksums verified)",
        files.len(),
        ws.display()
    );
    let _ = writeln!(
        out,
        "workspace: {} items on {} disks, solver {}, {} planned rounds",
        loaded.problem.num_items(),
        loaded.problem.num_disks(),
        loaded.solver_name,
        loaded.schedule.makespan()
    );
    Ok(out)
}

/// Workspace file names, exposed for the integration tests and docs.
#[must_use]
pub fn workspace_files() -> &'static [&'static str] {
    &[MANIFEST, INSTANCE, PLAN, FAULTS, CONFIG, JOURNAL, REPORT]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bit_round_trip_is_exact() {
        for v in [0.25, 2.0, 0.5, 8.0, 1.0e-300, std::f64::consts::PI] {
            let s = f64_bits(v);
            let back = f64_of_bits(&Value::String(s), "x").unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn last_checkpoint_skips_torn_tails_and_foreign_lines() {
        let good = "{\"schema\": \"dmig-exec-ckpt/1\", \"disks\": 3}";
        let journal = format!(
            "{{\"schema\": \"dmig-events/1\", \"kind\": \"round\"}}\n\
             {good}\n\
             {{\"schema\": \"dmig-exec-ckpt/1\", \"disks\": 3, \"tor"
        );
        assert_eq!(last_checkpoint(&journal).as_deref(), Some(good));
        assert_eq!(last_checkpoint("no checkpoints here\n"), None);
    }
}
