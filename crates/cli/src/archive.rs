//! Integrity-checked workspace archives: `dmig-archive/1`.
//!
//! `dmig migrate export` packs a migration workspace into one
//! self-describing file; `import` unpacks it and verifies every byte
//! against the embedded `checksums.sha256` before declaring the
//! workspace usable. The point is *custody*: a workspace that traveled
//! through mail, object storage, or a flaky USB stick either reproduces
//! exactly or fails loudly with the offending file and checksum line.
//!
//! The container is deliberately primitive — a header line, then
//! `file <name> <len>` records each followed by `<len>` raw bytes — so
//! it can be parsed without any dependency and audited with `xxd`. The
//! digest is a from-scratch SHA-256 (the workspace has no crates.io
//! access), pinned against FIPS 180-4 test vectors in the unit tests.

use std::fmt::Write as _;
use std::path::Path;

/// Header line of the archive container.
pub const ARCHIVE_SCHEMA: &str = "dmig-archive/1";

/// Name of the checksum manifest inside workspaces and archives.
pub const CHECKSUM_FILE: &str = "checksums.sha256";

// --- SHA-256 (FIPS 180-4), std-only -----------------------------------

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// SHA-256 digest of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09_e667,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ];
    // Padding: 0x80, zeros to 56 mod 64, then the bit length, big-endian.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (t, word) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex SHA-256 of `data`.
#[must_use]
pub fn sha256_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(64);
    for b in sha256(data) {
        let _ = write!(s, "{b:02x}");
    }
    s
}

// --- Container ---------------------------------------------------------

/// Renders a `checksums.sha256` document (`<hex>  <name>` lines, sorted
/// by name) over the given files.
#[must_use]
pub fn render_checksums(files: &[(String, Vec<u8>)]) -> String {
    let mut rows: Vec<(&str, String)> = files
        .iter()
        .map(|(name, bytes)| (name.as_str(), sha256_hex(bytes)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (name, hex) in rows {
        let _ = writeln!(out, "{hex}  {name}");
    }
    out
}

/// Packs named files into one `dmig-archive/1` byte stream. Callers are
/// expected to include a [`CHECKSUM_FILE`] entry (see
/// [`render_checksums`]); [`unpack`]-side verification requires it.
#[must_use]
pub fn pack(files: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(ARCHIVE_SCHEMA.as_bytes());
    out.push(b'\n');
    for (name, bytes) in files {
        out.extend_from_slice(format!("file {name} {}\n", bytes.len()).as_bytes());
        out.extend_from_slice(bytes);
        out.push(b'\n');
    }
    out
}

/// A file name acceptable inside an archive: a single path component,
/// no separators, no traversal.
fn check_name(name: &str) -> Result<(), String> {
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
    {
        return Err(format!("archive: illegal file name `{name}`"));
    }
    Ok(())
}

/// Unpacks a `dmig-archive/1` byte stream into `(name, bytes)` pairs.
///
/// # Errors
///
/// Describes the structural violation: bad header, malformed `file`
/// record, truncated payload, or an illegal name.
pub fn unpack(data: &[u8]) -> Result<Vec<(String, Vec<u8>)>, String> {
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("archive: missing header line")?;
    let header = std::str::from_utf8(&data[..header_end]).map_err(|_| "archive: binary header")?;
    if header != ARCHIVE_SCHEMA {
        return Err(format!(
            "archive: header `{header}` is not `{ARCHIVE_SCHEMA}`"
        ));
    }
    let mut files = Vec::new();
    let mut at = header_end + 1;
    while at < data.len() {
        let line_end = data[at..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| at + i)
            .ok_or("archive: truncated file record")?;
        let record = std::str::from_utf8(&data[at..line_end])
            .map_err(|_| "archive: binary file record".to_string())?;
        let mut parts = record.splitn(3, ' ');
        let (kw, name, len) = (parts.next(), parts.next(), parts.next());
        if kw != Some("file") {
            return Err(format!("archive: expected a `file` record, got `{record}`"));
        }
        let name = name.ok_or_else(|| format!("archive: nameless record `{record}`"))?;
        check_name(name)?;
        let len: usize = len
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| format!("archive: bad length in `{record}`"))?;
        let start = line_end + 1;
        let end = start
            .checked_add(len)
            .filter(|&e| e < data.len() + 1 && data.len() - e >= 1)
            .ok_or_else(|| format!("archive: `{name}` payload truncated"))?;
        if data[end] != b'\n' {
            return Err(format!("archive: `{name}` payload not newline-terminated"));
        }
        files.push((name.to_string(), data[start..end].to_vec()));
        at = end + 1;
    }
    Ok(files)
}

/// Verifies extracted files against their [`CHECKSUM_FILE`] entry.
/// Every mismatch is reported with the 1-based line of the checksum
/// manifest that promised the digest.
///
/// # Errors
///
/// A newline-separated list of violations (missing manifest, malformed
/// lines, digest mismatches, files absent from the manifest).
pub fn verify_checksums(files: &[(String, Vec<u8>)]) -> Result<(), String> {
    let manifest = files
        .iter()
        .find(|(n, _)| n == CHECKSUM_FILE)
        .map(|(_, b)| b)
        .ok_or_else(|| format!("archive has no {CHECKSUM_FILE}"))?;
    let manifest =
        std::str::from_utf8(manifest).map_err(|_| format!("{CHECKSUM_FILE} is not UTF-8"))?;
    let mut problems = Vec::new();
    let mut covered = vec![CHECKSUM_FILE.to_string()];
    for (i, line) in manifest.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((hex, name)) = line.split_once("  ") else {
            problems.push(format!("{CHECKSUM_FILE}:{lineno}: malformed line `{line}`"));
            continue;
        };
        covered.push(name.to_string());
        match files.iter().find(|(n, _)| n == name) {
            None => problems.push(format!("{CHECKSUM_FILE}:{lineno}: `{name}` is missing")),
            Some((_, bytes)) => {
                let got = sha256_hex(bytes);
                if got != hex {
                    problems.push(format!(
                        "{CHECKSUM_FILE}:{lineno}: `{name}` checksum mismatch \
                         (manifest {hex}, file {got})"
                    ));
                }
            }
        }
    }
    for (name, _) in files {
        if !covered.contains(name) {
            problems.push(format!("`{name}` is not covered by {CHECKSUM_FILE}"));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Reads every regular file of `dir` (non-recursive, sorted by name,
/// temp files skipped) as `(name, bytes)` pairs.
///
/// # Errors
///
/// Propagates I/O failures with the offending path.
pub fn read_dir_files(dir: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.contains(".tmp") {
            continue;
        }
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        out.push((name, bytes));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block message (> 64 bytes).
        let long = vec![b'a'; 1_000];
        assert_eq!(
            sha256_hex(&long),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn pack_unpack_round_trips_binary_payloads() {
        let files = vec![
            ("a.json".to_string(), b"{\"x\":1}\n".to_vec()),
            ("blob.bin".to_string(), vec![0u8, 10, 255, 10, 0]),
            ("empty".to_string(), Vec::new()),
        ];
        let packed = pack(&files);
        assert_eq!(unpack(&packed).unwrap(), files);
    }

    #[test]
    fn unpack_rejects_malformed_containers() {
        for (data, needle) in [
            (b"not-an-archive\nfile a 0\n\n".to_vec(), "header"),
            (b"dmig-archive/1\nrecord a 0\n\n".to_vec(), "file"),
            (b"dmig-archive/1\nfile a xyz\n\n".to_vec(), "bad length"),
            (b"dmig-archive/1\nfile a 99\nshort\n".to_vec(), "truncated"),
            (
                b"dmig-archive/1\nfile ../evil 0\n\n".to_vec(),
                "illegal file name",
            ),
            (
                b"dmig-archive/1\nfile a/b 0\n\n".to_vec(),
                "illegal file name",
            ),
        ] {
            let err = unpack(&data).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn checksums_verify_and_report_line_numbers() {
        let mut files = vec![
            ("a.json".to_string(), b"alpha".to_vec()),
            ("b.json".to_string(), b"beta".to_vec()),
        ];
        let sums = render_checksums(&files);
        files.push((CHECKSUM_FILE.to_string(), sums.into_bytes()));
        verify_checksums(&files).unwrap();

        // Corrupt the second file: line 2 of the manifest names it.
        files[1].1 = b"mutated".to_vec();
        let err = verify_checksums(&files).unwrap_err();
        assert!(err.contains("checksums.sha256:2"), "{err}");
        assert!(err.contains("`b.json` checksum mismatch"), "{err}");

        // A file the manifest never promised is also a violation.
        files[1].1 = b"beta".to_vec();
        files.push(("stray.txt".to_string(), b"?".to_vec()));
        let err = verify_checksums(&files).unwrap_err();
        assert!(err.contains("`stray.txt` is not covered"), "{err}");
    }

    #[test]
    fn missing_manifest_entry_is_reported() {
        let files = vec![
            ("a.json".to_string(), b"alpha".to_vec()),
            (
                CHECKSUM_FILE.to_string(),
                format!(
                    "{}  a.json\n{}  gone.json\n",
                    sha256_hex(b"alpha"),
                    sha256_hex(b"x")
                )
                .into_bytes(),
            ),
        ];
        let err = verify_checksums(&files).unwrap_err();
        assert!(err.contains("checksums.sha256:2"), "{err}");
        assert!(err.contains("`gone.json` is missing"), "{err}");
    }
}
