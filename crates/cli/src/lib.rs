//! `dmig` command-line planner.
//!
//! Subcommands (see `dmig help`):
//!
//! * `solve <file> [--solver NAME]` — plan a migration and print the rounds,
//! * `bounds <file>` — print the lower bounds `Δ'` and `Γ'` with witness,
//! * `compare <file>` — run every applicable solver head-to-head,
//! * `simulate <file> [--solver NAME] [--bandwidths B0,B1,…]` — wall-clock
//!   simulation in the paper's bandwidth-split model,
//! * `generate <kind> …` — emit a synthetic instance (see `help`).
//!
//! The library exposes [`run`] so the whole CLI is unit-testable; the
//! binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod instance;
pub mod workspace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dmig_core::parallel::{default_threads, ParallelSolver};
use dmig_core::solver::{all_solvers, solver_by_name, AutoSolver, Solver};
use dmig_core::{bounds, MigrationProblem};
use dmig_obs::{diff, gate, history, trace, Value};
use dmig_sim::{engine::simulate_rounds, Cluster, ExecutorConfig, FaultPlan};

/// Exit status plus rendered output of a CLI invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliOutcome {
    /// Process exit code (0 = success).
    pub code: i32,
    /// Text written to stdout.
    pub stdout: String,
}

/// Runs the CLI on `args` (without the program name), capturing output.
///
/// Never panics on user input; errors become a non-zero exit code with an
/// explanatory message.
#[must_use]
pub fn run(args: &[String]) -> CliOutcome {
    match run_inner(args) {
        Ok(stdout) => CliOutcome { code: 0, stdout },
        Err(msg) => CliOutcome {
            code: 1,
            stdout: format!("error: {msg}\n"),
        },
    }
}

fn run_inner(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(usage()),
        Some("solve") => cmd_solve(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("migrate") => workspace::cmd_migrate(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("import-trace") => cmd_import_trace(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`; try `dmig help`")),
    }
}

fn usage() -> String {
    "dmig — heterogeneous data-migration planner (ICDCS 2011)\n\
     \n\
     usage:\n\
     \x20 dmig solve <file> [--solver NAME] [--threads N] [--shards K]\n\
     \x20          [--trace] [--metrics-out FILE]\n\
     \x20 dmig bounds <file>                    lower bounds Δ' and Γ'\n\
     \x20 dmig compare <file>                   all solvers head-to-head\n\
     \x20 dmig simulate <file> [--solver NAME] [--threads N] [--bandwidths B0,B1,...]\n\
     \x20          [--faults FILE] [--replan] [--retry-max N] [--report-out FILE]\n\
     \x20          [--trace] [--metrics-out FILE] [--explain]\n\
     \x20          [--events-out FILE] [--crash-dump FILE]\n\
     \x20 dmig migrate plan <file> --workspace DIR [--faults FILE] [--solver NAME]\n\
     \x20          [--threads N] [--bandwidths B0,B1,...] [--replan] [--retry-max N]\n\
     \x20 dmig migrate execute --workspace DIR [--threads N] [--metrics-out FILE]\n\
     \x20 dmig migrate resume --workspace DIR [--threads N] [--metrics-out FILE]\n\
     \x20 dmig migrate export --workspace DIR --out FILE\n\
     \x20 dmig migrate import <archive> --workspace DIR\n\
     \x20 dmig generate <kind> [params] [--seed S]\n\
     \x20 dmig stats <file>                     transfer-graph statistics\n\
     \x20 dmig dot <file>                       Graphviz DOT export\n\
     \x20 dmig import-trace <trace> [--default-cap K]   trace -> instance\n\
     \x20 dmig obs diff <old> <new> [--tolerance T] [--all]\n\
     \x20 dmig obs gate <rules.toml> <metrics> [--tolerance T] [--baseline SPEC]\n\
     \x20          [--explain]\n\
     \x20 dmig obs serve <snapshot.json> [--addr A] [--addr-file F] [--requests N]\n\
     \x20 dmig obs export-trace <snapshot.json> [--out FILE] [--html FILE] [--check]\n\
     \x20 dmig obs flame <snapshot.json> [--out FILE]   self-time rollup table\n\
     \x20 dmig obs explain <file> [--solver NAME] [--threads N]\n\
     \x20          [--bandwidths B0,B1,...] [--json] [--out FILE]\n\
     \x20 dmig obs compact <history.jsonl> --keep N\n\
     \n\
     solvers: auto even-optimal general saia-1.5 homogeneous greedy\n\
     \x20        bipartite-optimal exact parallel\n\
     \x20 connected components are always solved independently and merged;\n\
     \x20 --threads N caps the worker threads (default: all cores). The\n\
     \x20 schedule is identical for every N.\n\
     \x20 --shards K (solve) cuts heavy components into canonical cells,\n\
     \x20 groups the cells onto K workers, and reconciles cut edges in a\n\
     \x20 boundary pass; the schedule is identical for every K and every\n\
     \x20 --threads, and matches the unsharded plan when nothing is cut.\n\
     observability:\n\
     \x20 --trace             print the phase-timing span tree to stderr\n\
     \x20 --metrics-out FILE  write a JSON snapshot of spans, counters\n\
     \x20                     (flow_solves, euler_splits, ...), and histograms\n\
     \x20 --trace-out FILE    write the span tree as Chrome trace_event JSON\n\
     \x20                     (load in Perfetto or chrome://tracing)\n\
     \x20 --trace-html FILE   write a self-contained HTML timeline\n\
     \x20 --history FILE      append one JSONL entry (git rev, threads,\n\
     \x20                     instance hash, wall ms, metrics) per run\n\
     \x20 --progress          (simulate) live per-round lines + stall alerts\n\
     \x20 --events-out FILE   stream flight-recorder events (rounds, items,\n\
     \x20                     faults) as dmig-events/1 JSONL; byte-identical\n\
     \x20                     for any --threads at a fixed plan seed\n\
     \x20 --crash-dump FILE   on panic, write the last ring events + open\n\
     \x20                     spans as a dmig-crash/1 JSON document\n\
     \x20 --explain           (simulate) append makespan attribution: the\n\
     \x20                     disk realizing LB1, the LB2 witness, and the\n\
     \x20                     per-round binding chain (see `dmig obs explain`)\n\
     \x20 --serve ADDR        expose live telemetry over HTTP while the run\n\
     \x20                     executes: /metrics (Prometheus text) and\n\
     \x20                     /snapshot (JSON); also starts the sampling\n\
     \x20                     profiler (prof.self_ns.*, mem.rss_*, live.*)\n\
     \x20 --serve-addr-file F write the bound address (port 0 resolved) to F\n\
     \x20 none of these flags changes the computed schedule.\n\
     fault injection (simulate):\n\
     \x20 --faults FILE       seeded fault plan (seed, [[crash]], [[degrade]],\n\
     \x20                     [flaky]); executes the schedule under failures\n\
     \x20 --replan            re-solve the residual problem on crash/stall\n\
     \x20 --retry-max N       per-item retry budget for flaky failures\n\
     \x20 --report-out FILE   write the final report JSON (byte-identical\n\
     \x20                     for any --threads at a fixed plan seed)\n\
     durable workspaces (migrate):\n\
     \x20 plan      solve once and persist instance, schedule, fault plan,\n\
     \x20           and executor config into --workspace DIR\n\
     \x20 execute   run the plan, appending an fsync'd write-ahead journal\n\
     \x20           (dmig-events/1 lines + dmig-exec-ckpt/1 checkpoints);\n\
     \x20           safe to kill -9 at any instant\n\
     \x20 resume    revive a killed run from the last durable checkpoint;\n\
     \x20           the final report.json is byte-identical to an\n\
     \x20           uninterrupted run\n\
     \x20 export    pack the workspace into a dmig-archive/1 file with a\n\
     \x20           checksums.sha256 manifest\n\
     \x20 import    unpack an archive, verifying every checksum (mismatches\n\
     \x20           name the manifest line)\n\
     obs file arguments:\n\
     \x20 <metrics> is a dmig-obs/1 snapshot, a JSONL history (use FILE@N\n\
     \x20 for the Nth-from-last entry; default the last), or any flat JSON\n\
     \x20 document (e.g. BENCH_perf.json; nested keys join with dots).\n\
     \x20 gate rules: [[rule]] tables with expr/when/tolerance; functions\n\
     \x20 abs ceil floor round min max quota_flow_solves quota_euler_splits.\n\
     generate kinds:\n\
     \x20 k3 <M> <cap>                 the paper's Fig. 2 instance\n\
     \x20 uniform <n> <m> <lo> <hi>    random graph, caps in [lo,hi]\n\
     \x20 clustered <n> <m> <clusters> rack-local blocks on a sparse ring,\n\
     \x20                              even caps (the shard-friendly shape)\n\
     \x20 rebalance <n> <items> <cap>  load-balancing delta\n\
     \x20 add <old> <new> <items> <cap>   disk addition (bipartite)\n\
     \x20 remove <n> <gone> <items> <cap> disk drain (bipartite)\n"
        .to_string()
}

fn load(path: &str) -> Result<MigrationProblem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    instance::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Resolves `--solver`/`--threads` into a component-parallel wrapper around
/// the named solver. The schedule does not depend on the thread count, so
/// the wrapper is always applied; display code prints the inner name.
fn pick_solver(args: &[String]) -> Result<ParallelSolver, String> {
    let inner: Box<dyn Solver> = match flag_value(args, "--solver") {
        Some(name) => solver_by_name(name)
            .ok_or_else(|| format!("unknown solver `{name}`; try `dmig help`"))?,
        None => Box::new(AutoSolver),
    };
    Ok(ParallelSolver::with_threads(inner, parse_threads(args)?))
}

fn parse_threads(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--threads") {
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("bad --threads: must be at least 1".to_string()),
            Err(e) => Err(format!("bad --threads: {e}")),
        },
        None if args.iter().any(|a| a == "--threads") => {
            Err("bad --threads: missing value".to_string())
        }
        None => Ok(default_threads()),
    }
}

/// Parses the optional `--shards K` of `solve`: `None` keeps the plain
/// component-parallel path, `Some(k)` routes through the sharded pipeline
/// (which produces the same schedule — `--shards` controls concurrency
/// shape, never the plan).
fn parse_shards(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--shards") {
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            Ok(_) => Err("bad --shards: must be at least 1".to_string()),
            Err(e) => Err(format!("bad --shards: {e}")),
        },
        None if args.iter().any(|a| a == "--shards") => {
            Err("bad --shards: missing value".to_string())
        }
        None => Ok(None),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Flags that take no value (every other `--flag` consumes the next arg).
const BOOLEAN_FLAGS: &[&str] = &[
    "--trace",
    "--progress",
    "--all",
    "--check",
    "--replan",
    "--explain",
    "--json",
];

/// Parses an optional `--flag VALUE`; a dangling flag is an error, not a
/// silent fallback.
fn optional_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match flag_value(args, flag) {
        Some(v) => Ok(Some(v.to_string())),
        None if args.iter().any(|a| a == flag) => Err(format!("bad {flag}: missing value")),
        None => Ok(None),
    }
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOLEAN_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

/// The observability request of one invocation (`--trace`,
/// `--metrics-out`, `--trace-out`, `--trace-html`, `--history`,
/// `--events-out`, `--crash-dump`, `--serve`). When no flag is given the
/// recorder stays disabled and the solve runs exactly as before (the
/// instrumentation is a no-op).
struct ObsRequest {
    trace: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    trace_html: Option<String>,
    history: Option<String>,
    events_out: Option<String>,
    crash_dump: Option<String>,
    serve: Option<String>,
    serve_addr_file: Option<String>,
    /// The live plane started by [`ObsRequest::begin`] when `--serve` is
    /// given. The CLI is single-threaded, so interior mutability keeps
    /// `begin`/`finish` taking `&self` like every other accessor.
    live: std::cell::RefCell<Option<LivePlane>>,
}

/// The background half of `--serve`: the HTTP listener plus the sampling
/// profiler that feeds `prof.self_ns.*` and the RSS gauges. Both threads
/// only ever *read* recorder state (and write their own sampler keys), so
/// the solve schedule cannot depend on their timing.
struct LivePlane {
    server: dmig_obs::serve::ObsServer,
    sampler: dmig_obs::sampler::SamplerHandle,
}

/// Per-run metadata handed to [`ObsRequest::finish`] for the history line
/// and the per-disk utilization lane of the HTML timeline.
struct RunContext<'a> {
    source: &'a str,
    threads: usize,
    instance_text: &'a str,
    wall: Duration,
    disks: Vec<trace::DiskUtilRow>,
}

fn hardware_threads() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Counters pre-registered before an instrumented run so the JSON export
/// always contains them, even when a small instance never hits a path.
const WELL_KNOWN_COUNTERS: &[&str] = &[
    dmig_obs::keys::FLOW_SOLVES,
    dmig_obs::keys::EULER_SPLITS,
    dmig_obs::keys::WARM_START_HITS,
    dmig_obs::keys::WARM_START_MISSES,
    dmig_obs::keys::EULER_ORIENTATIONS,
    dmig_obs::keys::COMPONENTS_SOLVED,
    dmig_obs::keys::DINIC_CALLS,
    dmig_obs::keys::DINIC_BFS_PHASES,
    dmig_obs::keys::DINIC_AUGMENTING_PATHS,
    dmig_obs::keys::SIM_ROUNDS,
    dmig_obs::keys::SIM_TRANSFERS,
    dmig_obs::keys::SIM_STALLS,
    dmig_obs::keys::POOL_ACQUIRES,
    dmig_obs::keys::POOL_ACQUIRE_DENIED,
    dmig_obs::keys::POOL_TASKS,
    dmig_obs::keys::POOL_STEALS,
    dmig_obs::keys::SCRATCH_REUSES,
    dmig_obs::keys::SCRATCH_ALLOCS,
    dmig_obs::keys::EXEC_REPLANS,
    dmig_obs::keys::EXEC_RETRIES,
    dmig_obs::keys::EXEC_LOST_ITEMS,
    dmig_obs::keys::EXEC_DEGRADED_ROUNDS,
    dmig_obs::keys::EXEC_REDIRECTS,
    dmig_obs::keys::EXEC_CRASHES,
    dmig_obs::keys::EVENTS_EMITTED,
    dmig_obs::keys::EVENTS_DROPPED,
    dmig_obs::keys::EVENTS_ITEM_LOST,
];

fn parse_obs(args: &[String]) -> Result<ObsRequest, String> {
    Ok(ObsRequest {
        trace: args.iter().any(|a| a == "--trace"),
        metrics_out: optional_flag(args, "--metrics-out")?,
        trace_out: optional_flag(args, "--trace-out")?,
        trace_html: optional_flag(args, "--trace-html")?,
        history: optional_flag(args, "--history")?,
        events_out: optional_flag(args, "--events-out")?,
        crash_dump: optional_flag(args, "--crash-dump")?,
        serve: optional_flag(args, "--serve")?,
        serve_addr_file: optional_flag(args, "--serve-addr-file")?,
        live: std::cell::RefCell::new(None),
    })
}

impl ObsRequest {
    fn active(&self) -> bool {
        self.trace
            || self.metrics_out.is_some()
            || self.trace_out.is_some()
            || self.trace_html.is_some()
            || self.history.is_some()
            || self.serve.is_some()
            || self.events()
    }

    /// Whether the flight recorder itself was requested.
    fn events(&self) -> bool {
        self.events_out.is_some() || self.crash_dump.is_some()
    }

    /// Starts collection (clearing anything a previous `run` left behind).
    fn begin(&self) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        dmig_obs::reset();
        dmig_obs::set_enabled(true);
        for key in WELL_KNOWN_COUNTERS {
            dmig_obs::counter_add(key, 0);
        }
        // Live gauges start from a known state so the very first scrape
        // (or an early snapshot) already carries the full key set.
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::IDLE);
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_ROUND, 0);
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_ITEMS_DONE, 0);
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_SHARD_ACTIVE, 0);
        dmig_obs::counter_add(dmig_obs::keys::PROF_SAMPLES, 0);
        if let Some(addr) = &self.serve {
            let sampler = dmig_obs::sampler::start(dmig_obs::sampler::DEFAULT_INTERVAL);
            let server = match dmig_obs::serve::ObsServer::start(
                addr,
                dmig_obs::serve::ServeSource::Live,
                None,
            ) {
                Ok(s) => s,
                Err(e) => {
                    sampler.stop();
                    self.abandon();
                    return Err(format!("--serve: {e}"));
                }
            };
            if let Some(path) = &self.serve_addr_file {
                // Written *after* bind so a watcher reading the file can
                // immediately connect (port 0 is resolved by now).
                if let Err(e) = dmig_obs::fsio::atomic_write(
                    path,
                    format!("{}\n", server.local_addr()).as_bytes(),
                ) {
                    sampler.stop();
                    drop(server);
                    self.abandon();
                    return Err(format!("cannot write {path}: {e}"));
                }
            }
            *self.live.borrow_mut() = Some(LivePlane { server, sampler });
        }
        if self.events() {
            dmig_obs::events::reset();
            if let Some(path) = &self.events_out {
                // Atomic mode: the stream lands at `path` only when the
                // run completes, so a killed process never leaves a
                // half-written event file behind. (The workspace journal
                // wants the opposite discipline and uses `open_sink`.)
                if let Err(e) = dmig_obs::events::open_sink_atomic(path) {
                    self.abandon();
                    return Err(format!("cannot open {path}: {e}"));
                }
            }
            if let Some(path) = &self.crash_dump {
                dmig_obs::events::set_crash_path(Some(std::path::PathBuf::from(path)));
            }
            dmig_obs::events::set_enabled(true);
        }
        Ok(())
    }

    /// Disarms the flight recorder: stops emission, closes the sink, and
    /// clears the crash path so a later run cannot dump stale events.
    fn teardown_events(&self) {
        if self.events() {
            dmig_obs::events::set_enabled(false);
            dmig_obs::events::close_sink();
            dmig_obs::events::set_crash_path(None);
            dmig_obs::events::reset();
        }
    }

    /// Stops collection and emits the requested outputs: the span tree to
    /// stderr (`--trace`), the JSON snapshot (`--metrics-out`), the Chrome
    /// trace / HTML timeline (`--trace-out` / `--trace-html`), and the
    /// JSONL history entry (`--history`).
    fn finish(&self, run: &RunContext<'_>) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        // Mark completion while the recorder is still enabled, then stop
        // the live plane *before* disabling so a final scrape racing the
        // shutdown still sees a coherent (DONE) snapshot.
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::DONE);
        self.stop_live();
        dmig_obs::set_enabled(false);
        self.teardown_events();
        let snap = dmig_obs::snapshot();
        if self.trace {
            eprint!("{}", snap.render_tree());
        }
        if let Some(path) = &self.metrics_out {
            dmig_obs::fsio::atomic_write(path, snap.to_json().as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &self.trace_out {
            dmig_obs::fsio::atomic_write(path, trace::chrome_trace_of(&snap).as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &self.trace_html {
            let html =
                trace::html_timeline_with_disks(&trace::spans_of_snapshot(&snap), &run.disks);
            dmig_obs::fsio::atomic_write(path, html.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &self.history {
            let meta = history::RunMeta {
                git_rev: history::detect_git_rev(),
                threads: Some(run.threads as u64),
                hardware_threads: Some(hardware_threads()),
                instance: Some(history::fingerprint(run.instance_text)),
                wall_ms: Some(run.wall.as_secs_f64() * 1e3),
                source: run.source.to_string(),
            };
            history::append(path, &meta, &snap.flat_metrics())?;
        }
        Ok(())
    }

    /// Stops the sampler and HTTP listener started by `--serve` (no-op
    /// otherwise). Joining both threads here means no background thread
    /// outlives the command that spawned it.
    fn stop_live(&self) {
        if let Some(plane) = self.live.borrow_mut().take() {
            plane.sampler.stop();
            let served = plane.server.shutdown();
            dmig_obs::counter_add(dmig_obs::keys::SERVE_REQUESTS, served);
        }
    }

    /// Stops collection without emitting (the command failed mid-run).
    fn abandon(&self) {
        if self.active() {
            self.stop_live();
            dmig_obs::set_enabled(false);
            self.teardown_events();
        }
    }
}

/// Sets the per-solve summary gauges on the live recorder so gate rules
/// can compare round counts against the paper's lower bounds.
fn record_solve_gauges(problem: &MigrationProblem, rounds: usize) {
    dmig_obs::gauge_set(dmig_obs::keys::SOLVE_ROUNDS, rounds as u64);
    dmig_obs::gauge_set(dmig_obs::keys::SOLVE_LB1, bounds::lb1(problem) as u64);
    dmig_obs::gauge_set(dmig_obs::keys::SOLVE_LB2, bounds::lb2(problem) as u64);
}

fn cmd_solve(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("solve: missing instance file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let problem =
        instance::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let solver = pick_solver(args)?;
    let threads = parse_threads(args)?;
    let shards = parse_shards(args)?;
    let obs = parse_obs(args)?;
    obs.begin()?;
    dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::SOLVE);
    let started = Instant::now();
    // The sharded pipeline and the plain component-parallel path compute
    // the same schedule; --shards only changes how the work is grouped.
    let solved = match shards {
        Some(k) => dmig_core::shard::solve_sharded(
            &problem,
            dmig_core::shard::ShardConfig::with_shards(k),
            threads,
            |piece| solver.inner().solve(piece),
        )
        .map(|(schedule, _report)| schedule),
        None => solver.solve(&problem),
    };
    let schedule = match solved {
        Ok(s) => s,
        Err(e) => {
            obs.abandon();
            return Err(e.to_string());
        }
    };
    let wall = started.elapsed();
    if obs.active() {
        record_solve_gauges(&problem, schedule.makespan());
    }
    obs.finish(&RunContext {
        source: "cli-solve",
        threads,
        instance_text: &text,
        wall,
        disks: Vec::new(),
    })?;
    schedule
        .validate(&problem)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "{problem}");
    let _ = writeln!(
        out,
        "solver {}: {} rounds (lower bound {})",
        solver.inner().name(),
        schedule.makespan(),
        bounds::lower_bound(&problem)
    );
    let g = problem.graph();
    for (i, round) in schedule.rounds().iter().enumerate() {
        let items: Vec<String> = round
            .iter()
            .map(|&e| {
                let ep = g.endpoints(e);
                format!("{e}({}->{})", ep.u, ep.v)
            })
            .collect();
        let _ = writeln!(out, "round {i}: {}", items.join(" "));
    }
    Ok(out)
}

fn cmd_bounds(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("bounds: missing instance file")?;
    let problem = load(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "{problem}");
    let _ = writeln!(out, "LB1 (Δ' = max ⌈d_v/c_v⌉): {}", bounds::lb1(&problem));
    match bounds::lb2_witness(&problem) {
        Some(w) => {
            let _ = writeln!(out, "LB2 (Γ'): {}", w.bound);
            let nodes: Vec<String> = w.nodes.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                out,
                "  witness S = {{{}}} with |E(S)| = {}, Σc_v = {}",
                nodes.join(", "),
                w.internal_edges,
                w.capacity_sum
            );
        }
        None => {
            let _ = writeln!(out, "LB2 (Γ'): 0");
        }
    }
    let _ = writeln!(out, "lower bound: {}", bounds::lower_bound(&problem));
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("compare: missing instance file")?;
    let problem = load(path)?;
    let lb = bounds::lower_bound(&problem);
    let mut out = String::new();
    let _ = writeln!(out, "{problem}  lower bound {lb}");
    let _ = writeln!(out, "{:<20} {:>8} {:>10}", "solver", "rounds", "vs LB");
    for solver in all_solvers() {
        match solver.solve(&problem) {
            Ok(s) => {
                s.validate(&problem)
                    .map_err(|e| format!("{}: {e}", solver.name()))?;
                let ratio = if lb == 0 {
                    1.0
                } else {
                    s.makespan() as f64 / lb as f64
                };
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>9.3}x",
                    solver.name(),
                    s.makespan(),
                    ratio
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<20} {:>8} ({e})", solver.name(), "-");
            }
        }
    }
    Ok(out)
}

/// Parses the fault-execution flags of `simulate`: a [`FaultPlan`] from
/// `--faults FILE` plus the recovery policy (`--replan`, `--retry-max`).
/// The plan is checked against the instance, so a disk reference beyond
/// the cluster fails here with the offending `faults.toml` line.
fn parse_fault_args(
    args: &[String],
    problem: &MigrationProblem,
) -> Result<Option<(FaultPlan, ExecutorConfig)>, String> {
    let Some(fpath) = optional_flag(args, "--faults")? else {
        for flag in ["--replan", "--retry-max"] {
            if args.iter().any(|a| a == flag) {
                return Err(format!("simulate: {flag} requires --faults FILE"));
            }
        }
        return Ok(None);
    };
    let ftext = std::fs::read_to_string(&fpath).map_err(|e| format!("cannot read {fpath}: {e}"))?;
    let plan = FaultPlan::parse_checked(&ftext, problem.num_disks())
        .map_err(|e| format!("{fpath}: {e}"))?;
    let mut config = ExecutorConfig {
        replan: args.iter().any(|a| a == "--replan"),
        ..ExecutorConfig::default()
    };
    if let Some(n) = optional_flag(args, "--retry-max")? {
        config.retry_max = n.parse().map_err(|e| format!("bad --retry-max: {e}"))?;
    }
    Ok(Some((plan, config)))
}

/// Resolves `--bandwidths B0,B1,…` into a [`Cluster`] (uniform unit
/// bandwidth when absent).
fn parse_cluster(args: &[String], problem: &MigrationProblem) -> Result<Cluster, String> {
    match flag_value(args, "--bandwidths") {
        Some(spec) => {
            let bws: Result<Vec<f64>, _> = spec.split(',').map(str::parse::<f64>).collect();
            Ok(Cluster::from_bandwidths(
                bws.map_err(|e| format!("bad --bandwidths: {e}"))?,
            ))
        }
        None => Ok(Cluster::uniform(problem.num_disks(), 1.0)),
    }
}

/// Assembles the data the attribution engine needs: per-disk degree and
/// capacity, the LB2 witness, and the schedule's per-round busy profile
/// under the round model.
fn explain_input(
    problem: &MigrationProblem,
    schedule: &dmig_core::MigrationSchedule,
    cluster: &Cluster,
) -> Result<dmig_obs::explain::ExplainInput, String> {
    use dmig_obs::explain::{DiskLoad, ExplainInput, WitnessSet};
    let g = problem.graph();
    let caps = problem.capacities();
    let disks = g
        .nodes()
        .map(|v| DiskLoad {
            degree: g.degree(v) as u64,
            capacity: u64::from(caps.get(v)),
        })
        .collect();
    let witness = bounds::lb2_witness(problem).map(|w| WitnessSet {
        nodes: w.nodes.iter().map(|n| n.index()).collect(),
        internal_edges: w.internal_edges,
        capacity_sum: w.capacity_sum,
        bound: w.bound as u64,
    });
    let rounds =
        dmig_sim::engine::round_profile(problem, schedule, cluster).map_err(|e| e.to_string())?;
    Ok(ExplainInput {
        disks,
        witness,
        rounds,
    })
}

/// Publishes the attribution summary gauges so gate rules can check the
/// binding bound against the solver's `solve.lb1`/`solve.lb2`.
fn record_explain_gauges(attr: &dmig_obs::explain::Attribution) {
    dmig_obs::gauge_set(dmig_obs::keys::EXPLAIN_BINDING_BOUND, attr.binding_bound);
    if let Some(d) = attr.lb1_disk {
        dmig_obs::gauge_set(dmig_obs::keys::EXPLAIN_LB1_DISK, d as u64);
    }
}

fn cmd_simulate(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("simulate: missing instance file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let problem =
        instance::parse_instance(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let solver = pick_solver(args)?;
    let cluster = parse_cluster(args, &problem)?;
    let faulted = parse_fault_args(args, &problem)?;
    let report_out = optional_flag(args, "--report-out")?;
    let obs = parse_obs(args)?;
    let progress = args.iter().any(|a| a == "--progress");
    obs.begin()?;
    dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::SOLVE);
    if progress {
        dmig_sim::progress::set_progress(true);
    }
    let started = Instant::now();
    let run =
        solver
            .solve(&problem)
            .map_err(|e| e.to_string())
            .and_then(|schedule| match &faulted {
                Some((plan, config)) => {
                    dmig_sim::execute(&problem, &schedule, &cluster, plan, config, &solver)
                        .map(|r| (schedule, r.sim.clone(), Some(r)))
                        .map_err(|e| e.to_string())
                }
                None => simulate_rounds(&problem, &schedule, &cluster)
                    .map(|report| (schedule, report, None))
                    .map_err(|e| e.to_string()),
            });
    let wall = started.elapsed();
    if progress {
        dmig_sim::progress::set_progress(false);
    }
    let (schedule, report, exec) = match run {
        Ok(triple) => triple,
        Err(e) => {
            obs.abandon();
            return Err(e);
        }
    };
    // Attribution explains the planned schedule under the round model —
    // with faults injected, the executed timeline may differ, but the
    // bounds and binding chain are properties of the plan.
    let explain = if args.iter().any(|a| a == "--explain") {
        let input = match explain_input(&problem, &schedule, &cluster) {
            Ok(i) => i,
            Err(e) => {
                obs.abandon();
                return Err(e);
            }
        };
        let attr = dmig_obs::explain::attribute(&input);
        Some((attr, input))
    } else {
        None
    };
    if obs.active() {
        record_solve_gauges(&problem, schedule.makespan());
        if let Some((attr, _)) = &explain {
            record_explain_gauges(attr);
        }
    }
    let disks: Vec<trace::DiskUtilRow> = report
        .disk_busy
        .iter()
        .enumerate()
        .map(|(v, &busy)| trace::DiskUtilRow {
            disk: v,
            busy,
            utilization: report.disk_utilization(v),
        })
        .collect();
    obs.finish(&RunContext {
        source: if exec.is_some() {
            "cli-simulate-faults"
        } else {
            "cli-simulate"
        },
        threads: parse_threads(args)?,
        instance_text: &text,
        wall,
        disks,
    })?;
    if let Some(out_path) = &report_out {
        let json = exec
            .as_ref()
            .map_or_else(|| report.to_json(), dmig_sim::ExecReport::to_json);
        dmig_obs::fsio::atomic_write(out_path, json.as_bytes())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{problem}");
    let _ = writeln!(
        out,
        "solver {}: {} rounds",
        solver.inner().name(),
        schedule.makespan()
    );
    let _ = writeln!(
        out,
        "wall-clock time {:.3}, mean utilization {:.1}%, throughput {:.3}",
        report.total_time,
        report.mean_utilization() * 100.0,
        report.throughput()
    );
    if let Some(r) = &exec {
        let _ = writeln!(
            out,
            "items: {} delivered ({} redirected), {} lost ({} dead-disk, {} retries-exhausted)",
            r.delivered(),
            r.redirected(),
            r.lost(),
            r.lost_because(dmig_sim::LostReason::DeadDisk),
            r.lost_because(dmig_sim::LostReason::RetriesExhausted),
        );
        let _ = writeln!(
            out,
            "recovery: {} replans, {} retries, {} crashes, {} degraded rounds",
            r.replans, r.retries, r.crashes, r.degraded_rounds
        );
    }
    if let Some((attr, input)) = &explain {
        out.push('\n');
        out.push_str(&attr.render_text(&input.disks));
    }
    Ok(out)
}

fn cmd_stats(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("stats: missing instance file")?;
    let problem = load(path)?;
    let s = dmig_graph::stats::graph_stats(problem.graph());
    let caps = problem.capacities();
    let mut out = String::new();
    let _ = writeln!(out, "{problem}");
    let _ = writeln!(out, "nodes: {}  edges: {}", s.num_nodes, s.num_edges);
    let _ = writeln!(
        out,
        "degree: min {} / mean {:.2} / max {}  multiplicity: {}",
        s.min_degree, s.mean_degree, s.max_degree, s.max_multiplicity
    );
    let _ = writeln!(
        out,
        "components: {}  isolated: {}  bipartite: {}  simple: {}",
        s.components, s.isolated_nodes, s.bipartite, s.simple
    );
    let _ = writeln!(
        out,
        "capacities: min {} / max {}  all even: {}",
        caps.min().unwrap_or(0),
        caps.max().unwrap_or(0),
        caps.all_even()
    );
    let _ = writeln!(
        out,
        "LB1 (Δ') = {}  LB2 (Γ') = {}",
        bounds::lb1(&problem),
        bounds::lb2(&problem)
    );
    Ok(out)
}

fn cmd_dot(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("dot: missing instance file")?;
    let problem = load(path)?;
    Ok(dmig_graph::io::to_dot(problem.graph()))
}

fn cmd_import_trace(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("import-trace: missing trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = dmig_workloads::trace::parse_trace(&text).map_err(|e| e.to_string())?;
    let cap: u32 = flag_value(args, "--default-cap")
        .map_or(Ok(1), str::parse)
        .map_err(|e| format!("bad --default-cap: {e}"))?;
    let problem =
        dmig_core::MigrationProblem::uniform(trace.graph, cap).map_err(|e| e.to_string())?;
    Ok(instance::to_instance_text(&problem))
}

fn cmd_obs(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("gate") => cmd_obs_gate(&args[1..]),
        Some("export-trace") => cmd_obs_export_trace(&args[1..]),
        Some("flame") => cmd_obs_flame(&args[1..]),
        Some("explain") => cmd_obs_explain(&args[1..]),
        Some("compact") => cmd_obs_compact(&args[1..]),
        Some("serve") => cmd_obs_serve(&args[1..]),
        Some(other) => Err(format!(
            "obs: unknown subcommand `{other}` (expected diff, gate, export-trace, flame, explain, compact, or serve)"
        )),
        None => Err(
            "obs: expected a subcommand: diff, gate, export-trace, flame, explain, compact, or serve"
                .to_string(),
        ),
    }
}

/// `dmig obs explain <instance>`: solves the instance, replays the
/// schedule's per-round busy profile, and prints which disk realizes LB1,
/// which witness realizes LB2, and the per-disk binding-chain ranking
/// (`--json` for the machine-readable `dmig-explain/1` form).
fn cmd_obs_explain(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("obs explain: missing instance file")?;
    let problem = load(path)?;
    let solver = pick_solver(args)?;
    let schedule = solver.solve(&problem).map_err(|e| e.to_string())?;
    let cluster = parse_cluster(args, &problem)?;
    let input = explain_input(&problem, &schedule, &cluster)?;
    let attr = dmig_obs::explain::attribute(&input);
    let rendered = if args.iter().any(|a| a == "--json") {
        attr.to_json()
    } else {
        attr.render_text(&input.disks)
    };
    match optional_flag(args, "--out")? {
        Some(out_path) => {
            dmig_obs::fsio::atomic_write(&out_path, rendered.as_bytes())
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            Ok(format!("wrote explanation to {out_path}\n"))
        }
        None => Ok(rendered),
    }
}

/// Functions available in gate/diff expressions: the numeric basics plus
/// the paper's closed forms (Theorem 4.1 operation counts per quota level).
fn gate_functions() -> gate::FunctionRegistry {
    let mut f = gate::FunctionRegistry::default();
    f.register("quota_flow_solves", 1, |a| {
        dmig_flow::quota_flow_solves(a[0].max(0.0) as usize) as f64
    });
    f.register("quota_euler_splits", 1, |a| {
        dmig_flow::quota_euler_splits(a[0].max(0.0) as usize) as f64
    });
    f
}

/// Flattens the metric-bearing parts of a `dmig-obs/1` snapshot document:
/// counters and gauges verbatim, histograms as `.count/.sum/.mean/.min/.max`
/// (mirroring `Snapshot::flat_metrics`).
fn snapshot_doc_metrics(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for section in ["counters", "gauges"] {
        if let Some(obj) = doc.get_path(section).and_then(Value::as_object) {
            for (k, v) in obj {
                if let Some(x) = v.as_f64() {
                    out.insert(k.clone(), x);
                }
            }
        }
    }
    if let Some(hists) = doc.get_path("histograms").and_then(Value::as_object) {
        for (k, h) in hists {
            for field in ["count", "sum", "min", "max"] {
                if let Some(x) = h.get_path(field).and_then(Value::as_f64) {
                    out.insert(format!("{k}.{field}"), x);
                }
            }
            if let (Some(count), Some(sum)) = (
                h.get_path("count").and_then(Value::as_f64),
                h.get_path("sum").and_then(Value::as_f64),
            ) {
                if count > 0.0 {
                    out.insert(format!("{k}.mean"), sum / count);
                }
            }
        }
    }
    out
}

/// Loads a metrics map from `path`, which may be a `dmig-obs/1` snapshot,
/// a `dmig-history/1` JSONL file (optionally addressed as `FILE@N` for the
/// Nth-from-last entry), or any other JSON document (flattened with
/// dot-joined keys — the `BENCH_perf.json` case).
fn load_metrics(spec: &str) -> Result<BTreeMap<String, f64>, String> {
    let (path, entry_back) = match spec.rsplit_once('@') {
        Some((p, n)) if !p.is_empty() && n.chars().all(|c| c.is_ascii_digit()) => {
            (p, n.parse::<usize>().unwrap_or(0))
        }
        _ => (spec, 0),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(doc) = Value::parse(&text) {
        return Ok(match doc.get_path("schema").and_then(Value::as_str) {
            Some("dmig-obs/1") => snapshot_doc_metrics(&doc),
            Some(history::HISTORY_SCHEMA) => history::entry_metrics(&doc),
            _ => doc.flatten(),
        });
    }
    // Not a single JSON document — try JSONL history.
    let (entries, _skipped) = history::read_entries(path)?;
    if entries.is_empty() {
        return Err(format!(
            "{path}: neither a JSON document nor a JSONL history"
        ));
    }
    let idx = entries.len().checked_sub(1 + entry_back).ok_or_else(|| {
        format!(
            "{path}: only {} entries, @{entry_back} is out of range",
            entries.len()
        )
    })?;
    Ok(history::entry_metrics(&entries[idx]))
}

fn cmd_obs_diff(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [old_spec, new_spec] = pos.as_slice() else {
        return Err("obs diff: expected exactly two metrics files".to_string());
    };
    let tolerance = match optional_flag(args, "--tolerance")? {
        Some(t) => t
            .parse::<f64>()
            .map_err(|e| format!("bad --tolerance: {e}"))?,
        // Default noise floor: timing metrics jitter run to run; 5% keeps
        // the diff focused on real movement.
        None => 0.05,
    };
    let old = load_metrics(old_spec)?;
    let new = load_metrics(new_spec)?;
    let d = diff::diff_metrics(&old, &new, tolerance);
    Ok(d.render(!args.iter().any(|a| a == "--all")))
}

fn cmd_obs_gate(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [rules_path, metrics_spec] = pos.as_slice() else {
        return Err("obs gate: expected <rules.toml> <metrics-file>".to_string());
    };
    let rules_text = std::fs::read_to_string(rules_path)
        .map_err(|e| format!("cannot read {rules_path}: {e}"))?;
    let mut rules = gate::parse_rules(&rules_text).map_err(|e| format!("{rules_path}: {e}"))?;
    if let Some(t) = optional_flag(args, "--tolerance")? {
        rules.default_tolerance = t
            .parse::<f64>()
            .map_err(|e| format!("bad --tolerance: {e}"))?;
    }
    let mut metrics = load_metrics(metrics_spec)?;
    if let Some(baseline_spec) = optional_flag(args, "--baseline")? {
        // Baseline metrics join the namespace under a `baseline.` prefix so
        // rules can express drift bounds like
        // `sim.rounds <= baseline.sim.rounds * 1.1`. Current-run keys win on
        // the (pathological) chance of a collision.
        for (k, v) in load_metrics(&baseline_spec)? {
            metrics.entry(format!("baseline.{k}")).or_insert(v);
        }
    }
    let report = gate::evaluate(&rules, &metrics, &gate_functions());
    let rendered = if args.iter().any(|a| a == "--explain") {
        report.render_explained()
    } else {
        report.render()
    };
    if report.failed() {
        Err(format!("perf gate failed\n{rendered}"))
    } else {
        Ok(rendered)
    }
}

/// `dmig obs serve <snapshot.json>` — serve a saved metrics snapshot over
/// HTTP: `/metrics` in Prometheus text exposition, `/snapshot` as the
/// original JSON. Blocks until `--requests N` requests have been served
/// (without `--requests` it runs until killed).
fn cmd_obs_serve(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("obs serve: missing snapshot file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snapshot =
        dmig_obs::serve::snapshot_from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let addr = optional_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:9464".to_string());
    let max_requests = match optional_flag(args, "--requests")? {
        Some(n) => Some(
            n.parse::<u64>()
                .map_err(|e| format!("bad --requests: {e}"))?,
        ),
        None => None,
    };
    let server = dmig_obs::serve::ObsServer::start(
        &addr,
        dmig_obs::serve::ServeSource::Fixed {
            snapshot,
            raw: text,
        },
        max_requests,
    )?;
    let local = server.local_addr();
    if let Some(addr_file) = optional_flag(args, "--addr-file")? {
        dmig_obs::fsio::atomic_write(&addr_file, format!("{local}\n").as_bytes())
            .map_err(|e| format!("cannot write {addr_file}: {e}"))?;
    }
    let served = server.join();
    Ok(format!("served {served} request(s) on http://{local}\n"))
}

fn cmd_obs_export_trace(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos
        .first()
        .ok_or("obs export-trace: missing snapshot file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let spans = trace::spans_of_snapshot_value(&doc).map_err(|e| format!("{path}: {e}"))?;
    let chrome = trace::chrome_trace(&spans);
    let stats = if args.iter().any(|a| a == "--check") {
        Some(trace::validate_chrome_trace(&chrome).map_err(|e| format!("invalid trace: {e}"))?)
    } else {
        None
    };
    let mut out = String::new();
    if let Some(html_path) = optional_flag(args, "--html")? {
        dmig_obs::fsio::atomic_write(&html_path, trace::html_timeline(&spans).as_bytes())
            .map_err(|e| format!("cannot write {html_path}: {e}"))?;
        let _ = writeln!(out, "wrote HTML timeline to {html_path}");
    }
    match optional_flag(args, "--out")? {
        Some(out_path) => {
            dmig_obs::fsio::atomic_write(&out_path, chrome.as_bytes())
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            let _ = writeln!(out, "wrote Chrome trace to {out_path}");
            if let Some(s) = stats {
                let _ = writeln!(
                    out,
                    "checked: {} begin / {} end events, {} open, {} track(s)",
                    s.begins,
                    s.ends,
                    s.open,
                    s.tracks.len()
                );
            }
        }
        // No --out: the trace itself is the output, pipeable to a file.
        None => out.push_str(&chrome),
    }
    Ok(out)
}

fn cmd_obs_flame(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("obs flame: missing snapshot file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let spans = trace::spans_of_snapshot_value(&doc).map_err(|e| format!("{path}: {e}"))?;
    let table = trace::render_rollup_text(&trace::self_time_rollup(&spans));
    match optional_flag(args, "--out")? {
        Some(out_path) => {
            dmig_obs::fsio::atomic_write(&out_path, table.as_bytes())
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            Ok(format!("wrote self-time rollup to {out_path}\n"))
        }
        None => Ok(table),
    }
}

fn cmd_obs_compact(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("obs compact: missing history file")?;
    let keep: usize = optional_flag(args, "--keep")?
        .ok_or("obs compact: --keep N is required")?
        .parse()
        .map_err(|e| format!("bad --keep: {e}"))?;
    let (kept, dropped) = history::compact(path, keep)?;
    Ok(format!(
        "compacted {path}: kept {kept} entr{}, dropped {dropped}\n",
        if kept == 1 { "y" } else { "ies" }
    ))
}

fn cmd_generate(args: &[String]) -> Result<String, String> {
    use dmig_workloads::{capacities, disk_ops, random, reconfigure};
    let pos = positional(args);
    let kind = pos.first().ok_or("generate: missing kind")?;
    let seed: u64 = flag_value(args, "--seed")
        .map_or(Ok(42), str::parse)
        .map_err(|e| format!("bad --seed: {e}"))?;
    let num = |i: usize, what: &str| -> Result<usize, String> {
        pos.get(i)
            .ok_or_else(|| format!("generate {kind}: missing {what}"))?
            .parse::<usize>()
            .map_err(|_| format!("generate {kind}: invalid {what}"))
    };
    let problem = match *kind {
        "k3" => {
            let m = num(1, "M")?;
            let cap = num(2, "cap")?;
            MigrationProblem::uniform(
                dmig_graph::builder::complete_multigraph(3, m),
                u32::try_from(cap).map_err(|_| "cap too large")?,
            )
        }
        "uniform" => {
            let n = num(1, "n")?;
            let m = num(2, "m")?;
            let lo = u32::try_from(num(3, "lo")?).map_err(|_| "lo too large")?;
            let hi = u32::try_from(num(4, "hi")?).map_err(|_| "hi too large")?;
            let g = random::uniform_multigraph(n, m, seed);
            MigrationProblem::new(g, capacities::mixed_parity(n, lo, hi, seed))
        }
        "clustered" => {
            let n = num(1, "n")?;
            let m = num(2, "m")?;
            let clusters = num(3, "clusters")?;
            // 8 parallel ring links per block boundary and half_max 3 even
            // caps match the bench corpus (`clustered_giant`), so CI can
            // regenerate its instances from the CLI alone. Pre-validate
            // what the generator would assert.
            const INTER_PER_LINK: usize = 8;
            if clusters == 0 || n / clusters < 2 {
                return Err(format!(
                    "generate clustered: need at least 2 nodes per cluster \
                     ({n} nodes / {clusters} clusters)"
                ));
            }
            let ring = if clusters > 1 {
                clusters * INTER_PER_LINK
            } else {
                0
            };
            let base = (n - clusters) + ring;
            if m < base {
                return Err(format!(
                    "generate clustered: need at least {base} edges for \
                     {clusters} connected clusters, got {m}"
                ));
            }
            let g = random::clustered_multigraph(n, m, clusters, INTER_PER_LINK, seed);
            MigrationProblem::new(g, capacities::random_even(n, 3, seed ^ 1))
        }
        "rebalance" => {
            let n = num(1, "n")?;
            let items = num(2, "items")?;
            let cap = u32::try_from(num(3, "cap")?).map_err(|_| "cap too large")?;
            MigrationProblem::uniform(reconfigure::load_balance_delta(n, items, seed), cap)
        }
        "add" => {
            let old = num(1, "old")?;
            let new = num(2, "new")?;
            let items = num(3, "items")?;
            let cap = u32::try_from(num(4, "cap")?).map_err(|_| "cap too large")?;
            MigrationProblem::uniform(disk_ops::disk_addition(old, new, items, seed), cap)
        }
        "remove" => {
            let n = num(1, "n")?;
            let gone = num(2, "gone")?;
            let items = num(3, "items")?;
            let cap = u32::try_from(num(4, "cap")?).map_err(|_| "cap too large")?;
            MigrationProblem::uniform(disk_ops::disk_removal(n, gone, items, seed), cap)
        }
        other => return Err(format!("unknown generate kind `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    Ok(instance::to_instance_text(&problem))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> CliOutcome {
        run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("dmig-cli-test-{name}-{}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const K3: &str = "nodes 3\ncaps 2 2 2\nedge 0 1\nedge 1 2\nedge 0 2\n";

    #[test]
    fn help_by_default() {
        let out = run_str(&[]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("usage"));
        assert_eq!(run_str(&["help"]).code, 0);
    }

    #[test]
    fn unknown_command_errors() {
        let out = run_str(&["frobnicate"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("unknown command"));
    }

    #[test]
    fn solve_roundtrip() {
        let path = write_temp("solve", K3);
        let out = run_str(&["solve", &path]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("rounds"));
        assert!(out.stdout.contains("round 0:"));
    }

    #[test]
    fn solve_with_named_solver() {
        let path = write_temp("solve2", K3);
        let out = run_str(&["solve", &path, "--solver", "greedy"]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("solver greedy"));
        let bad = run_str(&["solve", &path, "--solver", "nope"]);
        assert_eq!(bad.code, 1);
    }

    #[test]
    fn bounds_reports_witness() {
        let path = write_temp("bounds", K3);
        let out = run_str(&["bounds", &path]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("LB1"));
        assert!(out.stdout.contains("witness"));
    }

    #[test]
    fn compare_lists_all_solvers() {
        let path = write_temp("compare", K3);
        let out = run_str(&["compare", &path]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        for name in [
            "auto",
            "even-optimal",
            "general",
            "saia-1.5",
            "homogeneous",
            "greedy",
        ] {
            assert!(
                out.stdout.contains(name),
                "missing {name} in:\n{}",
                out.stdout
            );
        }
    }

    #[test]
    fn simulate_reports_time() {
        let path = write_temp("simulate", K3);
        let out = run_str(&["simulate", &path, "--bandwidths", "1,1,1"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("wall-clock time"));
    }

    #[test]
    fn generate_then_solve() {
        let gen = run_str(&["generate", "k3", "3", "2"]);
        assert_eq!(gen.code, 0);
        let path = write_temp("gen", &gen.stdout);
        let out = run_str(&["solve", &path]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.contains("3 rounds") || out.stdout.contains("rounds"));
    }

    #[test]
    fn generate_kinds() {
        for args in [
            vec!["generate", "uniform", "8", "30", "1", "4", "--seed", "7"],
            vec!["generate", "clustered", "40", "400", "4", "--seed", "3"],
            vec!["generate", "rebalance", "6", "40", "2"],
            vec!["generate", "add", "6", "2", "30", "3"],
            vec!["generate", "remove", "8", "2", "30", "3"],
        ] {
            let out = run_str(&args);
            assert_eq!(out.code, 0, "{args:?}: {}", out.stdout);
            assert!(instance::parse_instance(&out.stdout).is_ok());
        }
        assert_eq!(run_str(&["generate", "mystery"]).code, 1);
    }

    #[test]
    fn generate_clustered_validates_shape() {
        // Too few edges for the spanning paths plus the ring.
        let out = run_str(&["generate", "clustered", "40", "10", "4"]);
        assert_eq!(out.code, 1, "{}", out.stdout);
        assert!(out.stdout.contains("need at least"), "{}", out.stdout);
        // Fewer than two nodes per cluster.
        let out = run_str(&["generate", "clustered", "4", "100", "4"]);
        assert_eq!(out.code, 1, "{}", out.stdout);
        assert!(out.stdout.contains("per cluster"), "{}", out.stdout);
    }

    #[test]
    fn stats_command() {
        let path = write_temp("stats", K3);
        let out = run_str(&["stats", &path]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("bipartite: false"));
        assert!(out.stdout.contains("all even: true"));
        assert!(out.stdout.contains("LB1"));
    }

    #[test]
    fn dot_command() {
        let path = write_temp("dot", K3);
        let out = run_str(&["dot", &path]);
        assert_eq!(out.code, 0);
        assert!(out.stdout.starts_with("graph transfer {"));
        assert_eq!(out.stdout.matches("--").count(), 3);
    }

    #[test]
    fn exact_solver_via_cli() {
        let path = write_temp("exact", K3);
        let out = run_str(&["solve", &path, "--solver", "exact"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("solver exact"));
    }

    #[test]
    fn import_trace_command() {
        let path = write_temp("trace", "item 0 1\nitem 1 2 0.5\nitem 0 2\n");
        let out = run_str(&["import-trace", &path, "--default-cap", "2"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let p = instance::parse_instance(&out.stdout).unwrap();
        assert_eq!(p.num_items(), 3);
        assert_eq!(p.capacities().as_slice(), &[2, 2, 2]);
        let bad = run_str(&["import-trace", &path, "--default-cap", "x"]);
        assert_eq!(bad.code, 1);
    }

    #[test]
    fn threads_flag_does_not_change_output() {
        // Multi-component instance: two independent pairs.
        let path = write_temp(
            "threads",
            "nodes 4\ncaps 2 2 2 2\nedge 0 1\nedge 0 1\nedge 2 3\nedge 2 3\n",
        );
        let one = run_str(&["solve", &path, "--threads", "1"]);
        assert_eq!(one.code, 0, "{}", one.stdout);
        for n in ["2", "4"] {
            let many = run_str(&["solve", &path, "--threads", n]);
            assert_eq!(one, many, "output differs at --threads {n}");
        }
        assert!(one.stdout.contains("solver auto"));
    }

    #[test]
    fn shards_flag_does_not_change_output() {
        // A heavy-ish path next to an independent pair, so sharding has
        // both a component split and (at the default cell budget) nothing
        // to cut: every --shards K must reproduce the plain schedule.
        let mut inst = String::from("nodes 22\ncaps");
        for _ in 0..22 {
            inst.push_str(" 2");
        }
        inst.push('\n');
        for i in 0..19 {
            let _ = writeln!(inst, "edge {i} {}", i + 1);
        }
        inst.push_str("edge 20 21\nedge 20 21\n");
        let path = write_temp("shards", &inst);
        let plain = run_str(&["solve", &path]);
        assert_eq!(plain.code, 0, "{}", plain.stdout);
        for k in ["1", "2", "4"] {
            for threads in ["1", "4"] {
                let sharded = run_str(&["solve", &path, "--shards", k, "--threads", threads]);
                assert_eq!(
                    plain, sharded,
                    "output differs at --shards {k} --threads {threads}"
                );
            }
        }
    }

    #[test]
    fn bad_shards_is_clean_error() {
        let path = write_temp("shards-bad", K3);
        for bad in ["0", "-2", "many"] {
            let out = run_str(&["solve", &path, "--shards", bad]);
            assert_eq!(out.code, 1, "--shards {bad} accepted: {}", out.stdout);
            assert!(out.stdout.contains("--shards"));
        }
        let out = run_str(&["solve", &path, "--shards"]);
        assert_eq!(out.code, 1, "dangling --shards accepted: {}", out.stdout);
        assert!(out.stdout.contains("missing value"));
    }

    #[test]
    fn bad_threads_is_clean_error() {
        let path = write_temp("threads-bad", K3);
        for bad in ["0", "-1", "lots"] {
            let out = run_str(&["solve", &path, "--threads", bad]);
            assert_eq!(out.code, 1, "--threads {bad} accepted: {}", out.stdout);
            assert!(out.stdout.contains("--threads"));
        }
        // A dangling flag is an error, not a silent fallback to the default.
        let out = run_str(&["solve", &path, "--threads"]);
        assert_eq!(out.code, 1, "dangling --threads accepted: {}", out.stdout);
        assert!(out.stdout.contains("missing value"));
    }

    #[test]
    fn parallel_solver_selectable_by_name() {
        let path = write_temp("parallel-name", K3);
        let out = run_str(&["solve", &path, "--solver", "parallel", "--threads", "2"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("solver parallel"));
    }

    #[test]
    fn missing_file_is_clean_error() {
        let out = run_str(&["solve", "/no/such/file"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.starts_with("error:"));
    }

    #[test]
    fn help_documents_observability_and_threads() {
        let help = run_str(&["help"]).stdout;
        for flag in ["--threads", "--trace", "--metrics-out", "--shards"] {
            assert!(help.contains(flag), "usage() missing {flag}");
        }
        assert!(help.contains("clustered"), "usage() missing clustered kind");
    }

    /// The recorder is process-global; tests that enable it must not
    /// overlap, or one test's `reset` clears another's counters mid-run.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn trace_flag_leaves_stdout_unchanged() {
        let _g = obs_lock();
        let path = write_temp("trace-flag", K3);
        let plain = run_str(&["solve", &path]);
        // The span tree goes to stderr; stdout must be byte-identical.
        assert_eq!(plain, run_str(&["solve", &path, "--trace"]));
        assert_eq!(plain.code, 0, "{}", plain.stdout);
        let sim_plain = run_str(&["simulate", &path]);
        assert_eq!(sim_plain, run_str(&["simulate", &path, "--trace"]));
    }

    #[test]
    fn metrics_out_writes_json_snapshot() {
        let _g = obs_lock();
        let instance = write_temp("metrics-in", K3);
        let out_path =
            std::env::temp_dir().join(format!("dmig-cli-test-metrics-{}.json", std::process::id()));
        let out_str = out_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &instance, "--metrics-out", &out_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let json = std::fs::read_to_string(&out_path).unwrap();
        for key in [
            "\"schema\"",
            "\"flow_solves\"",
            "\"euler_splits\"",
            "\"warm_start_hits\"",
            "\"spans\"",
            "solve_even",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn simulate_metrics_include_sim_counters() {
        let _g = obs_lock();
        let instance = write_temp("sim-metrics-in", K3);
        let out_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-sim-metrics-{}.json",
            std::process::id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let out = run_str(&["simulate", &instance, "--metrics-out", &out_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"sim.rounds\""), "{json}");
        assert!(json.contains("simulate_rounds"), "{json}");
        std::fs::remove_file(&out_path).ok();
    }

    /// Acceptance: a 1k-node instance solved with `--threads 4` exports a
    /// Chrome trace that parses, keeps B/E stack discipline and per-track
    /// timestamp order, and carries spans on at least two distinct tracks
    /// (coordinator + worker, thanks to cross-thread span parenting).
    #[test]
    fn trace_out_spans_multiple_tracks() {
        let _g = obs_lock();
        // 500 independent two-disk components, two parallel transfers each.
        let mut inst = String::from("nodes 1000\ncaps");
        for _ in 0..1000 {
            inst.push_str(" 2");
        }
        inst.push('\n');
        for i in 0..500 {
            let (u, v) = (2 * i, 2 * i + 1);
            let _ = writeln!(inst, "edge {u} {v}\nedge {u} {v}");
        }
        let path = write_temp("trace-out-in", &inst);
        let out_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-trace-out-{}.json",
            std::process::id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &path, "--threads", "4", "--trace-out", &out_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let text = std::fs::read_to_string(&out_path).unwrap();
        let stats = dmig_obs::trace::validate_chrome_trace(&text).expect("exported trace valid");
        assert!(stats.begins >= 500, "component spans present: {stats:?}");
        assert!(
            stats.tracks.len() >= 2,
            "expected spans on >= 2 tracks, got {:?}",
            stats.tracks
        );
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn trace_html_writes_timeline() {
        let _g = obs_lock();
        let instance = write_temp("trace-html-in", K3);
        let out_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-trace-html-{}.html",
            std::process::id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &instance, "--trace-html", &out_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let html = std::fs::read_to_string(&out_path).unwrap();
        assert!(html.starts_with("<!doctype html>"));
        assert!(
            html.contains("solve_even") || html.contains("solve_split"),
            "{html}"
        );
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn history_appends_one_entry_per_run() {
        let _g = obs_lock();
        let instance = write_temp("history-in", K3);
        let hist_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-history-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&hist_path).ok();
        let hist_str = hist_path.to_string_lossy().into_owned();
        for _ in 0..2 {
            let out = run_str(&["solve", &instance, "--history", &hist_str]);
            assert_eq!(out.code, 0, "{}", out.stdout);
        }
        let (entries, skipped) = dmig_obs::history::read_entries(&hist_str).unwrap();
        assert_eq!(entries.len(), 2, "exactly one entry per run");
        assert_eq!(skipped, 0);
        let m = dmig_obs::history::entry_metrics(&entries[1]);
        assert!(m.contains_key("flow_solves"), "{m:?}");
        // K3 with caps 2: every disk's degree equals its cap -> one round.
        assert_eq!(m.get("solve.rounds").copied(), Some(1.0), "{m:?}");
        // Both runs solved the same instance text -> same fingerprint.
        let fp0 = entries[0].get_path("instance").and_then(Value::as_str);
        let fp1 = entries[1].get_path("instance").and_then(Value::as_str);
        assert!(fp0.is_some() && fp0 == fp1);
        std::fs::remove_file(&hist_path).ok();
    }

    #[test]
    fn obs_gate_exit_codes() {
        let rules = write_temp(
            "gate-rules",
            "[[rule]]\nname = \"speedup floor\"\nexpr = \"thread_speedup >= 1.5\"\n\
             when = \"hardware_threads >= 4\"\n",
        );
        let good = write_temp(
            "gate-good",
            "{\"thread_speedup\": 2.1, \"hardware_threads\": 8}",
        );
        let bad = write_temp(
            "gate-bad",
            "{\"thread_speedup\": 0.7, \"hardware_threads\": 8}",
        );
        let low = write_temp("gate-low", "{\"hardware_threads\": 2}");

        let ok = run_str(&["obs", "gate", &rules, &good]);
        assert_eq!(ok.code, 0, "{}", ok.stdout);
        assert!(ok.stdout.contains("PASS"));

        let fail = run_str(&["obs", "gate", &rules, &bad]);
        assert_eq!(fail.code, 1, "regressed metrics must gate nonzero");
        assert!(fail.stdout.contains("FAIL"), "{}", fail.stdout);

        // Low-core host: guard false -> skipped, exit zero, and the null
        // speedup (absent metric) never reaches the expression.
        let skip = run_str(&["obs", "gate", &rules, &low]);
        assert_eq!(skip.code, 0, "{}", skip.stdout);
        assert!(skip.stdout.contains("skip"), "{}", skip.stdout);
    }

    #[test]
    fn obs_gate_closed_forms_available() {
        let rules = write_temp(
            "gate-cf-rules",
            "[[rule]]\nname = \"flow solves closed form\"\n\
             expr = \"flow_solves == quota_flow_solves(rounds)\"\n",
        );
        let metrics = write_temp(
            "gate-cf-metrics",
            // quota_flow_solves(4) = one flow solve per odd level = 2.
            &format!(
                "{{\"flow_solves\": {}, \"rounds\": 4}}",
                dmig_flow::quota_flow_solves(4)
            ),
        );
        let out = run_str(&["obs", "gate", &rules, &metrics]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("PASS"));
    }

    #[test]
    fn obs_diff_reports_changes_only() {
        let old = write_temp("diff-old", "{\"rounds\": 10, \"flow_solves\": 5}");
        let new = write_temp("diff-new", "{\"rounds\": 12, \"flow_solves\": 5}");
        let out = run_str(&["obs", "diff", &old, &new]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("rounds"), "{}", out.stdout);
        assert!(
            !out.stdout.contains("flow_solves"),
            "unchanged metric hidden by default:\n{}",
            out.stdout
        );
        let all = run_str(&["obs", "diff", &old, &new, "--all"]);
        assert!(all.stdout.contains("flow_solves"), "{}", all.stdout);
    }

    #[test]
    fn obs_export_trace_roundtrip() {
        let _g = obs_lock();
        let instance = write_temp("export-in", K3);
        let snap_path =
            std::env::temp_dir().join(format!("dmig-cli-test-export-{}.json", std::process::id()));
        let snap_str = snap_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &instance, "--metrics-out", &snap_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let exported = run_str(&["obs", "export-trace", &snap_str, "--check"]);
        assert_eq!(exported.code, 0, "{}", exported.stdout);
        assert!(exported.stdout.contains("\"traceEvents\""));
        dmig_obs::trace::validate_chrome_trace(&exported.stdout).expect("re-exported trace valid");
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn obs_flame_prints_self_time_rollup() {
        let _g = obs_lock();
        let instance = write_temp("flame-in", K3);
        let snap_path =
            std::env::temp_dir().join(format!("dmig-cli-test-flame-{}.json", std::process::id()));
        let snap_str = snap_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &instance, "--metrics-out", &snap_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let flame = run_str(&["obs", "flame", &snap_str]);
        assert_eq!(flame.code, 0, "{}", flame.stdout);
        assert!(flame.stdout.contains("self ms"), "{}", flame.stdout);
        assert!(flame.stdout.contains("solve_even"), "{}", flame.stdout);
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn obs_subcommand_errors_are_clean() {
        assert_eq!(run_str(&["obs"]).code, 1);
        assert_eq!(run_str(&["obs", "frobnicate"]).code, 1);
        assert_eq!(run_str(&["obs", "diff", "/no/such/a"]).code, 1);
        assert_eq!(
            run_str(&["obs", "gate", "/no/such/rules.toml", "/no/such/m.json"]).code,
            1
        );
        assert_eq!(run_str(&["obs", "export-trace", "/no/such/s.json"]).code, 1);
        assert_eq!(run_str(&["obs", "flame", "/no/such/s.json"]).code, 1);
    }

    #[test]
    fn bad_metrics_out_is_clean_error() {
        let _g = obs_lock();
        let path = write_temp("metrics-bad", K3);
        // A dangling flag is an error, mirroring --threads.
        let out = run_str(&["solve", &path, "--metrics-out"]);
        assert_eq!(out.code, 1, "dangling --metrics-out: {}", out.stdout);
        assert!(out.stdout.contains("bad --metrics-out: missing value"));
        // An unwritable destination is reported, not swallowed.
        let out = run_str(&["solve", &path, "--metrics-out", "/no/such/dir/m.json"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("cannot write"));
    }

    /// K3 plus an idle spare disk 3, so a crashed disk has a replacement.
    const K3_SPARE: &str = "nodes 4\ncaps 2 2 2 2\nedge 0 1\nedge 1 2\nedge 0 2\n";

    #[test]
    fn simulate_with_faults_recovers_and_reports() {
        let instance = write_temp("faults-instance", K3_SPARE);
        let faults = write_temp(
            "faults-plan",
            "seed = 7\n\n[[crash]]\ndisk = 2\ntime = 0.25\nreplacement = 3\n",
        );
        let out = run_str(&[
            "simulate",
            &instance,
            "--faults",
            &faults,
            "--replan",
            "--retry-max",
            "2",
        ]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("0 lost"), "{}", out.stdout);
        assert!(out.stdout.contains("replans"), "{}", out.stdout);
    }

    #[test]
    fn simulate_fault_reports_are_thread_count_invariant() {
        let instance = write_temp("faults-det-instance", K3_SPARE);
        let faults = write_temp(
            "faults-det-plan",
            "seed = 11\n\n[[crash]]\ndisk = 1\ntime = 0.5\nreplacement = 3\n\n\
             [flaky]\nprobability = 0.3\n",
        );
        let mut reports = Vec::new();
        for threads in ["1", "4"] {
            let rpt = write_temp(&format!("faults-det-report-{threads}"), "");
            let out = run_str(&[
                "simulate",
                &instance,
                "--faults",
                &faults,
                "--replan",
                "--threads",
                threads,
                "--report-out",
                &rpt,
            ]);
            assert_eq!(out.code, 0, "{}", out.stdout);
            reports.push(std::fs::read_to_string(&rpt).unwrap());
            std::fs::remove_file(&rpt).ok();
        }
        assert_eq!(
            reports[0], reports[1],
            "fault execution must be byte-identical across thread counts"
        );
        assert!(reports[0].contains("\"delivered\""), "{}", reports[0]);
    }

    #[test]
    fn simulate_fault_flags_are_validated() {
        let instance = write_temp("faults-val-instance", K3);
        let out = run_str(&["simulate", &instance, "--replan"]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("requires --faults"), "{}", out.stdout);
        let bad_plan = write_temp("faults-val-plan", "seed = \"zap\"\n");
        let out = run_str(&["simulate", &instance, "--faults", &bad_plan]);
        assert_eq!(out.code, 1);
        assert!(out.stdout.contains("line 1"), "{}", out.stdout);
    }

    #[test]
    fn obs_gate_baseline_prefixes_metrics() {
        let rules = write_temp(
            "gate-base-rules",
            "[[rule]]\nname = \"round drift\"\nexpr = \"rounds <= baseline.rounds * 1.5\"\n",
        );
        let current = write_temp("gate-base-cur", "{\"rounds\": 10}");
        let ok_base = write_temp("gate-base-ok", "{\"rounds\": 8}");
        let bad_base = write_temp("gate-base-bad", "{\"rounds\": 4}");

        let ok = run_str(&["obs", "gate", &rules, &current, "--baseline", &ok_base]);
        assert_eq!(ok.code, 0, "{}", ok.stdout);
        let fail = run_str(&["obs", "gate", &rules, &current, "--baseline", &bad_base]);
        assert_eq!(fail.code, 1, "drift past baseline must gate nonzero");
        // Without --baseline the rule's baseline.* operand is missing.
        assert_eq!(run_str(&["obs", "gate", &rules, &current]).code, 1);
    }

    #[test]
    fn obs_compact_trims_history() {
        let line = |instance: &str, round: u64| {
            format!(
                "{{\"schema\":\"dmig-history/1\",\"instance\":\"{instance}\",\
                 \"metrics\":{{\"round\":{round}}}}}\n"
            )
        };
        let mut text = String::new();
        for round in 0..3 {
            text.push_str(&line("aaa", round));
            text.push_str(&line("bbb", round));
        }
        let hist = write_temp("compact-hist", &text);
        let out = run_str(&["obs", "compact", &hist, "--keep", "1"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("kept 2"), "{}", out.stdout);
        assert!(out.stdout.contains("dropped 4"), "{}", out.stdout);
        let survivors = std::fs::read_to_string(&hist).unwrap();
        assert_eq!(survivors.lines().count(), 2);
        assert!(survivors.contains("\"round\":2"));
        assert!(!survivors.contains("\"round\":0"));
        // --keep is mandatory and must be positive.
        assert_eq!(run_str(&["obs", "compact", &hist]).code, 1);
        assert_eq!(run_str(&["obs", "compact", &hist, "--keep", "0"]).code, 1);
        std::fs::remove_file(&hist).ok();
    }

    /// The paper's E7 hot-spot shape: every item touches disk 0, which is
    /// also the slowest disk in the `--bandwidths` profile below.
    const E7_STAR: &str = "nodes 5\ncaps 1 1 1 1 1\n\
        edge 0 1\nedge 0 1\nedge 0 2\nedge 0 2\n\
        edge 0 3\nedge 0 3\nedge 0 4\nedge 0 4\n";

    #[test]
    fn obs_explain_names_the_bottleneck_disk() {
        let path = write_temp("explain-star", E7_STAR);
        let out = run_str(&["obs", "explain", &path, "--bandwidths", "0.25,1,1,1,1"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        // Disk 0 has degree 8 at capacity 1: it realizes LB1 and binds
        // every round of the schedule.
        assert!(out.stdout.contains("realized by disk 0"), "{}", out.stdout);
        assert!(out.stdout.contains("via lb1"), "{}", out.stdout);
        assert!(
            out.stdout
                .contains("binding lower bound: max(LB1, LB2) = 8"),
            "{}",
            out.stdout
        );
        // The ranking's top row is the bottleneck disk at 100% utilization.
        let rank1 = out
            .stdout
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .expect("ranking row");
        assert!(rank1.contains(" 0 "), "top-ranked disk is 0: {rank1}");
        assert!(rank1.contains("100.0%"), "{rank1}");
    }

    #[test]
    fn obs_explain_json_is_parseable_and_consistent() {
        let path = write_temp("explain-json", E7_STAR);
        let out = run_str(&["obs", "explain", &path, "--json"]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let doc = Value::parse(&out.stdout).expect("explain JSON parses");
        assert_eq!(
            doc.get_path("schema").and_then(Value::as_str),
            Some("dmig-explain/1")
        );
        let lb1 = doc.get_path("lb1").and_then(Value::as_f64).unwrap();
        let lb2 = doc.get_path("lb2").and_then(Value::as_f64).unwrap();
        let bound = doc
            .get_path("binding_bound")
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(bound, lb1.max(lb2), "binding bound is max(LB1, LB2)");
        assert_eq!(
            doc.get_path("lb1_disk").and_then(Value::as_f64),
            Some(0.0),
            "the hub realizes LB1"
        );
        // --out writes the same document to a file.
        let out_path = write_temp("explain-json-out", "");
        let wrote = run_str(&["obs", "explain", &path, "--json", "--out", &out_path]);
        assert_eq!(wrote.code, 0, "{}", wrote.stdout);
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), out.stdout);
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn simulate_explain_appends_attribution() {
        let path = write_temp("sim-explain", K3);
        let plain = run_str(&["simulate", &path]);
        let explained = run_str(&["simulate", &path, "--explain"]);
        assert_eq!(explained.code, 0, "{}", explained.stdout);
        assert!(
            explained.stdout.starts_with(&plain.stdout),
            "--explain only appends:\n{}",
            explained.stdout
        );
        assert!(
            explained.stdout.contains("makespan attribution"),
            "{}",
            explained.stdout
        );
        assert!(
            explained.stdout.contains("binding lower bound"),
            "{}",
            explained.stdout
        );
    }

    #[test]
    fn events_out_streams_parseable_jsonl() {
        let _g = obs_lock();
        let instance = write_temp("events-instance", K3_SPARE);
        let faults = write_temp(
            "events-plan",
            "seed = 7\n\n[[crash]]\ndisk = 2\ntime = 0.25\nreplacement = 3\n",
        );
        let events_path =
            std::env::temp_dir().join(format!("dmig-cli-test-events-{}.jsonl", std::process::id()));
        std::fs::remove_file(&events_path).ok();
        let events_str = events_path.to_string_lossy().into_owned();
        let out = run_str(&[
            "simulate",
            &instance,
            "--faults",
            &faults,
            "--replan",
            "--events-out",
            &events_str,
        ]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let jsonl = std::fs::read_to_string(&events_path).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let v = Value::parse(line).expect("each event line is JSON");
            assert_eq!(
                v.get_path("schema").and_then(Value::as_str),
                Some(dmig_obs::events::EVENTS_SCHEMA)
            );
        }
        for kind in ["round_start", "item_delivered", "crash"] {
            assert!(
                jsonl.contains(&format!("\"kind\":\"{kind}\"")),
                "missing {kind}:\n{jsonl}"
            );
        }
        std::fs::remove_file(&events_path).ok();
    }

    #[test]
    fn crash_dump_flag_is_quiet_on_success() {
        let _g = obs_lock();
        let instance = write_temp("crash-dump-instance", K3);
        let dump_path =
            std::env::temp_dir().join(format!("dmig-cli-test-crash-{}.json", std::process::id()));
        std::fs::remove_file(&dump_path).ok();
        let dump_str = dump_path.to_string_lossy().into_owned();
        let out = run_str(&["simulate", &instance, "--crash-dump", &dump_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(
            !dump_path.exists(),
            "a clean run must not leave a crash dump"
        );
    }

    #[test]
    fn simulate_trace_html_includes_disk_lanes() {
        let _g = obs_lock();
        let instance = write_temp("disk-lane-in", K3);
        let out_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-disk-lane-{}.html",
            std::process::id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let out = run_str(&["simulate", &instance, "--trace-html", &out_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let html = std::fs::read_to_string(&out_path).unwrap();
        assert!(html.contains("disk utilization"), "{html}");
        assert!(html.contains("id=\"disks\""), "{html}");
        assert!(html.contains("sortDisks"), "{html}");
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn help_documents_events_and_explain() {
        let help = run_str(&["help"]).stdout;
        for needle in [
            "--events-out",
            "--crash-dump",
            "--explain",
            "obs explain",
            "--serve",
            "--serve-addr-file",
            "obs serve",
        ] {
            assert!(help.contains(needle), "usage() missing {needle}");
        }
    }

    #[test]
    fn obs_diff_summary_counts_one_sided_keys() {
        let old = write_temp("diff-sum-old", "{\"kept\": 1.0, \"gone\": 3.0}");
        let new = write_temp("diff-sum-new", "{\"kept\": 1.0, \"fresh\": 2.0}");
        let out = run_str(&["obs", "diff", &old, &new]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(
            out.stdout.contains(
                "3 metrics compared, 0 changed beyond 5.0% tolerance, 1 added, 1 removed"
            ),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("fresh"), "{}", out.stdout);
        assert!(out.stdout.contains("gone"), "{}", out.stdout);
    }

    #[test]
    fn obs_gate_explain_resolves_both_sides() {
        let rules = write_temp(
            "gate-explain-rules",
            "[[rule]]\nname = \"rounds bound\"\nexpr = \"rounds <= 5\"\n",
        );
        let metrics = write_temp("gate-explain-metrics", "{\"rounds\": 3}");
        let plain = run_str(&["obs", "gate", &rules, &metrics]);
        assert_eq!(plain.code, 0, "{}", plain.stdout);
        assert!(!plain.stdout.contains("left `"), "{}", plain.stdout);
        let explained = run_str(&["obs", "gate", &rules, &metrics, "--explain"]);
        assert_eq!(explained.code, 0, "{}", explained.stdout);
        assert!(
            explained
                .stdout
                .contains("left `rounds` = 3, right `5` = 5"),
            "{}",
            explained.stdout
        );
        // A failing gate explains too (on stderr-bound error text).
        let hot = write_temp("gate-explain-hot", "{\"rounds\": 9}");
        let fail = run_str(&["obs", "gate", &rules, &hot, "--explain"]);
        assert_eq!(fail.code, 1);
        assert!(
            fail.stdout.contains("left `rounds` = 9, right `5` = 5"),
            "{}",
            fail.stdout
        );
    }

    /// `--serve` must not perturb planning: stdout (the schedule) is
    /// byte-identical with the plane on or off, and the resolved listen
    /// address lands in `--serve-addr-file`.
    #[test]
    fn serve_flag_keeps_schedule_identical() {
        let _g = obs_lock();
        let path = write_temp("serve-sched", K3);
        let plain = run_str(&["solve", &path, "--shards", "2"]);
        assert_eq!(plain.code, 0, "{}", plain.stdout);
        let addr_file = write_temp("serve-sched-addr", "");
        let served = run_str(&[
            "solve",
            &path,
            "--shards",
            "2",
            "--serve",
            "127.0.0.1:0",
            "--serve-addr-file",
            &addr_file,
        ]);
        assert_eq!(served, plain, "--serve changed the schedule output");
        let addr = std::fs::read_to_string(&addr_file).unwrap();
        assert!(
            addr.trim().starts_with("127.0.0.1:") && !addr.trim().ends_with(":0"),
            "addr file resolves port 0: {addr:?}"
        );
        std::fs::remove_file(&addr_file).ok();
    }

    /// End-to-end scrape of `dmig obs serve`: a background client waits
    /// for the addr file, GETs /metrics and /snapshot, and the command
    /// exits on its own via --requests.
    #[test]
    fn obs_serve_serves_fixed_snapshot_over_http() {
        let _g = obs_lock();
        let instance = write_temp("serve-fixed-in", K3);
        let snap_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-serve-snap-{}.json",
            std::process::id()
        ));
        let snap_str = snap_path.to_string_lossy().into_owned();
        let out = run_str(&["solve", &instance, "--metrics-out", &snap_str]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        let raw = std::fs::read_to_string(&snap_path).unwrap();

        let addr_file = std::env::temp_dir().join(format!(
            "dmig-cli-test-serve-addr-{}.txt",
            std::process::id()
        ));
        std::fs::remove_file(&addr_file).ok();
        let addr_str = addr_file.to_string_lossy().into_owned();
        let addr_for_client = addr_file.clone();
        let client = std::thread::spawn(move || {
            use std::io::{Read as _, Write as _};
            let deadline = Instant::now() + Duration::from_secs(10);
            let addr = loop {
                assert!(Instant::now() < deadline, "addr file never appeared");
                match std::fs::read_to_string(&addr_for_client) {
                    Ok(s) if s.contains(':') => break s.trim().to_string(),
                    _ => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            let get = |path: &str| {
                let mut conn = std::net::TcpStream::connect(&addr).unwrap();
                conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                    .unwrap();
                let mut buf = String::new();
                conn.read_to_string(&mut buf).unwrap();
                buf
            };
            (get("/metrics"), get("/snapshot"))
        });
        let out = run_str(&[
            "obs",
            "serve",
            &snap_str,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_str,
            "--requests",
            "2",
        ]);
        let (metrics, snapshot) = client.join().unwrap();
        assert_eq!(out.code, 0, "{}", out.stdout);
        assert!(out.stdout.contains("served 2 request(s)"), "{}", out.stdout);
        assert!(metrics.contains("HTTP/1.1 200 OK"), "{metrics}");
        assert!(
            metrics.contains("dmig_counter{key=\"flow_solves\"}"),
            "{metrics}"
        );
        assert!(snapshot.ends_with(&raw), "/snapshot returns the raw JSON");
        std::fs::remove_file(&snap_path).ok();
        std::fs::remove_file(&addr_file).ok();
    }

    /// A live scrape during `solve --serve` sees the full key set the
    /// tentpole promises: live.*, mem.*, pool.*, prof.samples.
    #[test]
    fn solve_serve_exposes_live_keys() {
        let _g = obs_lock();
        // Big enough that the run outlives one scrape round-trip is NOT
        // required: begin() pre-registers the live keys, so even a scrape
        // racing the final rounds sees them.
        let path = write_temp("serve-live", K3);
        let addr_file = std::env::temp_dir().join(format!(
            "dmig-cli-test-serve-live-{}.txt",
            std::process::id()
        ));
        std::fs::remove_file(&addr_file).ok();
        let addr_str = addr_file.to_string_lossy().into_owned();
        let metrics_path = std::env::temp_dir().join(format!(
            "dmig-cli-test-serve-live-{}.json",
            std::process::id()
        ));
        let metrics_str = metrics_path.to_string_lossy().into_owned();
        let out = run_str(&[
            "solve",
            &path,
            "--serve",
            "127.0.0.1:0",
            "--serve-addr-file",
            &addr_str,
            "--metrics-out",
            &metrics_str,
        ]);
        assert_eq!(out.code, 0, "{}", out.stdout);
        // The final snapshot (written after the plane stops) carries the
        // live gauges at their terminal values plus the serve counter.
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        for key in [
            "\"live.phase\"",
            "\"live.round\"",
            "\"live.items_done\"",
            "\"live.shard_active\"",
            "\"prof.samples\"",
            "\"serve.requests\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let doc = Value::parse(&json).unwrap();
        // "live.phase" is one key with a literal dot, not a path.
        let phase = doc
            .get_path("gauges")
            .and_then(Value::as_object)
            .and_then(|g| g.get("live.phase"))
            .and_then(Value::as_f64);
        assert_eq!(phase, Some(6.0), "terminal phase is DONE (= 6)");
        std::fs::remove_file(&addr_file).ok();
        std::fs::remove_file(&metrics_path).ok();
    }
}
