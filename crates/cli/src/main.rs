//! Thin binary wrapper over the testable CLI library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = dmig_cli::run(&args);
    print!("{}", outcome.stdout);
    std::process::exit(outcome.code);
}
