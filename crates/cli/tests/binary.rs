//! End-to-end tests of the actual `dmig` binary.

use std::process::Command;

fn dmig(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dmig"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn help_exits_zero() {
    let (code, stdout) = dmig(&["help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("usage"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let (code, stdout) = dmig(&["bogus"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("unknown command"));
}

#[test]
fn generate_pipe_solve_roundtrip() {
    let (code, instance) = dmig(&["generate", "k3", "4", "2"]);
    assert_eq!(code, 0);
    let path = std::env::temp_dir().join(format!("dmig-bin-test-{}.dmig", std::process::id()));
    std::fs::write(&path, &instance).unwrap();
    let path = path.to_string_lossy().into_owned();

    let (code, solved) = dmig(&["solve", &path, "--solver", "even-optimal"]);
    assert_eq!(code, 0, "{solved}");
    assert!(
        solved.contains("4 rounds"),
        "Fig. 2 with M=4, c=2 is 4 rounds:\n{solved}"
    );

    let (code, bounds) = dmig(&["bounds", &path]);
    assert_eq!(code, 0);
    assert!(bounds.contains("LB1"));

    let (code, compare) = dmig(&["compare", &path]);
    assert_eq!(code, 0);
    assert!(compare.contains("homogeneous"));

    let (code, sim) = dmig(&["simulate", &path]);
    assert_eq!(code, 0);
    assert!(sim.contains("wall-clock time 8.000"), "{sim}");
    std::fs::remove_file(std::path::Path::new(&path)).ok();
}
