//! End-to-end crash-resume tests of `dmig migrate`: the workspace is
//! planned once, the executor is killed mid-run (both deterministically
//! via `--abort-after-checkpoint` and with a real `SIGKILL`), and the
//! resumed run must produce a `report.json` byte-identical to an
//! uninterrupted execution. Export/import round-trips and tamper
//! detection ride on the same workspaces.

use std::path::{Path, PathBuf};
use std::process::Command;

fn dmig(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dmig"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("dmig-migrate-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A faulty scenario exercising crash + degrade + flaky recovery.
const FAULTS: &str = "\
seed = 2026

[[crash]]
disk = 2
time = 0.5
replacement = 5

[[degrade]]
disk = 1
time = 0.25
factor = 0.4
recover_at = 8.0

[flaky]
probability = 0.1
";

/// Writes a seeded random instance (6 live disks + 1 spare would need 7;
/// uniform keeps it simple) and the fault plan into `scratch`, returning
/// their paths.
fn seed_inputs(scratch: &Scratch, edges: usize) -> (String, String) {
    let (code, instance) = dmig(&["generate", "uniform", "6", &edges.to_string(), "2", "2"]);
    assert_eq!(code, 0, "{instance}");
    let ipath = scratch.path("instance.dmig");
    std::fs::write(&ipath, instance).unwrap();
    let fpath = scratch.path("faults.toml");
    std::fs::write(&fpath, FAULTS).unwrap();
    (ipath, fpath)
}

fn plan(scratch: &Scratch, ws: &str, ipath: &str, fpath: &str) -> String {
    let dir = scratch.path(ws);
    let (code, out) = dmig(&[
        "migrate",
        "plan",
        ipath,
        "--workspace",
        &dir,
        "--faults",
        fpath,
        "--replan",
        "--retry-max",
        "3",
        "--threads",
        "2",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("planned workspace"), "{out}");
    dir
}

fn read(dir: &str, name: &str) -> Vec<u8> {
    std::fs::read(Path::new(dir).join(name)).unwrap_or_else(|e| panic!("{dir}/{name}: {e}"))
}

fn count_checkpoints(dir: &str) -> usize {
    let journal = String::from_utf8_lossy(&read(dir, "journal.jsonl")).into_owned();
    journal
        .lines()
        .filter(|l| l.starts_with("{\"schema\": \"dmig-exec-ckpt/1\""))
        .count()
}

#[test]
fn deterministic_abort_then_resume_is_byte_identical() {
    let scratch = Scratch::new("abort-resume");
    let (ipath, fpath) = seed_inputs(&scratch, 16);

    // Reference: the same plan executed uninterrupted.
    let ref_ws = plan(&scratch, "ws-ref", &ipath, &fpath);
    let (code, out) = dmig(&["migrate", "execute", "--workspace", &ref_ws]);
    assert_eq!(code, 0, "{out}");
    let reference = read(&ref_ws, "report.json");

    // Victim: killed after the second checkpoint, then after two more,
    // then allowed to finish. Chained kills must compose.
    let ws = plan(&scratch, "ws-victim", &ipath, &fpath);
    let (code, _) = dmig(&[
        "migrate",
        "execute",
        "--workspace",
        &ws,
        "--abort-after-checkpoint",
        "2",
    ]);
    assert_ne!(code, 0, "the abort must look like a crash, not a success");
    assert!(
        !Path::new(&ws).join("report.json").exists(),
        "a killed run must not leave a report"
    );
    assert!(count_checkpoints(&ws) >= 2);

    let (code, _) = dmig(&[
        "migrate",
        "resume",
        "--workspace",
        &ws,
        "--abort-after-checkpoint",
        "2",
    ]);
    assert_ne!(code, 0);

    let (code, out) = dmig(&["migrate", "resume", "--workspace", &ws]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("resumed from the round-"), "{out}");
    assert_eq!(
        read(&ws, "report.json"),
        reference,
        "resumed report diverged from the uninterrupted run"
    );

    // The journal tells the whole story: resume markers are on record.
    let journal = String::from_utf8_lossy(&read(&ws, "journal.jsonl")).into_owned();
    assert_eq!(
        journal.matches("\"schema\": \"dmig-resume/1\"").count(),
        2,
        "two resumes, two markers"
    );

    // Guardrails: a finished workspace refuses both verbs.
    let (code, out) = dmig(&["migrate", "execute", "--workspace", &ws]);
    assert_eq!(code, 1);
    assert!(out.contains("report.json"), "{out}");
    let (code, out) = dmig(&["migrate", "resume", "--workspace", &ws]);
    assert_eq!(code, 1);
    assert!(out.contains("complete"), "{out}");
}

#[test]
fn sigkill_mid_execute_then_resume_is_byte_identical() {
    let scratch = Scratch::new("sigkill");
    let (ipath, fpath) = seed_inputs(&scratch, 60);

    let ref_ws = plan(&scratch, "ws-ref", &ipath, &fpath);
    let (code, out) = dmig(&["migrate", "execute", "--workspace", &ref_ws]);
    assert_eq!(code, 0, "{out}");
    let reference = read(&ref_ws, "report.json");

    let ws = plan(&scratch, "ws-kill", &ipath, &fpath);
    let journal = Path::new(&ws).join("journal.jsonl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_dmig"))
        .args(["migrate", "execute", "--workspace", &ws])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawns");
    // Kill as soon as the journal shows a durable checkpoint. The run may
    // legitimately win the race and finish first — then the kill is a
    // no-op and the byte-identity assertion still has to hold.
    for _ in 0..2000 {
        if journal.exists() && !read(&ws, "journal.jsonl").is_empty() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    child.kill().ok();
    let status = child.wait().expect("waits");

    if !status.success() {
        // The kill landed mid-run: resume must finish the job. (Possibly
        // from the very first checkpoint, which is a full re-run.)
        assert!(
            !Path::new(&ws).join("report.json").exists(),
            "SIGKILL must not leave a report"
        );
        let (code, out) = dmig(&["migrate", "resume", "--workspace", &ws]);
        assert_eq!(code, 0, "{out}");
    }
    assert_eq!(
        read(&ws, "report.json"),
        reference,
        "post-SIGKILL report diverged from the uninterrupted run"
    );

    // Item conservation, straight from the report document.
    let report = String::from_utf8_lossy(&read(&ws, "report.json")).into_owned();
    let fates: usize = [
        "\"delivered\"",
        "\"delivered-redirected\"",
        "\"lost-dead-disk\"",
        "\"lost-retries\"",
    ]
    .iter()
    .map(|code| report.matches(code).count())
    .sum();
    assert!(fates >= 60, "every item carries a fate: {report}");
}

#[test]
fn export_import_round_trips_and_detects_tampering() {
    let scratch = Scratch::new("export");
    let (ipath, fpath) = seed_inputs(&scratch, 12);
    let ws = plan(&scratch, "ws-exp", &ipath, &fpath);
    let (code, out) = dmig(&["migrate", "execute", "--workspace", &ws]);
    assert_eq!(code, 0, "{out}");

    let archive = scratch.path("ws.dmig-archive");
    let (code, out) = dmig(&["migrate", "export", "--workspace", &ws, "--out", &archive]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("exported"), "{out}");

    let dst = scratch.path("ws-imported");
    let (code, out) = dmig(&["migrate", "import", &archive, "--workspace", &dst]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("checksums verified"), "{out}");
    for name in [
        "manifest.json",
        "instance.txt",
        "plan.json",
        "faults.toml",
        "config.json",
        "journal.jsonl",
        "report.json",
        "checksums.sha256",
    ] {
        assert_eq!(
            read(&ws, name),
            read(&dst, name),
            "{name} changed in transit"
        );
    }

    // Flip one byte inside the plan.json payload: import must refuse and
    // point at the manifest line that promised the digest.
    let mut bytes = std::fs::read(&archive).unwrap();
    let needle = b"dmig-plan/1";
    let at = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("plan schema tag in archive");
    bytes[at] ^= 0x20;
    let tampered = scratch.path("tampered.dmig-archive");
    std::fs::write(&tampered, &bytes).unwrap();
    let dst2 = scratch.path("ws-tampered");
    let (code, out) = dmig(&["migrate", "import", &tampered, "--workspace", &dst2]);
    assert_eq!(code, 1);
    assert!(out.contains("checksums.sha256:"), "line-numbered: {out}");
    assert!(out.contains("plan.json"), "{out}");
    assert!(out.contains("mismatch"), "{out}");
    assert!(
        !Path::new(&dst2).join("manifest.json").exists(),
        "a failed import must not materialize a workspace"
    );
}

#[test]
fn fault_plans_are_checked_against_the_instance_with_line_numbers() {
    let scratch = Scratch::new("fault-check");
    let (ipath, _) = seed_inputs(&scratch, 8);
    let bad = scratch.path("bad-faults.toml");
    std::fs::write(&bad, "seed = 1\n\n[[crash]]\ndisk = 99\ntime = 1.0\n").unwrap();

    // Both entry points route through the checked parser.
    let ws = scratch.path("ws-bad");
    let (code, out) = dmig(&[
        "migrate",
        "plan",
        &ipath,
        "--workspace",
        &ws,
        "--faults",
        &bad,
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("line 3"), "{out}");
    assert!(out.contains("out of range"), "{out}");

    let (code, out) = dmig(&["simulate", &ipath, "--faults", &bad]);
    assert_eq!(code, 1);
    assert!(out.contains("line 3"), "{out}");
    assert!(out.contains("out of range"), "{out}");
}

#[test]
fn crash_safe_outputs_leave_no_temp_files() {
    let scratch = Scratch::new("atomic-outs");
    let (ipath, fpath) = seed_inputs(&scratch, 10);
    let report = scratch.path("report.json");
    let metrics = scratch.path("metrics.json");
    let events = scratch.path("events.jsonl");
    let (code, out) = dmig(&[
        "simulate",
        &ipath,
        "--faults",
        &fpath,
        "--replan",
        "--report-out",
        &report,
        "--metrics-out",
        &metrics,
        "--events-out",
        &events,
    ]);
    assert_eq!(code, 0, "{out}");
    for path in [&report, &metrics, &events] {
        assert!(Path::new(path).exists(), "{path} missing");
    }
    let leftovers: Vec<String> = std::fs::read_dir(&scratch.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}
