//! Simulation results and derived metrics.

use core::fmt;

/// The outcome of executing a schedule on a modeled cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Total wall-clock time (sum of round durations; rounds are barriers).
    pub total_time: f64,
    /// Duration of each round.
    pub round_durations: Vec<f64>,
    /// Per-disk busy time: time each disk spent with at least one active
    /// transfer.
    pub disk_busy: Vec<f64>,
    /// Bytes (item-sizes) moved in total.
    pub volume: f64,
}

impl SimReport {
    /// Number of executed rounds.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.round_durations.len()
    }

    /// Mean disk utilization: busy time over makespan, averaged over disks
    /// that were busy at all. Returns 0.0 for an empty migration.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let busy: Vec<f64> = self
            .disk_busy
            .iter()
            .copied()
            .filter(|&b| b > 0.0)
            .collect();
        if busy.is_empty() {
            return 0.0;
        }
        busy.iter().sum::<f64>() / (busy.len() as f64 * self.total_time)
    }

    /// Effective aggregate throughput: volume over makespan (0.0 if empty).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.volume / self.total_time
        }
    }

    /// Renders the per-round timeline as CSV (`round,start,duration`) for
    /// external plotting.
    #[must_use]
    pub fn timeline_csv(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("round,start,duration\n");
        let mut start = 0.0f64;
        for (i, &d) in self.round_durations.iter().enumerate() {
            let _ = writeln!(out, "{i},{start:.6},{d:.6}");
            start += d;
        }
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim(time={:.3}, rounds={}, util={:.1}%)",
            self.total_time,
            self.num_rounds(),
            self.mean_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_from_fields() {
        let r = SimReport {
            total_time: 4.0,
            round_durations: vec![2.0, 2.0],
            disk_busy: vec![4.0, 2.0, 0.0],
            volume: 8.0,
        };
        assert_eq!(r.num_rounds(), 2);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        assert!((r.throughput() - 2.0).abs() < 1e-12);
        assert!(r.to_string().contains("rounds=2"));
    }

    #[test]
    fn timeline_csv_accumulates_starts() {
        let r = SimReport {
            total_time: 5.0,
            round_durations: vec![2.0, 3.0],
            disk_busy: vec![],
            volume: 4.0,
        };
        let csv = r.timeline_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "round,start,duration");
        assert!(lines[1].starts_with("0,0.000000,2.000000"));
        assert!(lines[2].starts_with("1,2.000000,3.000000"));
    }

    #[test]
    fn empty_report() {
        let r = SimReport {
            total_time: 0.0,
            round_durations: vec![],
            disk_busy: vec![0.0],
            volume: 0.0,
        };
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }
}
