//! Simulation results and derived metrics.

use core::fmt;

/// The outcome of executing a schedule on a modeled cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Total wall-clock time (sum of round durations; rounds are barriers).
    pub total_time: f64,
    /// Duration of each round.
    pub round_durations: Vec<f64>,
    /// Per-disk busy time: time each disk spent with at least one active
    /// transfer.
    pub disk_busy: Vec<f64>,
    /// Bytes (item-sizes) moved in total.
    pub volume: f64,
}

impl SimReport {
    /// Number of executed rounds.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.round_durations.len()
    }

    /// Mean disk utilization: busy time over makespan, averaged over disks
    /// that were busy at all. Returns 0.0 for an empty migration.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let busy: Vec<f64> = self
            .disk_busy
            .iter()
            .copied()
            .filter(|&b| b > 0.0)
            .collect();
        if busy.is_empty() {
            return 0.0;
        }
        busy.iter().sum::<f64>() / (busy.len() as f64 * self.total_time)
    }

    /// Effective aggregate throughput: volume over makespan (0.0 if empty).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.volume / self.total_time
        }
    }

    /// Utilization of one disk: busy time over makespan (0.0 for an empty
    /// migration or an out-of-range disk).
    #[must_use]
    pub fn disk_utilization(&self, disk: usize) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        self.disk_busy
            .get(disk)
            .map_or(0.0, |&b| b / self.total_time)
    }

    /// Renders the timeline as long-format CSV for external plotting:
    /// `kind,id,start,duration,utilization`. Round rows carry start and
    /// duration (utilization empty); disk rows carry busy time as duration
    /// and the per-disk utilization (start empty).
    #[must_use]
    pub fn timeline_csv(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("kind,id,start,duration,utilization\n");
        let mut start = 0.0f64;
        for (i, &d) in self.round_durations.iter().enumerate() {
            let _ = writeln!(out, "round,{i},{start:.6},{d:.6},");
            start += d;
        }
        for (v, &busy) in self.disk_busy.iter().enumerate() {
            let _ = writeln!(out, "disk,{v},,{busy:.6},{:.6}", self.disk_utilization(v));
        }
        out
    }

    /// Serializes the report (totals, derived metrics, per-round and
    /// per-disk detail) as a self-contained JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;
        use dmig_obs::json::number;
        let mut out = String::from("{");
        let _ = write!(out, "\"total_time\": {}", number(self.total_time));
        let _ = write!(out, ", \"num_rounds\": {}", self.num_rounds());
        let _ = write!(out, ", \"volume\": {}", number(self.volume));
        let _ = write!(out, ", \"throughput\": {}", number(self.throughput()));
        let _ = write!(
            out,
            ", \"mean_utilization\": {}",
            number(self.mean_utilization())
        );
        out.push_str(", \"round_durations\": [");
        for (i, &d) in self.round_durations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&number(d));
        }
        out.push_str("], \"disks\": [");
        for (v, &busy) in self.disk_busy.iter().enumerate() {
            if v > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"busy\": {}, \"utilization\": {}}}",
                number(busy),
                number(self.disk_utilization(v))
            );
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim(time={:.3}, rounds={}, util={:.1}%)",
            self.total_time,
            self.num_rounds(),
            self.mean_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_from_fields() {
        let r = SimReport {
            total_time: 4.0,
            round_durations: vec![2.0, 2.0],
            disk_busy: vec![4.0, 2.0, 0.0],
            volume: 8.0,
        };
        assert_eq!(r.num_rounds(), 2);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        assert!((r.throughput() - 2.0).abs() < 1e-12);
        assert!(r.to_string().contains("rounds=2"));
    }

    #[test]
    fn timeline_csv_accumulates_starts_and_lists_disks() {
        let r = SimReport {
            total_time: 5.0,
            round_durations: vec![2.0, 3.0],
            disk_busy: vec![5.0, 2.5],
            volume: 4.0,
        };
        let csv = r.timeline_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,id,start,duration,utilization");
        assert_eq!(lines[1], "round,0,0.000000,2.000000,");
        assert_eq!(lines[2], "round,1,2.000000,3.000000,");
        assert_eq!(lines[3], "disk,0,,5.000000,1.000000");
        assert_eq!(lines[4], "disk,1,,2.500000,0.500000");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn disk_utilization_handles_edge_cases() {
        let r = SimReport {
            total_time: 4.0,
            round_durations: vec![4.0],
            disk_busy: vec![3.0],
            volume: 1.0,
        };
        assert!((r.disk_utilization(0) - 0.75).abs() < 1e-12);
        assert_eq!(r.disk_utilization(9), 0.0, "out of range");
        let empty = SimReport {
            total_time: 0.0,
            round_durations: vec![],
            disk_busy: vec![0.0],
            volume: 0.0,
        };
        assert_eq!(empty.disk_utilization(0), 0.0);
    }

    #[test]
    fn zero_makespan_report_has_zero_utilization_everywhere() {
        // A zero-duration report must not divide by the makespan.
        let r = SimReport {
            total_time: 0.0,
            round_durations: vec![0.0, 0.0],
            disk_busy: vec![0.0, 0.0, 0.0],
            volume: 0.0,
        };
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.disk_utilization(0), 0.0);
        assert_eq!(r.disk_utilization(2), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn never_transferring_disk_is_excluded_from_the_mean() {
        // Disk 2 never transfers: its utilization reads 0.0 but it must
        // not drag the mean down (the mean averages busy disks only).
        let r = SimReport {
            total_time: 10.0,
            round_durations: vec![10.0],
            disk_busy: vec![10.0, 5.0, 0.0],
            volume: 3.0,
        };
        assert_eq!(r.disk_utilization(2), 0.0);
        assert!((r.mean_utilization() - 0.75).abs() < 1e-12);
        let all_idle = SimReport {
            total_time: 10.0,
            round_durations: vec![10.0],
            disk_busy: vec![0.0, 0.0],
            volume: 0.0,
        };
        assert_eq!(all_idle.mean_utilization(), 0.0, "no busy disk, no mean");
    }

    #[test]
    fn e7_bottleneck_disk_utilization_is_one() {
        // E7 profile: one slow disk on every transfer. The bottleneck's
        // busy time equals every round's duration, so its utilization is
        // exactly 1.0 while the fast leaves idle below it.
        use crate::{engine::simulate_rounds, Cluster};
        use dmig_core::solver::{HomogeneousSolver, Solver};
        use dmig_core::MigrationProblem;
        use dmig_graph::builder::star_multigraph;

        let p = MigrationProblem::uniform(star_multigraph(4, 2), 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![0.25, 1.0, 1.0, 1.0, 1.0]);
        let r = simulate_rounds(&p, &s, &cluster).unwrap();
        assert!((r.disk_utilization(0) - 1.0).abs() < 1e-12);
        for leaf in 1..5 {
            assert!(r.disk_utilization(leaf) < 1.0 - 1e-9);
        }
        assert!(r.mean_utilization() < 1.0);
    }

    #[test]
    fn json_roundtrips_key_fields() {
        let r = SimReport {
            total_time: 4.0,
            round_durations: vec![2.0, 2.0],
            disk_busy: vec![4.0, 2.0],
            volume: 8.0,
        };
        let j = r.to_json();
        assert!(j.contains("\"total_time\": 4.000000"));
        assert!(j.contains("\"num_rounds\": 2"));
        assert!(j.contains("\"round_durations\": [2.000000,2.000000]"));
        assert!(j.contains("\"utilization\": 0.500000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report() {
        let r = SimReport {
            total_time: 0.0,
            round_durations: vec![],
            disk_busy: vec![0.0],
            volume: 0.0,
        };
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }
}
