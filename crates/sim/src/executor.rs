//! Closed-loop, fault-tolerant schedule execution.
//!
//! The engines in [`crate::engine`] replay a frozen schedule; this module
//! *executes* one against a [`FaultPlan`] and repairs the plan as reality
//! diverges from it. Per round (rounds stay barriers, continuous-time
//! fair-share inside, as in [`crate::engine::simulate_adaptive`]):
//!
//! * **flaky transfers** fail at their would-be completion and are retried
//!   from zero after bounded exponential backoff; when
//!   [`ExecutorConfig::retry_max`] retries are spent the item is
//!   [`LostReason::RetriesExhausted`];
//! * **crash-stop failures** zero a disk's bandwidth forever and abort its
//!   in-flight transfers; with replanning enabled the aborted and
//!   not-yet-scheduled items on that disk are carried to the next replan,
//!   which redirects them to the crash's replacement disk (or reports them
//!   [`LostReason::DeadDisk`]);
//! * **degradations** collapse a disk's bandwidth; the executor scales the
//!   disk's transfer constraint `c_v' = max(1, ⌊c_v · bw_now/bw_init⌋)`
//!   at the next replan so the residual schedule stops over-subscribing
//!   the slow disk.
//!
//! At each round boundary the executor replans — re-solving the residual
//! multigraph via [`dmig_core::replan::replan_with`] with per-item
//! doneness — when any of three triggers fires: a crash happened since the
//! last replan, the set of degraded disks changed (a disk fell below
//! [`ExecutorConfig::degrade_replan_threshold`] × its initial bandwidth,
//! or recovered), or the round blew past the rolling-median
//! [`StallDetector`] fed with *simulated* durations. Item identity is
//! preserved through [`dmig_core::replan::ItemOrigin`] across any number
//! of replans, so the final [`ExecReport`] accounts every original item
//! as delivered (possibly redirected) or lost.
//!
//! **Determinism:** the executor runs entirely in simulated time — the
//! flaky coin is a seeded hash, the stall detector sees simulated
//! durations, and solver results are thread-count independent — so the
//! same instance, fault plan, and config produce a byte-identical
//! [`ExecReport::to_json`] at any thread count.

use dmig_core::replan::{replan_with, ItemOrigin, ReplanError, ResidualChanges};
use dmig_core::solver::Solver;
use dmig_core::{Capacities, MigrationProblem, MigrationSchedule};
use dmig_graph::{EdgeId, NodeId};
use dmig_obs::events::{emit, Event};
use dmig_obs::keys;

use crate::engine::{record_sim_round, SimError};
use crate::faults::{attempt_fails, FaultAction, FaultPlan, FaultPlanError};
use crate::progress::{RoundTicker, StallDetector, STALL_FACTOR};
use crate::{Cluster, SimReport};

/// Same tolerance the event engine uses to treat an event as "due".
const EVENT_EPS: f64 = 1e-12;
/// Same tolerance the engines use to treat a transfer as finished.
const DONE_EPS: f64 = 1e-9;

/// Policy knobs for [`execute`].
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Enables closed-loop replanning. Without it the executor still
    /// retries flaky transfers, but items touching a crashed disk are
    /// lost where they stand — nothing re-solves the residual.
    pub replan: bool,
    /// Retries allowed per item after its first attempt; the attempt
    /// budget is `retry_max + 1`.
    pub retry_max: u32,
    /// Backoff before the first retry, in simulated time units.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on every further retry.
    pub backoff_factor: f64,
    /// A live disk counts as degraded while its bandwidth is below this
    /// fraction of its initial bandwidth; a change in the degraded set
    /// triggers a replan.
    pub degrade_replan_threshold: f64,
    /// Multiple-of-rolling-median threshold for the simulated-time stall
    /// trigger (see [`StallDetector`]).
    pub stall_factor: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            replan: false,
            retry_max: 3,
            backoff_base: 0.25,
            backoff_factor: 2.0,
            degrade_replan_threshold: 0.5,
            stall_factor: STALL_FACTOR,
        }
    }
}

/// Why an item was not delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LostReason {
    /// An endpoint crashed and no live replacement was available (or
    /// replanning was disabled).
    DeadDisk,
    /// The item's attempt budget ran out.
    RetriesExhausted,
}

/// Final fate of one original item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemFate {
    /// The item reached a destination.
    Delivered {
        /// Whether a replan moved the item off its planned endpoints.
        redirected: bool,
    },
    /// The item was not delivered.
    Lost(
        /// Why.
        LostReason,
    ),
}

/// Errors from [`execute`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// Input validation failed (schedule/cluster/shape).
    Sim(SimError),
    /// The fault plan is invalid for this cluster.
    Fault(FaultPlanError),
    /// A mid-flight replan failed.
    Replan(ReplanError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Fault(e) => write!(f, "{e}"),
            ExecError::Replan(e) => write!(f, "replan failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::Fault(e) => Some(e),
            ExecError::Replan(e) => Some(e),
        }
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<FaultPlanError> for ExecError {
    fn from(e: FaultPlanError) -> Self {
        ExecError::Fault(e)
    }
}

impl From<ReplanError> for ExecError {
    fn from(e: ReplanError) -> Self {
        ExecError::Replan(e)
    }
}

/// The outcome of a fault-injected execution: the usual timing report plus
/// per-item accounting and recovery statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecReport {
    /// Timing/utilization report over every executed round (across all
    /// replans). `volume` counts bytes put on the wire, including retried
    /// attempts, minus the unmoved remainder of aborted transfers.
    pub sim: SimReport,
    /// `fates[e]` is the fate of original item `e`. Every item is
    /// accounted.
    pub fates: Vec<ItemFate>,
    /// Residual re-solves performed.
    pub replans: u64,
    /// Transfer attempts restarted after a flaky failure.
    pub retries: u64,
    /// Crash-stop events applied.
    pub crashes: u64,
    /// Items moved off their planned endpoints by a replan (each item
    /// counted once).
    pub redirects: u64,
    /// Rounds that ended with at least one live disk below the
    /// degradation threshold.
    pub degraded_rounds: u64,
}

impl ExecReport {
    /// Items delivered (including redirected ones).
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Delivered { .. }))
            .count()
    }

    /// Items delivered somewhere other than their planned endpoints.
    #[must_use]
    pub fn redirected(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Delivered { redirected: true }))
            .count()
    }

    /// Items lost, for any reason.
    #[must_use]
    pub fn lost(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Lost(_)))
            .count()
    }

    /// Items lost for a specific reason.
    #[must_use]
    pub fn lost_because(&self, reason: LostReason) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Lost(r) if *r == reason))
            .count()
    }

    /// Serializes the report as a self-contained JSON object with
    /// deterministic formatting (the byte-identical determinism guarantee
    /// is stated over this string).
    #[must_use]
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"delivered\": {}", self.delivered());
        let _ = write!(out, ", \"redirected\": {}", self.redirected());
        let _ = write!(out, ", \"lost\": {}", self.lost());
        let _ = write!(
            out,
            ", \"lost_dead_disk\": {}",
            self.lost_because(LostReason::DeadDisk)
        );
        let _ = write!(
            out,
            ", \"lost_retries\": {}",
            self.lost_because(LostReason::RetriesExhausted)
        );
        let _ = write!(out, ", \"replans\": {}", self.replans);
        let _ = write!(out, ", \"retries\": {}", self.retries);
        let _ = write!(out, ", \"crashes\": {}", self.crashes);
        let _ = write!(out, ", \"redirect_events\": {}", self.redirects);
        let _ = write!(out, ", \"degraded_rounds\": {}", self.degraded_rounds);
        out.push_str(", \"fates\": [");
        for (i, f) in self.fates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = match f {
                ItemFate::Delivered { redirected: false } => "delivered",
                ItemFate::Delivered { redirected: true } => "delivered-redirected",
                ItemFate::Lost(LostReason::DeadDisk) => "lost-dead-disk",
                ItemFate::Lost(LostReason::RetriesExhausted) => "lost-retries",
            };
            let _ = write!(out, "\"{s}\"");
        }
        let _ = write!(out, "], \"sim\": {}}}", self.sim.to_json());
        out
    }
}

impl std::fmt::Display for ExecReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exec(time={:.3}, delivered={}/{}, redirected={}, lost={}, replans={}, retries={})",
            self.sim.total_time,
            self.delivered(),
            self.fates.len(),
            self.redirected(),
            self.lost(),
            self.replans,
            self.retries,
        )
    }
}

/// One in-flight transfer attempt.
struct Active {
    edge: EdgeId,
    root: usize,
    left: f64,
    will_fail: bool,
}

/// One item waiting out its retry backoff.
struct Waiting {
    edge: EdgeId,
    root: usize,
    resume_at: f64,
}

fn degraded_set(bw: &[f64], bw_init: &[f64], crashed: &[bool], threshold: f64) -> Vec<bool> {
    (0..bw.len())
        .map(|v| !crashed[v] && bw[v] < threshold * bw_init[v])
        .collect()
}

/// Executes `schedule` against `faults`, recovering per `config`, and
/// accounts every item of `problem`.
///
/// `solver` re-solves residual instances at replans (pass the same solver
/// the schedule came from for like-for-like plans). The run is fully
/// deterministic — see the module docs.
///
/// # Errors
///
/// Returns [`ExecError`] when the inputs are inconsistent, the fault plan
/// is invalid for the cluster, or a replan fails.
#[allow(clippy::too_many_lines)]
pub fn execute(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
    faults: &FaultPlan,
    config: &ExecutorConfig,
    solver: &dyn Solver,
) -> Result<ExecReport, ExecError> {
    if cluster.num_disks() != problem.num_disks() {
        return Err(ExecError::Sim(SimError::ClusterSizeMismatch {
            cluster: cluster.num_disks(),
            problem: problem.num_disks(),
        }));
    }
    schedule
        .validate(problem)
        .map_err(|e| ExecError::Sim(SimError::InfeasibleSchedule(e)))?;
    faults.validate(problem.num_disks())?;
    let _span = dmig_obs::span_labeled("execute", || {
        format!(
            "items={} rounds={} replan={}",
            problem.num_items(),
            schedule.makespan(),
            config.replan
        )
    });

    let n = problem.num_disks();
    let num_roots = problem.num_items();
    let bw_init: Vec<f64> = (0..n).map(|v| cluster.bandwidth(NodeId::new(v))).collect();
    let mut bw = bw_init.clone();
    let mut crashed = vec![false; n];
    let mut replacement_of: Vec<Option<NodeId>> = vec![None; n];
    let sizes: Vec<f64> = (0..num_roots)
        .map(|e| cluster.item_size(EdgeId::new(e)))
        .collect();

    let timeline = faults.timeline();
    let mut next_fault = 0usize;
    let flaky_p = faults.flaky.map_or(0.0, |f| f.probability);

    // Per-original-item state, stable across replans ("root" ids).
    let mut fates: Vec<Option<ItemFate>> = vec![None; num_roots];
    let mut attempts: Vec<u32> = vec![0; num_roots];
    let mut redirected_flag = vec![false; num_roots];

    // The current (possibly residual) plan and its item-identity map.
    let mut cur_problem = problem.clone();
    let mut cur_schedule = schedule.clone();
    let mut roots: Vec<usize> = (0..num_roots).collect();
    let mut done = vec![false; num_roots];

    let mut base = 0.0f64;
    let mut round_durations: Vec<f64> = Vec::new();
    let mut disk_busy = vec![0.0f64; n];
    let mut volume = 0.0f64;

    let mut replans = 0u64;
    let mut retries = 0u64;
    let mut crashes = 0u64;
    let mut redirects = 0u64;
    let mut degraded_rounds = 0u64;

    let mut stall = StallDetector::new(config.stall_factor);
    let mut degraded_at_last_replan = vec![false; n];
    let mut crash_dirty = false;
    let mut ticker = RoundTicker::new(cur_schedule.makespan());
    let mut round_idx = 0usize;

    loop {
        let mut stall_fired = false;
        let executed_round = round_idx < cur_schedule.makespan();
        if executed_round {
            let round: Vec<EdgeId> = cur_schedule.rounds()[round_idx].clone();
            round_idx += 1;
            // Events carry the monotonic executed-round index (replans
            // reset `round_idx`, not `round_durations`).
            emit(Event::RoundStart {
                round: round_durations.len() as u64,
                transfers: round.len() as u64,
                time: base,
            });
            let g = cur_problem.graph();
            let mut remaining: Vec<Active> = Vec::with_capacity(round.len());
            let mut waiting: Vec<Waiting> = Vec::new();
            for &e in &round {
                let ep = g.endpoints(e);
                let root = roots[e.index()];
                if crashed[ep.u.index()] || crashed[ep.v.index()] {
                    if config.replan {
                        // Stays pending; the crash-triggered replan at this
                        // round's boundary redirects or loses it.
                    } else {
                        done[e.index()] = true;
                        fates[root] = Some(ItemFate::Lost(LostReason::DeadDisk));
                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                        emit(Event::ItemLost {
                            item: root as u64,
                            reason: "dead-disk",
                            time: base,
                        });
                    }
                    continue;
                }
                attempts[root] += 1;
                let will_fail =
                    attempt_fails(faults.seed, root as u64, u64::from(attempts[root]), flaky_p);
                remaining.push(Active {
                    edge: e,
                    root,
                    left: sizes[root],
                    will_fail,
                });
            }
            volume += remaining.iter().map(|t| t.left).sum::<f64>();

            let mut local = 0.0f64;
            let mut active = vec![0usize; n];
            loop {
                let now = base + local;
                // Apply due fault events.
                while next_fault < timeline.len() && timeline[next_fault].time <= now + EVENT_EPS {
                    let ev = timeline[next_fault];
                    next_fault += 1;
                    match ev.action {
                        FaultAction::SetBandwidthFactor(d, f) => {
                            // Crash-stop wins: a dead disk never recovers.
                            if !crashed[d.index()] {
                                bw[d.index()] = bw_init[d.index()] * f;
                            }
                        }
                        FaultAction::Crash(d, repl) => {
                            crashed[d.index()] = true;
                            bw[d.index()] = 0.0;
                            replacement_of[d.index()] = repl;
                            crash_dirty = true;
                            crashes += 1;
                            dmig_obs::counter_add(keys::EXEC_CRASHES, 1);
                            emit(Event::Crash {
                                disk: d.index() as u64,
                                replacement: repl.map(|r| r.index() as u64),
                                time: ev.time,
                            });
                            let mut keep = Vec::with_capacity(remaining.len());
                            for t in remaining {
                                if g.endpoints(t.edge).contains(d) {
                                    // Abort: un-count the bytes never moved.
                                    volume -= t.left;
                                    if !config.replan {
                                        done[t.edge.index()] = true;
                                        fates[t.root] = Some(ItemFate::Lost(LostReason::DeadDisk));
                                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                                        emit(Event::ItemLost {
                                            item: t.root as u64,
                                            reason: "dead-disk",
                                            time: ev.time,
                                        });
                                    }
                                } else {
                                    keep.push(t);
                                }
                            }
                            remaining = keep;
                            let mut keepw = Vec::with_capacity(waiting.len());
                            for w in waiting {
                                if g.endpoints(w.edge).contains(d) {
                                    if !config.replan {
                                        done[w.edge.index()] = true;
                                        fates[w.root] = Some(ItemFate::Lost(LostReason::DeadDisk));
                                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                                        emit(Event::ItemLost {
                                            item: w.root as u64,
                                            reason: "dead-disk",
                                            time: ev.time,
                                        });
                                    }
                                } else {
                                    keepw.push(w);
                                }
                            }
                            waiting = keepw;
                        }
                    }
                }
                // Release retries whose backoff has elapsed.
                if !waiting.is_empty() {
                    let mut still = Vec::with_capacity(waiting.len());
                    for w in waiting {
                        if w.resume_at <= now + EVENT_EPS {
                            attempts[w.root] += 1;
                            let will_fail = attempt_fails(
                                faults.seed,
                                w.root as u64,
                                u64::from(attempts[w.root]),
                                flaky_p,
                            );
                            volume += sizes[w.root];
                            remaining.push(Active {
                                edge: w.edge,
                                root: w.root,
                                left: sizes[w.root],
                                will_fail,
                            });
                        } else {
                            still.push(w);
                        }
                    }
                    waiting = still;
                }
                if remaining.is_empty() && waiting.is_empty() {
                    break;
                }
                if remaining.is_empty() {
                    // Idle: jump to the earliest retry release or fault.
                    let mut wake = waiting
                        .iter()
                        .map(|w| w.resume_at)
                        .fold(f64::INFINITY, f64::min);
                    if let Some(ev) = timeline.get(next_fault) {
                        wake = wake.min(ev.time);
                    }
                    local = (wake - base).max(local);
                    continue;
                }
                active.iter_mut().for_each(|k| *k = 0);
                for t in &remaining {
                    let ep = g.endpoints(t.edge);
                    active[ep.u.index()] += 1;
                    active[ep.v.index()] += 1;
                }
                let rates: Vec<f64> = remaining
                    .iter()
                    .map(|t| {
                        let ep = g.endpoints(t.edge);
                        (bw[ep.u.index()] / active[ep.u.index()] as f64)
                            .min(bw[ep.v.index()] / active[ep.v.index()] as f64)
                    })
                    .collect();
                let to_completion = remaining
                    .iter()
                    .zip(&rates)
                    .map(|(t, &r)| t.left / r)
                    .fold(f64::INFINITY, f64::min);
                let to_fault = timeline
                    .get(next_fault)
                    .map_or(f64::INFINITY, |ev| (ev.time - now).max(0.0));
                let to_resume = waiting
                    .iter()
                    .map(|w| (w.resume_at - now).max(0.0))
                    .fold(f64::INFINITY, f64::min);
                let dt = to_completion.min(to_fault).min(to_resume);
                local += dt;
                for v in 0..n {
                    if active[v] > 0 {
                        disk_busy[v] += dt;
                    }
                }
                let mut next_remaining = Vec::with_capacity(remaining.len());
                for (mut t, r) in remaining.into_iter().zip(rates) {
                    t.left -= r * dt;
                    if t.left > DONE_EPS {
                        next_remaining.push(t);
                        continue;
                    }
                    if t.will_fail {
                        // Flaky failure surfaces at completion (a corrupt
                        // transfer is only detected when verified).
                        if attempts[t.root] > config.retry_max {
                            done[t.edge.index()] = true;
                            fates[t.root] = Some(ItemFate::Lost(LostReason::RetriesExhausted));
                            dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                            emit(Event::ItemLost {
                                item: t.root as u64,
                                reason: "retries-exhausted",
                                time: base + local,
                            });
                        } else {
                            retries += 1;
                            dmig_obs::counter_add(keys::EXEC_RETRIES, 1);
                            let delay = config.backoff_base
                                * config
                                    .backoff_factor
                                    .powi(i32::try_from(attempts[t.root]).unwrap_or(i32::MAX) - 1);
                            emit(Event::Retry {
                                item: t.root as u64,
                                attempt: u64::from(attempts[t.root]),
                                resume_at: base + local + delay,
                                time: base + local,
                            });
                            waiting.push(Waiting {
                                edge: t.edge,
                                root: t.root,
                                resume_at: base + local + delay,
                            });
                        }
                    } else {
                        done[t.edge.index()] = true;
                        fates[t.root] = Some(ItemFate::Delivered {
                            redirected: redirected_flag[t.root],
                        });
                        emit(Event::ItemDelivered {
                            item: t.root as u64,
                            redirected: redirected_flag[t.root],
                            time: base + local,
                        });
                    }
                }
                remaining = next_remaining;
            }
            round_durations.push(local);
            base += local;
            emit(Event::RoundEnd {
                round: (round_durations.len() - 1) as u64,
                duration: local,
                time: base,
            });
            record_sim_round(&mut ticker, round.len());
            // Simulated-time stall check: ×1e9 maps time units onto the
            // detector's ns-scaled window; the cast saturates.
            #[allow(clippy::cast_precision_loss)]
            if let Some(median) = stall.observe((local * 1e9) as u64) {
                stall_fired = true;
                emit(Event::Stall {
                    round: (round_durations.len() - 1) as u64,
                    duration: local,
                    median: median as f64 / 1e9,
                    time: base,
                });
            }
        }

        let now_degraded = degraded_set(&bw, &bw_init, &crashed, config.degrade_replan_threshold);
        if executed_round && now_degraded.iter().any(|&d| d) {
            degraded_rounds += 1;
            dmig_obs::counter_add(keys::EXEC_DEGRADED_ROUNDS, 1);
        }
        let pending = done.iter().any(|&d| !d);
        let exhausted = round_idx >= cur_schedule.makespan();
        if exhausted && !pending {
            break;
        }
        // Pending items after the final round can only be placed by a
        // replan; mid-schedule, replan on any fired trigger.
        let trigger =
            exhausted || crash_dirty || stall_fired || now_degraded != degraded_at_last_replan;
        if config.replan && pending && trigger {
            let caps_init = problem.capacities();
            let scaled: Vec<u32> = (0..n)
                .map(|v| {
                    if crashed[v] {
                        // Dead disks keep a token constraint; no residual
                        // edge touches them after redirection.
                        1
                    } else {
                        let c = f64::from(caps_init.get(NodeId::new(v))) * bw[v] / bw_init[v];
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let c = c.floor() as u32;
                        c.max(1)
                    }
                })
                .collect();
            let changes = ResidualChanges {
                capacities: Some(Capacities::from_vec(scaled)),
                redirects: (0..n)
                    .filter(|&v| crashed[v])
                    .map(|v| {
                        let repl = replacement_of[v].filter(|r| !crashed[r.index()]);
                        (NodeId::new(v), repl)
                    })
                    .collect(),
            };
            let pending_count = done.iter().filter(|&&d| !d).count();
            let r = {
                let _span = dmig_obs::span_labeled("exec_replan", || {
                    format!("pending={pending_count} crashes={crashes}")
                });
                replan_with(&cur_problem, &done, &[], &changes, solver)?
            };
            replans += 1;
            dmig_obs::counter_add(keys::EXEC_REPLANS, 1);
            emit(Event::Replan {
                pending: pending_count as u64,
                reason: if crash_dirty {
                    "crash"
                } else if now_degraded != degraded_at_last_replan {
                    "degraded-set"
                } else if stall_fired {
                    "stall"
                } else {
                    "exhausted"
                },
                time: base,
            });
            let mut new_roots = Vec::with_capacity(r.origin.len());
            for (i, o) in r.origin.iter().enumerate() {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                let root = roots[e.index()];
                if r.problem.graph().endpoints(EdgeId::new(i)) != cur_problem.graph().endpoints(*e)
                    && !redirected_flag[root]
                {
                    redirected_flag[root] = true;
                    redirects += 1;
                    dmig_obs::counter_add(keys::EXEC_REDIRECTS, 1);
                }
                new_roots.push(root);
            }
            for o in &r.lost {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                fates[roots[e.index()]] = Some(ItemFate::Lost(LostReason::DeadDisk));
                dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                emit(Event::ItemLost {
                    item: roots[e.index()] as u64,
                    reason: "dead-disk",
                    time: base,
                });
            }
            for o in &r.completed {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                let root = roots[e.index()];
                if !redirected_flag[root] {
                    redirected_flag[root] = true;
                    redirects += 1;
                    dmig_obs::counter_add(keys::EXEC_REDIRECTS, 1);
                }
                fates[root] = Some(ItemFate::Delivered { redirected: true });
                emit(Event::ItemDelivered {
                    item: root as u64,
                    redirected: true,
                    time: base,
                });
            }
            cur_problem = r.problem;
            cur_schedule = r.schedule;
            roots = new_roots;
            done = vec![false; roots.len()];
            round_idx = 0;
            ticker = RoundTicker::new(cur_schedule.makespan());
            degraded_at_last_replan = now_degraded;
            crash_dirty = false;
        } else if exhausted {
            // Pending without replanning: crash-stranded items are lost
            // where they stand.
            for (e, d) in done.iter().enumerate() {
                if !d {
                    fates[roots[e]] = Some(ItemFate::Lost(LostReason::DeadDisk));
                    dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                    emit(Event::ItemLost {
                        item: roots[e] as u64,
                        reason: "dead-disk",
                        time: base,
                    });
                }
            }
            break;
        }
    }

    let fates: Vec<ItemFate> = fates
        .into_iter()
        .map(|f| f.expect("every item is accounted by the executor"))
        .collect();
    Ok(ExecReport {
        sim: SimReport {
            total_time: base,
            round_durations,
            disk_busy,
            volume,
        },
        fates,
        replans,
        retries,
        crashes,
        redirects,
        degraded_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_adaptive;
    use crate::faults::{CrashFault, DegradeFault, FlakySpec};
    use dmig_core::solver::AutoSolver;
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::GraphBuilder;

    /// 4 disks: items 0-1 ×2 and 1-2 ×2, disk 3 a spare; c = 2.
    fn spare_instance() -> (MigrationProblem, MigrationSchedule, Cluster) {
        let g = GraphBuilder::new()
            .nodes(4)
            .edge(0, 1)
            .edge(0, 1)
            .edge(1, 2)
            .edge(1, 2)
            .build();
        let p = MigrationProblem::uniform(g, 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        (p, s, Cluster::uniform(4, 1.0))
    }

    fn crash_plan(disk: usize, time: f64, replacement: Option<usize>) -> FaultPlan {
        FaultPlan {
            crashes: vec![CrashFault {
                disk: NodeId::new(disk),
                time,
                replacement: replacement.map(NodeId::new),
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn zero_fault_plan_reproduces_adaptive_exactly() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![2.0, 1.0, 0.5]);
        let baseline = simulate_adaptive(&p, &s, &cluster).unwrap();
        let r = execute(
            &p,
            &s,
            &cluster,
            &FaultPlan::default(),
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.sim.total_time.to_bits(), baseline.total_time.to_bits());
        assert_eq!(r.sim.round_durations, baseline.round_durations);
        assert_eq!(r.sim.disk_busy, baseline.disk_busy);
        assert_eq!(r.sim.volume.to_bits(), baseline.volume.to_bits());
        assert_eq!(r.delivered(), p.num_items());
        assert_eq!((r.replans, r.retries, r.crashes), (0, 0, 0));
    }

    #[test]
    fn crash_with_replacement_recovers_everything() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost(), 0, "{r}");
        assert_eq!(r.delivered(), 4);
        assert!(r.redirected() >= 1, "items headed to disk 2 must move");
        assert!(r.replans >= 1);
        assert_eq!(r.crashes, 1);
        // The 1-2 items now land on the spare.
        assert_eq!(r.redirected(), 2);
    }

    #[test]
    fn crash_without_replacement_loses_exactly_the_dead_disks_items() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, None);
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost_because(LostReason::DeadDisk), 2);
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.delivered() + r.lost(), p.num_items());
        assert!(r.replans >= 1);
    }

    #[test]
    fn without_replanning_crash_items_are_lost_in_place() {
        let (p, s, cluster) = spare_instance();
        // Even with a spare on offer, no replan means no redirection.
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.replans, 0);
        assert_eq!(r.redirected(), 0);
        assert_eq!(r.lost_because(LostReason::DeadDisk), 2);
        assert_eq!(r.delivered() + r.lost(), p.num_items());
    }

    #[test]
    fn flaky_failures_retry_and_deliver() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 3), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(3, 1.0);
        let faults = FaultPlan {
            seed: 11,
            flaky: Some(FlakySpec { probability: 0.4 }),
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                retry_max: 20,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.delivered(), p.num_items());
        assert!(r.retries > 0, "p=0.4 over 9 items must fail somewhere");
        // Retried attempts put extra bytes on the wire.
        assert!(r.sim.volume > p.num_items() as f64);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_loss() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let faults = FaultPlan {
            flaky: Some(FlakySpec { probability: 1.0 }),
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &Cluster::uniform(2, 1.0),
            &faults,
            &ExecutorConfig {
                retry_max: 2,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost_because(LostReason::RetriesExhausted), 1);
        assert_eq!(r.retries, 2, "two retries, then the budget is spent");
    }

    #[test]
    fn degradation_counts_rounds_and_triggers_capacity_replan() {
        // Plenty of rounds through disk 0, with an outage long enough
        // (t=1.0 to t=9.0) to span several round boundaries: the onset
        // and the recovery must each be visible at a boundary check.
        let p = MigrationProblem::uniform(complete_multigraph(3, 6), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(3, 1.0);
        let faults = FaultPlan {
            degradations: vec![DegradeFault {
                disk: NodeId::new(0),
                time: 1.0,
                factor: 0.2,
                recover_at: Some(9.0),
            }],
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.delivered(), p.num_items());
        assert_eq!(r.lost(), 0);
        assert!(r.degraded_rounds >= 1, "{r}");
        // Degradation onset and recovery each change the degraded set.
        assert!(r.replans >= 2, "{r}");
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (p, s, _) = spare_instance();
        let err = execute(
            &p,
            &s,
            &Cluster::uniform(2, 1.0),
            &FaultPlan::default(),
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Sim(SimError::ClusterSizeMismatch { .. })
        ));
        let bad_faults = crash_plan(9, 0.0, None);
        let err = execute(
            &p,
            &s,
            &Cluster::uniform(4, 1.0),
            &bad_faults,
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Fault(_)));
    }

    #[test]
    fn report_json_is_well_formed_and_accounts_everything() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        let j = r.to_json();
        assert!(j.contains("\"delivered\": 4"));
        assert!(j.contains("\"lost\": 0"));
        assert!(j.contains("\"replans\": "));
        assert!(j.contains("delivered-redirected"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(r.fates.len(), p.num_items());
    }
}
