//! Closed-loop, fault-tolerant schedule execution.
//!
//! The engines in [`crate::engine`] replay a frozen schedule; this module
//! *executes* one against a [`FaultPlan`] and repairs the plan as reality
//! diverges from it. Per round (rounds stay barriers, continuous-time
//! fair-share inside, as in [`crate::engine::simulate_adaptive`]):
//!
//! * **flaky transfers** fail at their would-be completion and are retried
//!   from zero after bounded exponential backoff; when
//!   [`ExecutorConfig::retry_max`] retries are spent the item is
//!   [`LostReason::RetriesExhausted`];
//! * **crash-stop failures** zero a disk's bandwidth forever and abort its
//!   in-flight transfers; with replanning enabled the aborted and
//!   not-yet-scheduled items on that disk are carried to the next replan,
//!   which redirects them to the crash's replacement disk (or reports them
//!   [`LostReason::DeadDisk`]);
//! * **degradations** collapse a disk's bandwidth; the executor scales the
//!   disk's transfer constraint `c_v' = max(1, ⌊c_v · bw_now/bw_init⌋)`
//!   at the next replan so the residual schedule stops over-subscribing
//!   the slow disk.
//!
//! At each round boundary the executor replans — re-solving the residual
//! multigraph via [`dmig_core::replan::replan_with`] with per-item
//! doneness — when any of three triggers fires: a crash happened since the
//! last replan, the set of degraded disks changed (a disk fell below
//! [`ExecutorConfig::degrade_replan_threshold`] × its initial bandwidth,
//! or recovered), or the round blew past the rolling-median
//! [`StallDetector`] fed with *simulated* durations. Item identity is
//! preserved through [`dmig_core::replan::ItemOrigin`] across any number
//! of replans, so the final [`ExecReport`] accounts every original item
//! as delivered (possibly redirected) or lost.
//!
//! **Determinism:** the executor runs entirely in simulated time — the
//! flaky coin is a seeded hash, the stall detector sees simulated
//! durations, and solver results are thread-count independent — so the
//! same instance, fault plan, and config produce a byte-identical
//! [`ExecReport::to_json`] at any thread count.
//!
//! **Checkpoint/resume:** [`Executor`] is the resumable form of
//! [`execute`]: it advances one round-boundary iteration per
//! [`Executor::step`], serializes its complete state between steps as a
//! `dmig-exec-ckpt/1` JSON document ([`Executor::checkpoint_json`]), and
//! revives from one ([`Executor::restore`]) — in a different process,
//! after a `kill -9` — with floating-point state carried as IEEE-754 bit
//! patterns, so the resumed run's final report is byte-identical to an
//! uninterrupted one.

use dmig_core::replan::{rebuild_residual, replan_with, ItemOrigin, ReplanError, ResidualChanges};
use dmig_core::solver::Solver;
use dmig_core::{Capacities, MigrationProblem, MigrationSchedule};
use dmig_graph::{EdgeId, Endpoints, NodeId};
use dmig_obs::events::{emit, Event};
use dmig_obs::keys;
use dmig_obs::Value;

use crate::engine::{record_sim_round, SimError};
use crate::faults::{attempt_fails, FaultAction, FaultEvent, FaultPlan, FaultPlanError};
use crate::progress::{RoundTicker, StallDetector, STALL_FACTOR};
use crate::{Cluster, SimReport};

/// Same tolerance the event engine uses to treat an event as "due".
const EVENT_EPS: f64 = 1e-12;
/// Same tolerance the engines use to treat a transfer as finished.
const DONE_EPS: f64 = 1e-9;

/// Policy knobs for [`execute`].
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Enables closed-loop replanning. Without it the executor still
    /// retries flaky transfers, but items touching a crashed disk are
    /// lost where they stand — nothing re-solves the residual.
    pub replan: bool,
    /// Retries allowed per item after its first attempt; the attempt
    /// budget is `retry_max + 1`.
    pub retry_max: u32,
    /// Backoff before the first retry, in simulated time units.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on every further retry.
    pub backoff_factor: f64,
    /// A live disk counts as degraded while its bandwidth is below this
    /// fraction of its initial bandwidth; a change in the degraded set
    /// triggers a replan.
    pub degrade_replan_threshold: f64,
    /// Multiple-of-rolling-median threshold for the simulated-time stall
    /// trigger (see [`StallDetector`]).
    pub stall_factor: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            replan: false,
            retry_max: 3,
            backoff_base: 0.25,
            backoff_factor: 2.0,
            degrade_replan_threshold: 0.5,
            stall_factor: STALL_FACTOR,
        }
    }
}

/// Why an item was not delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LostReason {
    /// An endpoint crashed and no live replacement was available (or
    /// replanning was disabled).
    DeadDisk,
    /// The item's attempt budget ran out.
    RetriesExhausted,
}

/// Final fate of one original item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemFate {
    /// The item reached a destination.
    Delivered {
        /// Whether a replan moved the item off its planned endpoints.
        redirected: bool,
    },
    /// The item was not delivered.
    Lost(
        /// Why.
        LostReason,
    ),
}

impl ItemFate {
    /// Stable string code used in reports, journals, and checkpoints.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            ItemFate::Delivered { redirected: false } => "delivered",
            ItemFate::Delivered { redirected: true } => "delivered-redirected",
            ItemFate::Lost(LostReason::DeadDisk) => "lost-dead-disk",
            ItemFate::Lost(LostReason::RetriesExhausted) => "lost-retries",
        }
    }

    /// Inverse of [`code`](Self::code).
    #[must_use]
    pub fn from_code(code: &str) -> Option<ItemFate> {
        match code {
            "delivered" => Some(ItemFate::Delivered { redirected: false }),
            "delivered-redirected" => Some(ItemFate::Delivered { redirected: true }),
            "lost-dead-disk" => Some(ItemFate::Lost(LostReason::DeadDisk)),
            "lost-retries" => Some(ItemFate::Lost(LostReason::RetriesExhausted)),
            _ => None,
        }
    }
}

/// Errors from [`execute`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// Input validation failed (schedule/cluster/shape).
    Sim(SimError),
    /// The fault plan is invalid for this cluster.
    Fault(FaultPlanError),
    /// A mid-flight replan failed.
    Replan(ReplanError),
    /// A checkpoint document could not be parsed, or does not match the
    /// inputs it claims to resume.
    Checkpoint(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Sim(e) => write!(f, "{e}"),
            ExecError::Fault(e) => write!(f, "{e}"),
            ExecError::Replan(e) => write!(f, "replan failed: {e}"),
            ExecError::Checkpoint(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Sim(e) => Some(e),
            ExecError::Fault(e) => Some(e),
            ExecError::Replan(e) => Some(e),
            ExecError::Checkpoint(_) => None,
        }
    }
}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<FaultPlanError> for ExecError {
    fn from(e: FaultPlanError) -> Self {
        ExecError::Fault(e)
    }
}

impl From<ReplanError> for ExecError {
    fn from(e: ReplanError) -> Self {
        ExecError::Replan(e)
    }
}

/// The outcome of a fault-injected execution: the usual timing report plus
/// per-item accounting and recovery statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecReport {
    /// Timing/utilization report over every executed round (across all
    /// replans). `volume` counts bytes put on the wire, including retried
    /// attempts, minus the unmoved remainder of aborted transfers.
    pub sim: SimReport,
    /// `fates[e]` is the fate of original item `e`. Every item is
    /// accounted.
    pub fates: Vec<ItemFate>,
    /// Residual re-solves performed.
    pub replans: u64,
    /// Transfer attempts restarted after a flaky failure.
    pub retries: u64,
    /// Crash-stop events applied.
    pub crashes: u64,
    /// Items moved off their planned endpoints by a replan (each item
    /// counted once).
    pub redirects: u64,
    /// Rounds that ended with at least one live disk below the
    /// degradation threshold.
    pub degraded_rounds: u64,
}

impl ExecReport {
    /// Items delivered (including redirected ones).
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Delivered { .. }))
            .count()
    }

    /// Items delivered somewhere other than their planned endpoints.
    #[must_use]
    pub fn redirected(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Delivered { redirected: true }))
            .count()
    }

    /// Items lost, for any reason.
    #[must_use]
    pub fn lost(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Lost(_)))
            .count()
    }

    /// Items lost for a specific reason.
    #[must_use]
    pub fn lost_because(&self, reason: LostReason) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ItemFate::Lost(r) if *r == reason))
            .count()
    }

    /// Serializes the report as a self-contained JSON object with
    /// deterministic formatting (the byte-identical determinism guarantee
    /// is stated over this string).
    #[must_use]
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"delivered\": {}", self.delivered());
        let _ = write!(out, ", \"redirected\": {}", self.redirected());
        let _ = write!(out, ", \"lost\": {}", self.lost());
        let _ = write!(
            out,
            ", \"lost_dead_disk\": {}",
            self.lost_because(LostReason::DeadDisk)
        );
        let _ = write!(
            out,
            ", \"lost_retries\": {}",
            self.lost_because(LostReason::RetriesExhausted)
        );
        let _ = write!(out, ", \"replans\": {}", self.replans);
        let _ = write!(out, ", \"retries\": {}", self.retries);
        let _ = write!(out, ", \"crashes\": {}", self.crashes);
        let _ = write!(out, ", \"redirect_events\": {}", self.redirects);
        let _ = write!(out, ", \"degraded_rounds\": {}", self.degraded_rounds);
        out.push_str(", \"fates\": [");
        for (i, f) in self.fates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", f.code());
        }
        let _ = write!(out, "], \"sim\": {}}}", self.sim.to_json());
        out
    }
}

impl std::fmt::Display for ExecReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exec(time={:.3}, delivered={}/{}, redirected={}, lost={}, replans={}, retries={})",
            self.sim.total_time,
            self.delivered(),
            self.fates.len(),
            self.redirected(),
            self.lost(),
            self.replans,
            self.retries,
        )
    }
}

/// One in-flight transfer attempt.
struct Active {
    edge: EdgeId,
    root: usize,
    left: f64,
    will_fail: bool,
}

/// One item waiting out its retry backoff.
struct Waiting {
    edge: EdgeId,
    root: usize,
    resume_at: f64,
}

fn degraded_set(bw: &[f64], bw_init: &[f64], crashed: &[bool], threshold: f64) -> Vec<bool> {
    (0..bw.len())
        .map(|v| !crashed[v] && bw[v] < threshold * bw_init[v])
        .collect()
}

/// Executes `schedule` against `faults`, recovering per `config`, and
/// accounts every item of `problem`.
///
/// `solver` re-solves residual instances at replans (pass the same solver
/// the schedule came from for like-for-like plans). The run is fully
/// deterministic — see the module docs. This is the one-shot wrapper over
/// [`Executor`]; drive that directly to checkpoint and resume.
///
/// # Errors
///
/// Returns [`ExecError`] when the inputs are inconsistent, the fault plan
/// is invalid for the cluster, or a replan fails.
pub fn execute(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
    faults: &FaultPlan,
    config: &ExecutorConfig,
    solver: &dyn Solver,
) -> Result<ExecReport, ExecError> {
    let mut exec = Executor::new(problem, schedule, cluster, faults, config, solver)?;
    let _span = dmig_obs::span_labeled("execute", || {
        format!(
            "items={} rounds={} replan={}",
            problem.num_items(),
            schedule.makespan(),
            config.replan
        )
    });
    while exec.step()? == StepOutcome::Running {}
    Ok(exec.into_report())
}

/// Outcome of one [`Executor::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// More rounds (or boundary work) remain — step again.
    Running,
    /// Every item is accounted; take the report with
    /// [`Executor::into_report`].
    Finished,
}

/// Schema tag carried by [`Executor::checkpoint_json`] documents.
pub const CHECKPOINT_SCHEMA: &str = "dmig-exec-ckpt/1";

fn validate_inputs(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
    faults: &FaultPlan,
) -> Result<(), ExecError> {
    if cluster.num_disks() != problem.num_disks() {
        return Err(ExecError::Sim(SimError::ClusterSizeMismatch {
            cluster: cluster.num_disks(),
            problem: problem.num_disks(),
        }));
    }
    schedule
        .validate(problem)
        .map_err(|e| ExecError::Sim(SimError::InfeasibleSchedule(e)))?;
    faults.validate(problem.num_disks())?;
    Ok(())
}

/// Resumable form of [`execute`]: the same closed loop, advanced one
/// round-boundary iteration at a time with [`step`](Executor::step).
///
/// Between any two steps the complete mutable state is serializable with
/// [`checkpoint_json`](Executor::checkpoint_json) and restorable with
/// [`restore`](Executor::restore) — in another process, after a `kill -9`
/// — into a continuation that performs bit-for-bit the work the
/// interrupted run would have performed. Floating-point state travels as
/// IEEE-754 bit patterns and the restored run re-enters the surviving
/// residual schedule via [`dmig_core::replan::rebuild_residual`] instead
/// of re-solving, so the final [`ExecReport::to_json`] is byte-identical
/// to an uninterrupted run under the same seed and fault plan.
pub struct Executor<'a> {
    problem: &'a MigrationProblem,
    faults: &'a FaultPlan,
    config: &'a ExecutorConfig,
    solver: &'a dyn Solver,
    // Derived once from the cluster/fault plan; immutable over the run.
    bw_init: Vec<f64>,
    sizes: Vec<f64>,
    timeline: Vec<FaultEvent>,
    flaky_p: f64,
    // Checkpointed state: everything below round-trips through
    // `checkpoint_json`/`restore`.
    bw: Vec<f64>,
    crashed: Vec<bool>,
    replacement_of: Vec<Option<NodeId>>,
    next_fault: usize,
    fates: Vec<Option<ItemFate>>,
    attempts: Vec<u32>,
    redirected_flag: Vec<bool>,
    cur_problem: MigrationProblem,
    cur_schedule: MigrationSchedule,
    roots: Vec<usize>,
    done: Vec<bool>,
    base: f64,
    round_durations: Vec<f64>,
    disk_busy: Vec<f64>,
    volume: f64,
    replans: u64,
    retries: u64,
    crashes: u64,
    redirects: u64,
    degraded_rounds: u64,
    stall: StallDetector,
    degraded_at_last_replan: Vec<bool>,
    crash_dirty: bool,
    round_idx: usize,
    finished: bool,
    // Wall-clock progress reporting; recreated on restore, never
    // checkpointed (it cannot influence the report).
    ticker: RoundTicker,
}

impl<'a> Executor<'a> {
    /// Validates the inputs and builds an executor positioned before the
    /// first round.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the inputs are inconsistent or the
    /// fault plan is invalid for the cluster.
    pub fn new(
        problem: &'a MigrationProblem,
        schedule: &MigrationSchedule,
        cluster: &Cluster,
        faults: &'a FaultPlan,
        config: &'a ExecutorConfig,
        solver: &'a dyn Solver,
    ) -> Result<Executor<'a>, ExecError> {
        validate_inputs(problem, schedule, cluster, faults)?;
        let n = problem.num_disks();
        let num_roots = problem.num_items();
        let bw_init: Vec<f64> = (0..n).map(|v| cluster.bandwidth(NodeId::new(v))).collect();
        let sizes: Vec<f64> = (0..num_roots)
            .map(|e| cluster.item_size(EdgeId::new(e)))
            .collect();
        let cur_schedule = schedule.clone();
        let ticker = RoundTicker::new(cur_schedule.makespan());
        Ok(Executor {
            problem,
            faults,
            config,
            solver,
            bw: bw_init.clone(),
            bw_init,
            sizes,
            timeline: faults.timeline(),
            flaky_p: faults.flaky.map_or(0.0, |f| f.probability),
            crashed: vec![false; n],
            replacement_of: vec![None; n],
            next_fault: 0,
            fates: vec![None; num_roots],
            attempts: vec![0; num_roots],
            redirected_flag: vec![false; num_roots],
            cur_problem: problem.clone(),
            cur_schedule,
            roots: (0..num_roots).collect(),
            done: vec![false; num_roots],
            base: 0.0,
            round_durations: Vec::new(),
            disk_busy: vec![0.0; n],
            volume: 0.0,
            replans: 0,
            retries: 0,
            crashes: 0,
            redirects: 0,
            degraded_rounds: 0,
            stall: StallDetector::new(config.stall_factor),
            degraded_at_last_replan: vec![false; n],
            crash_dirty: false,
            round_idx: 0,
            finished: false,
            ticker,
        })
    }

    /// Whether the run has accounted every item.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Rounds executed so far, monotone across replans (replans reset the
    /// position in the residual schedule, not this count).
    #[must_use]
    pub fn executed_rounds(&self) -> usize {
        self.round_durations.len()
    }

    /// Advances the closed loop by one iteration: executes the next round
    /// of the current (possibly residual) schedule if one remains, then
    /// runs the boundary logic — loss accounting, replan triggers,
    /// termination. The state between any two calls is exactly what
    /// [`checkpoint_json`](Self::checkpoint_json) captures.
    ///
    /// # Errors
    ///
    /// [`ExecError::Replan`] when a boundary replan fails.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self) -> Result<StepOutcome, ExecError> {
        if self.finished {
            return Ok(StepOutcome::Finished);
        }
        let n = self.bw.len();
        let mut stall_fired = false;
        let executed_round = self.round_idx < self.cur_schedule.makespan();
        if executed_round {
            let round: Vec<EdgeId> = self.cur_schedule.rounds()[self.round_idx].clone();
            self.round_idx += 1;
            // Events carry the monotonic executed-round index (replans
            // reset `round_idx`, not `round_durations`).
            emit(Event::RoundStart {
                round: self.round_durations.len() as u64,
                transfers: round.len() as u64,
                time: self.base,
            });
            let g = self.cur_problem.graph();
            let mut remaining: Vec<Active> = Vec::with_capacity(round.len());
            let mut waiting: Vec<Waiting> = Vec::new();
            for &e in &round {
                let ep = g.endpoints(e);
                let root = self.roots[e.index()];
                if self.crashed[ep.u.index()] || self.crashed[ep.v.index()] {
                    if self.config.replan {
                        // Stays pending; the crash-triggered replan at this
                        // round's boundary redirects or loses it.
                    } else {
                        self.done[e.index()] = true;
                        self.fates[root] = Some(ItemFate::Lost(LostReason::DeadDisk));
                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                        emit(Event::ItemLost {
                            item: root as u64,
                            reason: "dead-disk",
                            time: self.base,
                        });
                    }
                    continue;
                }
                self.attempts[root] += 1;
                let will_fail = attempt_fails(
                    self.faults.seed,
                    root as u64,
                    u64::from(self.attempts[root]),
                    self.flaky_p,
                );
                remaining.push(Active {
                    edge: e,
                    root,
                    left: self.sizes[root],
                    will_fail,
                });
            }
            self.volume += remaining.iter().map(|t| t.left).sum::<f64>();

            let mut local = 0.0f64;
            let mut active = vec![0usize; n];
            loop {
                let now = self.base + local;
                // Apply due fault events.
                while self.next_fault < self.timeline.len()
                    && self.timeline[self.next_fault].time <= now + EVENT_EPS
                {
                    let ev = self.timeline[self.next_fault];
                    self.next_fault += 1;
                    match ev.action {
                        FaultAction::SetBandwidthFactor(d, f) => {
                            // Crash-stop wins: a dead disk never recovers.
                            if !self.crashed[d.index()] {
                                self.bw[d.index()] = self.bw_init[d.index()] * f;
                            }
                        }
                        FaultAction::Crash(d, repl) => {
                            self.crashed[d.index()] = true;
                            self.bw[d.index()] = 0.0;
                            self.replacement_of[d.index()] = repl;
                            self.crash_dirty = true;
                            self.crashes += 1;
                            dmig_obs::counter_add(keys::EXEC_CRASHES, 1);
                            emit(Event::Crash {
                                disk: d.index() as u64,
                                replacement: repl.map(|r| r.index() as u64),
                                time: ev.time,
                            });
                            let mut keep = Vec::with_capacity(remaining.len());
                            for t in remaining {
                                if g.endpoints(t.edge).contains(d) {
                                    // Abort: un-count the bytes never moved.
                                    self.volume -= t.left;
                                    if !self.config.replan {
                                        self.done[t.edge.index()] = true;
                                        self.fates[t.root] =
                                            Some(ItemFate::Lost(LostReason::DeadDisk));
                                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                                        emit(Event::ItemLost {
                                            item: t.root as u64,
                                            reason: "dead-disk",
                                            time: ev.time,
                                        });
                                    }
                                } else {
                                    keep.push(t);
                                }
                            }
                            remaining = keep;
                            let mut keepw = Vec::with_capacity(waiting.len());
                            for w in waiting {
                                if g.endpoints(w.edge).contains(d) {
                                    if !self.config.replan {
                                        self.done[w.edge.index()] = true;
                                        self.fates[w.root] =
                                            Some(ItemFate::Lost(LostReason::DeadDisk));
                                        dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                                        emit(Event::ItemLost {
                                            item: w.root as u64,
                                            reason: "dead-disk",
                                            time: ev.time,
                                        });
                                    }
                                } else {
                                    keepw.push(w);
                                }
                            }
                            waiting = keepw;
                        }
                    }
                }
                // Release retries whose backoff has elapsed.
                if !waiting.is_empty() {
                    let mut still = Vec::with_capacity(waiting.len());
                    for w in waiting {
                        if w.resume_at <= now + EVENT_EPS {
                            self.attempts[w.root] += 1;
                            let will_fail = attempt_fails(
                                self.faults.seed,
                                w.root as u64,
                                u64::from(self.attempts[w.root]),
                                self.flaky_p,
                            );
                            self.volume += self.sizes[w.root];
                            remaining.push(Active {
                                edge: w.edge,
                                root: w.root,
                                left: self.sizes[w.root],
                                will_fail,
                            });
                        } else {
                            still.push(w);
                        }
                    }
                    waiting = still;
                }
                if remaining.is_empty() && waiting.is_empty() {
                    break;
                }
                if remaining.is_empty() {
                    // Idle: jump to the earliest retry release or fault.
                    let mut wake = waiting
                        .iter()
                        .map(|w| w.resume_at)
                        .fold(f64::INFINITY, f64::min);
                    if let Some(ev) = self.timeline.get(self.next_fault) {
                        wake = wake.min(ev.time);
                    }
                    local = (wake - self.base).max(local);
                    continue;
                }
                active.iter_mut().for_each(|k| *k = 0);
                for t in &remaining {
                    let ep = g.endpoints(t.edge);
                    active[ep.u.index()] += 1;
                    active[ep.v.index()] += 1;
                }
                let rates: Vec<f64> = remaining
                    .iter()
                    .map(|t| {
                        let ep = g.endpoints(t.edge);
                        (self.bw[ep.u.index()] / active[ep.u.index()] as f64)
                            .min(self.bw[ep.v.index()] / active[ep.v.index()] as f64)
                    })
                    .collect();
                let to_completion = remaining
                    .iter()
                    .zip(&rates)
                    .map(|(t, &r)| t.left / r)
                    .fold(f64::INFINITY, f64::min);
                let to_fault = self
                    .timeline
                    .get(self.next_fault)
                    .map_or(f64::INFINITY, |ev| (ev.time - now).max(0.0));
                let to_resume = waiting
                    .iter()
                    .map(|w| (w.resume_at - now).max(0.0))
                    .fold(f64::INFINITY, f64::min);
                let dt = to_completion.min(to_fault).min(to_resume);
                local += dt;
                for (v, &k) in active.iter().enumerate() {
                    if k > 0 {
                        self.disk_busy[v] += dt;
                    }
                }
                let mut next_remaining = Vec::with_capacity(remaining.len());
                for (mut t, r) in remaining.into_iter().zip(rates) {
                    t.left -= r * dt;
                    if t.left > DONE_EPS {
                        next_remaining.push(t);
                        continue;
                    }
                    if t.will_fail {
                        // Flaky failure surfaces at completion (a corrupt
                        // transfer is only detected when verified).
                        if self.attempts[t.root] > self.config.retry_max {
                            self.done[t.edge.index()] = true;
                            self.fates[t.root] = Some(ItemFate::Lost(LostReason::RetriesExhausted));
                            dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                            emit(Event::ItemLost {
                                item: t.root as u64,
                                reason: "retries-exhausted",
                                time: self.base + local,
                            });
                        } else {
                            self.retries += 1;
                            dmig_obs::counter_add(keys::EXEC_RETRIES, 1);
                            let delay = self.config.backoff_base
                                * self.config.backoff_factor.powi(
                                    i32::try_from(self.attempts[t.root]).unwrap_or(i32::MAX) - 1,
                                );
                            emit(Event::Retry {
                                item: t.root as u64,
                                attempt: u64::from(self.attempts[t.root]),
                                resume_at: self.base + local + delay,
                                time: self.base + local,
                            });
                            waiting.push(Waiting {
                                edge: t.edge,
                                root: t.root,
                                resume_at: self.base + local + delay,
                            });
                        }
                    } else {
                        self.done[t.edge.index()] = true;
                        self.fates[t.root] = Some(ItemFate::Delivered {
                            redirected: self.redirected_flag[t.root],
                        });
                        emit(Event::ItemDelivered {
                            item: t.root as u64,
                            redirected: self.redirected_flag[t.root],
                            time: self.base + local,
                        });
                    }
                }
                remaining = next_remaining;
            }
            self.round_durations.push(local);
            self.base += local;
            emit(Event::RoundEnd {
                round: (self.round_durations.len() - 1) as u64,
                duration: local,
                time: self.base,
            });
            record_sim_round(&mut self.ticker, round.len());
            // Simulated-time stall check: ×1e9 maps time units onto the
            // detector's ns-scaled window; the cast saturates.
            #[allow(clippy::cast_precision_loss)]
            if let Some(median) = self.stall.observe((local * 1e9) as u64) {
                stall_fired = true;
                emit(Event::Stall {
                    round: (self.round_durations.len() - 1) as u64,
                    duration: local,
                    median: median as f64 / 1e9,
                    time: self.base,
                });
            }
        }

        let now_degraded = degraded_set(
            &self.bw,
            &self.bw_init,
            &self.crashed,
            self.config.degrade_replan_threshold,
        );
        if executed_round && now_degraded.iter().any(|&d| d) {
            self.degraded_rounds += 1;
            dmig_obs::counter_add(keys::EXEC_DEGRADED_ROUNDS, 1);
        }
        let pending = self.done.iter().any(|&d| !d);
        let exhausted = self.round_idx >= self.cur_schedule.makespan();
        if exhausted && !pending {
            self.finished = true;
            return Ok(StepOutcome::Finished);
        }
        // Pending items after the final round can only be placed by a
        // replan; mid-schedule, replan on any fired trigger.
        let trigger = exhausted
            || self.crash_dirty
            || stall_fired
            || now_degraded != self.degraded_at_last_replan;
        if self.config.replan && pending && trigger {
            let caps_init = self.problem.capacities();
            let scaled: Vec<u32> = (0..n)
                .map(|v| {
                    if self.crashed[v] {
                        // Dead disks keep a token constraint; no residual
                        // edge touches them after redirection.
                        1
                    } else {
                        let c =
                            f64::from(caps_init.get(NodeId::new(v))) * self.bw[v] / self.bw_init[v];
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let c = c.floor() as u32;
                        c.max(1)
                    }
                })
                .collect();
            let changes = ResidualChanges {
                capacities: Some(Capacities::from_vec(scaled)),
                redirects: (0..n)
                    .filter(|&v| self.crashed[v])
                    .map(|v| {
                        let repl = self.replacement_of[v].filter(|r| !self.crashed[r.index()]);
                        (NodeId::new(v), repl)
                    })
                    .collect(),
            };
            let pending_count = self.done.iter().filter(|&&d| !d).count();
            let r = {
                let _span = dmig_obs::span_labeled("exec_replan", || {
                    format!("pending={pending_count} crashes={}", self.crashes)
                });
                replan_with(&self.cur_problem, &self.done, &[], &changes, self.solver)?
            };
            self.replans += 1;
            dmig_obs::counter_add(keys::EXEC_REPLANS, 1);
            emit(Event::Replan {
                pending: pending_count as u64,
                reason: if self.crash_dirty {
                    "crash"
                } else if now_degraded != self.degraded_at_last_replan {
                    "degraded-set"
                } else if stall_fired {
                    "stall"
                } else {
                    "exhausted"
                },
                time: self.base,
            });
            let mut new_roots = Vec::with_capacity(r.origin.len());
            for (i, o) in r.origin.iter().enumerate() {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                let root = self.roots[e.index()];
                if r.problem.graph().endpoints(EdgeId::new(i))
                    != self.cur_problem.graph().endpoints(*e)
                    && !self.redirected_flag[root]
                {
                    self.redirected_flag[root] = true;
                    self.redirects += 1;
                    dmig_obs::counter_add(keys::EXEC_REDIRECTS, 1);
                }
                new_roots.push(root);
            }
            for o in &r.lost {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                self.fates[self.roots[e.index()]] = Some(ItemFate::Lost(LostReason::DeadDisk));
                dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                emit(Event::ItemLost {
                    item: self.roots[e.index()] as u64,
                    reason: "dead-disk",
                    time: self.base,
                });
            }
            for o in &r.completed {
                let ItemOrigin::Original(e) = o else {
                    unreachable!("executor replans add no new items");
                };
                let root = self.roots[e.index()];
                if !self.redirected_flag[root] {
                    self.redirected_flag[root] = true;
                    self.redirects += 1;
                    dmig_obs::counter_add(keys::EXEC_REDIRECTS, 1);
                }
                self.fates[root] = Some(ItemFate::Delivered { redirected: true });
                emit(Event::ItemDelivered {
                    item: root as u64,
                    redirected: true,
                    time: self.base,
                });
            }
            self.cur_problem = r.problem;
            self.cur_schedule = r.schedule;
            self.roots = new_roots;
            self.done = vec![false; self.roots.len()];
            self.round_idx = 0;
            self.ticker = RoundTicker::new(self.cur_schedule.makespan());
            self.degraded_at_last_replan = now_degraded;
            self.crash_dirty = false;
        } else if exhausted {
            // Pending without replanning: crash-stranded items are lost
            // where they stand.
            for (e, d) in self.done.iter().enumerate() {
                if !d {
                    self.fates[self.roots[e]] = Some(ItemFate::Lost(LostReason::DeadDisk));
                    dmig_obs::counter_add(keys::EXEC_LOST_ITEMS, 1);
                    emit(Event::ItemLost {
                        item: self.roots[e] as u64,
                        reason: "dead-disk",
                        time: self.base,
                    });
                }
            }
            self.finished = true;
            return Ok(StepOutcome::Finished);
        }
        Ok(StepOutcome::Running)
    }

    /// Consumes a finished executor and produces the report.
    ///
    /// # Panics
    ///
    /// Panics when called before [`step`](Self::step) returned
    /// [`StepOutcome::Finished`] — an unfinished run has unaccounted
    /// items.
    #[must_use]
    pub fn into_report(self) -> ExecReport {
        assert!(self.finished, "into_report called before the run finished");
        let fates: Vec<ItemFate> = self
            .fates
            .into_iter()
            .map(|f| f.expect("every item is accounted by the executor"))
            .collect();
        ExecReport {
            sim: SimReport {
                total_time: self.base,
                round_durations: self.round_durations,
                disk_busy: self.disk_busy,
                volume: self.volume,
            },
            fates,
            replans: self.replans,
            retries: self.retries,
            crashes: self.crashes,
            redirects: self.redirects,
            degraded_rounds: self.degraded_rounds,
        }
    }

    /// Serializes the complete resume state as one `dmig-exec-ckpt/1`
    /// JSON document (a single line with deterministic field order).
    /// Floating-point state is encoded as IEEE-754 bit patterns in
    /// decimal strings, so a restore continues with bit-identical
    /// arithmetic.
    #[must_use]
    pub fn checkpoint_json(&self) -> String {
        use core::fmt::Write as _;
        let mut o = String::from("{");
        let _ = write!(o, "\"schema\": \"{CHECKPOINT_SCHEMA}\"");
        let _ = write!(o, ", \"disks\": {}", self.bw.len());
        let _ = write!(o, ", \"items\": {}", self.fates.len());
        let _ = write!(o, ", \"executed_rounds\": {}", self.round_durations.len());
        push_list(&mut o, "bw", self.bw.iter().map(|x| x.to_bits()), true);
        push_list(
            &mut o,
            "crashed",
            self.crashed.iter().map(|&b| u8::from(b)),
            false,
        );
        push_list(
            &mut o,
            "replacement",
            self.replacement_of
                .iter()
                .map(|r| r.map_or(-1i64, |d| d.index() as i64)),
            false,
        );
        let _ = write!(o, ", \"next_fault\": {}", self.next_fault);
        push_list(
            &mut o,
            "fates",
            self.fates
                .iter()
                .map(|f| f.map_or("pending", ItemFate::code)),
            true,
        );
        push_list(&mut o, "attempts", self.attempts.iter().copied(), false);
        push_list(
            &mut o,
            "redirected",
            self.redirected_flag.iter().map(|&b| u8::from(b)),
            false,
        );
        // The residual instance: endpoints flat [u0, v0, u1, v1, ...],
        // transfer constraints, and the full current schedule.
        let g = self.cur_problem.graph();
        push_list(
            &mut o,
            "cur_edges",
            (0..g.num_edges()).flat_map(|e| {
                let ep = g.endpoints(EdgeId::new(e));
                [ep.u.index(), ep.v.index()]
            }),
            false,
        );
        push_list(
            &mut o,
            "cur_caps",
            self.cur_problem.capacities().as_slice().iter().copied(),
            false,
        );
        o.push_str(", \"cur_rounds\": [");
        for (i, round) in self.cur_schedule.rounds().iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('[');
            for (j, e) in round.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{}", e.index());
            }
            o.push(']');
        }
        o.push(']');
        push_list(&mut o, "roots", self.roots.iter().copied(), false);
        push_list(
            &mut o,
            "done",
            self.done.iter().map(|&b| u8::from(b)),
            false,
        );
        let _ = write!(o, ", \"base\": \"{}\"", self.base.to_bits());
        push_list(
            &mut o,
            "round_durations",
            self.round_durations.iter().map(|x| x.to_bits()),
            true,
        );
        push_list(
            &mut o,
            "disk_busy",
            self.disk_busy.iter().map(|x| x.to_bits()),
            true,
        );
        let _ = write!(o, ", \"volume\": \"{}\"", self.volume.to_bits());
        let _ = write!(
            o,
            ", \"replans\": {}, \"retries\": {}, \"crashes\": {}, \"redirects\": {}, \"degraded_rounds\": {}",
            self.replans, self.retries, self.crashes, self.redirects, self.degraded_rounds
        );
        let (recent, next) = self.stall.window();
        push_list(&mut o, "stall_recent", recent.iter().copied(), true);
        let _ = write!(o, ", \"stall_next\": {next}");
        push_list(
            &mut o,
            "degraded_set",
            self.degraded_at_last_replan.iter().map(|&b| u8::from(b)),
            false,
        );
        let _ = write!(o, ", \"crash_dirty\": {}", u8::from(self.crash_dirty));
        let _ = write!(o, ", \"round_idx\": {}", self.round_idx);
        o.push('}');
        o
    }

    /// Rebuilds an executor from a [`checkpoint_json`](Self::checkpoint_json)
    /// document, positioned exactly where the interrupted run was at that
    /// boundary. `problem`, `cluster`, `faults`, `config`, and `solver`
    /// must be the ones the original run used (the workspace layer
    /// persists and re-loads them); the residual schedule is *not*
    /// re-solved — it is revived verbatim via
    /// [`dmig_core::replan::rebuild_residual`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Checkpoint`] when the document is unparseable or does
    /// not fit the given inputs; [`ExecError::Fault`]/[`ExecError::Sim`]
    /// when the inputs themselves are invalid.
    #[allow(clippy::too_many_lines)]
    pub fn restore(
        problem: &'a MigrationProblem,
        cluster: &Cluster,
        faults: &'a FaultPlan,
        config: &'a ExecutorConfig,
        solver: &'a dyn Solver,
        checkpoint: &str,
    ) -> Result<Executor<'a>, ExecError> {
        if cluster.num_disks() != problem.num_disks() {
            return Err(ExecError::Sim(SimError::ClusterSizeMismatch {
                cluster: cluster.num_disks(),
                problem: problem.num_disks(),
            }));
        }
        faults.validate(problem.num_disks())?;
        let doc = Value::parse(checkpoint.trim())
            .map_err(|e| ck_err(format!("unparseable checkpoint: {e}")))?;
        let schema = doc
            .get_path("schema")
            .and_then(Value::as_str)
            .unwrap_or_default();
        if schema != CHECKPOINT_SCHEMA {
            return Err(ck_err(format!(
                "checkpoint schema `{schema}` is not `{CHECKPOINT_SCHEMA}`"
            )));
        }
        let n = problem.num_disks();
        let num_roots = problem.num_items();
        if ck_usize(&doc, "disks")? != n {
            return Err(ck_err(format!(
                "checkpoint is for a {}-disk cluster, instance has {n}",
                ck_usize(&doc, "disks")?
            )));
        }
        if ck_usize(&doc, "items")? != num_roots {
            return Err(ck_err(format!(
                "checkpoint accounts {} items, instance has {num_roots}",
                ck_usize(&doc, "items")?
            )));
        }
        let timeline = faults.timeline();
        let bw = ck_bits_vec(&doc, "bw", n)?;
        let crashed = ck_bool_vec(&doc, "crashed", n)?;
        let replacement_raw = ck_i64_vec(&doc, "replacement", n)?;
        let mut replacement_of: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for (i, &r) in replacement_raw.iter().enumerate() {
            replacement_of.push(match r {
                -1 => None,
                d if d >= 0 && (d as usize) < n => Some(NodeId::new(d as usize)),
                d => return Err(ck_err(format!("replacement[{i}] = {d} is out of range"))),
            });
        }
        let next_fault = ck_usize(&doc, "next_fault")?;
        if next_fault > timeline.len() {
            return Err(ck_err(format!(
                "next_fault {next_fault} exceeds the {}-event timeline",
                timeline.len()
            )));
        }
        let fate_codes = ck_array(&doc, "fates")?;
        if fate_codes.len() != num_roots {
            return Err(ck_err(format!(
                "fates covers {} items, instance has {num_roots}",
                fate_codes.len()
            )));
        }
        let mut fates: Vec<Option<ItemFate>> = Vec::with_capacity(num_roots);
        for (i, v) in fate_codes.iter().enumerate() {
            let code = v
                .as_str()
                .ok_or_else(|| ck_err(format!("fates[{i}] is not a string")))?;
            fates.push(if code == "pending" {
                None
            } else {
                Some(
                    ItemFate::from_code(code)
                        .ok_or_else(|| ck_err(format!("fates[{i}]: unknown fate code `{code}`")))?,
                )
            });
        }
        let attempts_raw = ck_u64_vec(&doc, "attempts", num_roots)?;
        let mut attempts: Vec<u32> = Vec::with_capacity(num_roots);
        for (i, &a) in attempts_raw.iter().enumerate() {
            attempts.push(
                u32::try_from(a)
                    .map_err(|_| ck_err(format!("attempts[{i}] = {a} overflows u32")))?,
            );
        }
        let redirected_flag = ck_bool_vec(&doc, "redirected", num_roots)?;
        let flat = ck_usize_vec(&doc, "cur_edges")?;
        if flat.len() % 2 != 0 {
            return Err(ck_err(
                "cur_edges has an odd number of endpoints".to_string(),
            ));
        }
        let endpoints: Vec<Endpoints> = flat
            .chunks_exact(2)
            .map(|p| Endpoints {
                u: NodeId::new(p[0]),
                v: NodeId::new(p[1]),
            })
            .collect();
        let caps_raw = ck_u64_vec(&doc, "cur_caps", n)?;
        let mut caps: Vec<u32> = Vec::with_capacity(n);
        for (i, &c) in caps_raw.iter().enumerate() {
            caps.push(
                u32::try_from(c)
                    .map_err(|_| ck_err(format!("cur_caps[{i}] = {c} overflows u32")))?,
            );
        }
        let rounds_val = ck_array(&doc, "cur_rounds")?;
        let mut rounds: Vec<Vec<EdgeId>> = Vec::with_capacity(rounds_val.len());
        for (i, r) in rounds_val.iter().enumerate() {
            let items = r
                .as_array()
                .ok_or_else(|| ck_err(format!("cur_rounds[{i}] is not an array")))?;
            let mut round = Vec::with_capacity(items.len());
            for v in items {
                round.push(EdgeId::new(ck_index(v, "cur_rounds entry")?));
            }
            rounds.push(round);
        }
        let (cur_problem, cur_schedule) =
            rebuild_residual(n, &endpoints, Capacities::from_vec(caps), rounds)?;
        let roots = ck_usize_vec(&doc, "roots")?;
        if roots.len() != cur_problem.num_items() {
            return Err(ck_err(format!(
                "roots covers {} residual items, residual instance has {}",
                roots.len(),
                cur_problem.num_items()
            )));
        }
        if let Some(&bad) = roots.iter().find(|&&r| r >= num_roots) {
            return Err(ck_err(format!("root {bad} is out of range")));
        }
        let done = ck_bool_vec(&doc, "done", cur_problem.num_items())?;
        let round_idx = ck_usize(&doc, "round_idx")?;
        if round_idx > cur_schedule.makespan() {
            return Err(ck_err(format!(
                "round_idx {round_idx} exceeds the {}-round residual schedule",
                cur_schedule.makespan()
            )));
        }
        let base = ck_bits(&doc, "base")?;
        let executed = ck_usize(&doc, "executed_rounds")?;
        let round_durations = ck_bits_vec(&doc, "round_durations", executed)?;
        let disk_busy = ck_bits_vec(&doc, "disk_busy", n)?;
        let volume = ck_bits(&doc, "volume")?;
        let stall_recent = ck_u64_str_vec(&doc, "stall_recent")?;
        let stall_next = ck_usize(&doc, "stall_next")?;
        let degraded_at_last_replan = ck_bool_vec(&doc, "degraded_set", n)?;
        let crash_dirty = ck_usize(&doc, "crash_dirty")? != 0;
        let bw_init: Vec<f64> = (0..n).map(|v| cluster.bandwidth(NodeId::new(v))).collect();
        let sizes: Vec<f64> = (0..num_roots)
            .map(|e| cluster.item_size(EdgeId::new(e)))
            .collect();
        let ticker = RoundTicker::new(cur_schedule.makespan());
        Ok(Executor {
            problem,
            faults,
            config,
            solver,
            bw_init,
            sizes,
            timeline,
            flaky_p: faults.flaky.map_or(0.0, |f| f.probability),
            bw,
            crashed,
            replacement_of,
            next_fault,
            fates,
            attempts,
            redirected_flag,
            cur_problem,
            cur_schedule,
            roots,
            done,
            base,
            round_durations,
            disk_busy,
            volume,
            replans: ck_u64(&doc, "replans")?,
            retries: ck_u64(&doc, "retries")?,
            crashes: ck_u64(&doc, "crashes")?,
            redirects: ck_u64(&doc, "redirects")?,
            degraded_rounds: ck_u64(&doc, "degraded_rounds")?,
            stall: StallDetector::from_window(config.stall_factor, stall_recent, stall_next),
            degraded_at_last_replan,
            crash_dirty,
            round_idx,
            finished: false,
            ticker,
        })
    }
}

// --- checkpoint encoding/decoding helpers ---

fn push_list<T: std::fmt::Display>(
    out: &mut String,
    key: &str,
    xs: impl Iterator<Item = T>,
    quote: bool,
) {
    use core::fmt::Write as _;
    let _ = write!(out, ", \"{key}\": [");
    for (i, x) in xs.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if quote {
            let _ = write!(out, "\"{x}\"");
        } else {
            let _ = write!(out, "{x}");
        }
    }
    out.push(']');
}

fn ck_err(m: impl Into<String>) -> ExecError {
    ExecError::Checkpoint(m.into())
}

fn ck_get<'v>(doc: &'v Value, key: &str) -> Result<&'v Value, ExecError> {
    doc.get_path(key)
        .ok_or_else(|| ck_err(format!("checkpoint missing `{key}`")))
}

/// Exact non-negative integer out of a JSON number (f64s are exact to
/// 2^53, far beyond any count the executor tracks).
fn ck_num(v: &Value, what: &str) -> Result<u64, ExecError> {
    let x = v
        .as_f64()
        .ok_or_else(|| ck_err(format!("{what} is not a number")))?;
    if !(x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0) {
        return Err(ck_err(format!(
            "{what}: {x} is not an exact non-negative integer"
        )));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(x as u64)
}

fn ck_index(v: &Value, what: &str) -> Result<usize, ExecError> {
    usize::try_from(ck_num(v, what)?).map_err(|_| ck_err(format!("{what} overflows usize")))
}

fn ck_u64(doc: &Value, key: &str) -> Result<u64, ExecError> {
    ck_num(ck_get(doc, key)?, key)
}

fn ck_usize(doc: &Value, key: &str) -> Result<usize, ExecError> {
    ck_index(ck_get(doc, key)?, key)
}

fn ck_array<'v>(doc: &'v Value, key: &str) -> Result<&'v [Value], ExecError> {
    ck_get(doc, key)?
        .as_array()
        .ok_or_else(|| ck_err(format!("`{key}` is not an array")))
}

fn ck_sized_array<'v>(doc: &'v Value, key: &str, len: usize) -> Result<&'v [Value], ExecError> {
    let xs = ck_array(doc, key)?;
    if xs.len() != len {
        return Err(ck_err(format!(
            "`{key}` has {} entries, expected {len}",
            xs.len()
        )));
    }
    Ok(xs)
}

fn ck_u64_vec(doc: &Value, key: &str, len: usize) -> Result<Vec<u64>, ExecError> {
    ck_sized_array(doc, key, len)?
        .iter()
        .enumerate()
        .map(|(i, v)| ck_num(v, &format!("{key}[{i}]")))
        .collect()
}

fn ck_usize_vec(doc: &Value, key: &str) -> Result<Vec<usize>, ExecError> {
    ck_array(doc, key)?
        .iter()
        .enumerate()
        .map(|(i, v)| ck_index(v, &format!("{key}[{i}]")))
        .collect()
}

fn ck_i64_vec(doc: &Value, key: &str, len: usize) -> Result<Vec<i64>, ExecError> {
    ck_sized_array(doc, key, len)?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = v
                .as_f64()
                .ok_or_else(|| ck_err(format!("{key}[{i}] is not a number")))?;
            if !(x.is_finite() && x.fract() == 0.0 && x.abs() <= 9_007_199_254_740_992.0) {
                return Err(ck_err(format!("{key}[{i}]: {x} is not an exact integer")));
            }
            #[allow(clippy::cast_possible_truncation)]
            Ok(x as i64)
        })
        .collect()
}

fn ck_bool_vec(doc: &Value, key: &str, len: usize) -> Result<Vec<bool>, ExecError> {
    Ok(ck_u64_vec(doc, key, len)?
        .into_iter()
        .map(|x| x != 0)
        .collect())
}

fn ck_bits_str(v: &Value, what: &str) -> Result<f64, ExecError> {
    let s = v
        .as_str()
        .ok_or_else(|| ck_err(format!("{what} is not a bit-pattern string")))?;
    let bits: u64 = s
        .parse()
        .map_err(|_| ck_err(format!("{what}: `{s}` is not a u64 bit pattern")))?;
    Ok(f64::from_bits(bits))
}

fn ck_bits(doc: &Value, key: &str) -> Result<f64, ExecError> {
    ck_bits_str(ck_get(doc, key)?, key)
}

fn ck_bits_vec(doc: &Value, key: &str, len: usize) -> Result<Vec<f64>, ExecError> {
    ck_sized_array(doc, key, len)?
        .iter()
        .enumerate()
        .map(|(i, v)| ck_bits_str(v, &format!("{key}[{i}]")))
        .collect()
}

fn ck_u64_str_vec(doc: &Value, key: &str) -> Result<Vec<u64>, ExecError> {
    ck_array(doc, key)?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let s = v
                .as_str()
                .ok_or_else(|| ck_err(format!("{key}[{i}] is not a string")))?;
            s.parse()
                .map_err(|_| ck_err(format!("{key}[{i}]: `{s}` is not a u64")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_adaptive;
    use crate::faults::{CrashFault, DegradeFault, FlakySpec};
    use dmig_core::solver::AutoSolver;
    use dmig_graph::builder::complete_multigraph;
    use dmig_graph::GraphBuilder;

    /// 4 disks: items 0-1 ×2 and 1-2 ×2, disk 3 a spare; c = 2.
    fn spare_instance() -> (MigrationProblem, MigrationSchedule, Cluster) {
        let g = GraphBuilder::new()
            .nodes(4)
            .edge(0, 1)
            .edge(0, 1)
            .edge(1, 2)
            .edge(1, 2)
            .build();
        let p = MigrationProblem::uniform(g, 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        (p, s, Cluster::uniform(4, 1.0))
    }

    fn crash_plan(disk: usize, time: f64, replacement: Option<usize>) -> FaultPlan {
        FaultPlan {
            crashes: vec![CrashFault {
                disk: NodeId::new(disk),
                time,
                replacement: replacement.map(NodeId::new),
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn zero_fault_plan_reproduces_adaptive_exactly() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![2.0, 1.0, 0.5]);
        let baseline = simulate_adaptive(&p, &s, &cluster).unwrap();
        let r = execute(
            &p,
            &s,
            &cluster,
            &FaultPlan::default(),
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.sim.total_time.to_bits(), baseline.total_time.to_bits());
        assert_eq!(r.sim.round_durations, baseline.round_durations);
        assert_eq!(r.sim.disk_busy, baseline.disk_busy);
        assert_eq!(r.sim.volume.to_bits(), baseline.volume.to_bits());
        assert_eq!(r.delivered(), p.num_items());
        assert_eq!((r.replans, r.retries, r.crashes), (0, 0, 0));
    }

    #[test]
    fn crash_with_replacement_recovers_everything() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost(), 0, "{r}");
        assert_eq!(r.delivered(), 4);
        assert!(r.redirected() >= 1, "items headed to disk 2 must move");
        assert!(r.replans >= 1);
        assert_eq!(r.crashes, 1);
        // The 1-2 items now land on the spare.
        assert_eq!(r.redirected(), 2);
    }

    #[test]
    fn crash_without_replacement_loses_exactly_the_dead_disks_items() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, None);
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost_because(LostReason::DeadDisk), 2);
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.delivered() + r.lost(), p.num_items());
        assert!(r.replans >= 1);
    }

    #[test]
    fn without_replanning_crash_items_are_lost_in_place() {
        let (p, s, cluster) = spare_instance();
        // Even with a spare on offer, no replan means no redirection.
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.replans, 0);
        assert_eq!(r.redirected(), 0);
        assert_eq!(r.lost_because(LostReason::DeadDisk), 2);
        assert_eq!(r.delivered() + r.lost(), p.num_items());
    }

    #[test]
    fn flaky_failures_retry_and_deliver() {
        let p = MigrationProblem::uniform(complete_multigraph(3, 3), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(3, 1.0);
        let faults = FaultPlan {
            seed: 11,
            flaky: Some(FlakySpec { probability: 0.4 }),
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                retry_max: 20,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.delivered(), p.num_items());
        assert!(r.retries > 0, "p=0.4 over 9 items must fail somewhere");
        // Retried attempts put extra bytes on the wire.
        assert!(r.sim.volume > p.num_items() as f64);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_loss() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let faults = FaultPlan {
            flaky: Some(FlakySpec { probability: 1.0 }),
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &Cluster::uniform(2, 1.0),
            &faults,
            &ExecutorConfig {
                retry_max: 2,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.lost_because(LostReason::RetriesExhausted), 1);
        assert_eq!(r.retries, 2, "two retries, then the budget is spent");
    }

    #[test]
    fn degradation_counts_rounds_and_triggers_capacity_replan() {
        // Plenty of rounds through disk 0, with an outage long enough
        // (t=1.0 to t=9.0) to span several round boundaries: the onset
        // and the recovery must each be visible at a boundary check.
        let p = MigrationProblem::uniform(complete_multigraph(3, 6), 2).unwrap();
        let s = AutoSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(3, 1.0);
        let faults = FaultPlan {
            degradations: vec![DegradeFault {
                disk: NodeId::new(0),
                time: 1.0,
                factor: 0.2,
                recover_at: Some(9.0),
            }],
            ..FaultPlan::default()
        };
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        assert_eq!(r.delivered(), p.num_items());
        assert_eq!(r.lost(), 0);
        assert!(r.degraded_rounds >= 1, "{r}");
        // Degradation onset and recovery each change the degraded set.
        assert!(r.replans >= 2, "{r}");
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (p, s, _) = spare_instance();
        let err = execute(
            &p,
            &s,
            &Cluster::uniform(2, 1.0),
            &FaultPlan::default(),
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::Sim(SimError::ClusterSizeMismatch { .. })
        ));
        let bad_faults = crash_plan(9, 0.0, None);
        let err = execute(
            &p,
            &s,
            &Cluster::uniform(4, 1.0),
            &bad_faults,
            &ExecutorConfig::default(),
            &AutoSolver,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Fault(_)));
    }

    #[test]
    fn report_json_is_well_formed_and_accounts_everything() {
        let (p, s, cluster) = spare_instance();
        let faults = crash_plan(2, 0.5, Some(3));
        let r = execute(
            &p,
            &s,
            &cluster,
            &faults,
            &ExecutorConfig {
                replan: true,
                ..ExecutorConfig::default()
            },
            &AutoSolver,
        )
        .unwrap();
        let j = r.to_json();
        assert!(j.contains("\"delivered\": 4"));
        assert!(j.contains("\"lost\": 0"));
        assert!(j.contains("\"replans\": "));
        assert!(j.contains("delivered-redirected"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert_eq!(r.fates.len(), p.num_items());
    }
}
