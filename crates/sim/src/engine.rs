//! Schedule execution engines.

use core::fmt;

use dmig_core::{MigrationProblem, MigrationSchedule, ScheduleError};
use dmig_graph::EdgeId;

use crate::progress::RoundTicker;
use crate::{Cluster, SimReport};

/// Errors from the simulation engines.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The schedule is not feasible for the problem.
    InfeasibleSchedule(ScheduleError),
    /// The cluster describes a different number of disks than the problem.
    ClusterSizeMismatch {
        /// Disks in the cluster model.
        cluster: usize,
        /// Disks in the problem.
        problem: usize,
    },
    /// A bandwidth event referenced a disk outside the cluster.
    EventDiskOutOfRange {
        /// The referenced disk.
        disk: dmig_graph::NodeId,
        /// Number of disks in the cluster.
        disks: usize,
    },
    /// A bandwidth event carried a negative/non-finite time or rate.
    MalformedEvent {
        /// The event time.
        time: f64,
        /// The event bandwidth.
        bandwidth: f64,
    },
    /// Execution deadlocked: every remaining transfer sits at rate zero
    /// (an endpoint at bandwidth 0) with no future bandwidth event that
    /// could revive it.
    Deadlocked {
        /// Simulation clock at the deadlock.
        time: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InfeasibleSchedule(e) => write!(f, "infeasible schedule: {e}"),
            SimError::ClusterSizeMismatch { cluster, problem } => {
                write!(f, "cluster has {cluster} disks but problem has {problem}")
            }
            SimError::EventDiskOutOfRange { disk, disks } => {
                write!(
                    f,
                    "bandwidth event for disk {disk} but cluster has {disks} disks"
                )
            }
            SimError::MalformedEvent { time, bandwidth } => {
                write!(
                    f,
                    "malformed bandwidth event (time {time}, bandwidth {bandwidth})"
                )
            }
            SimError::Deadlocked { time } => {
                write!(
                    f,
                    "deadlock at t={time}: remaining transfers are stuck at \
                     bandwidth 0 with no recovery event"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InfeasibleSchedule(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-round engine telemetry shared by all engines: counters, round-size
/// histogram, and the progress/stall ticker.
pub(crate) fn record_sim_round(ticker: &mut RoundTicker, transfers: usize) {
    dmig_obs::counter_add(dmig_obs::keys::SIM_ROUNDS, 1);
    dmig_obs::counter_add(dmig_obs::keys::SIM_TRANSFERS, transfers as u64);
    dmig_obs::observe(dmig_obs::keys::SIM_ROUND_TRANSFERS, transfers as u64);
    ticker.round_done(transfers);
}

fn check_inputs(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
) -> Result<(), SimError> {
    if cluster.num_disks() != problem.num_disks() {
        return Err(SimError::ClusterSizeMismatch {
            cluster: cluster.num_disks(),
            problem: problem.num_disks(),
        });
    }
    schedule
        .validate(problem)
        .map_err(SimError::InfeasibleSchedule)
}

/// Executes a schedule under the paper's round model: within a round each
/// disk splits its bandwidth evenly across its transfers *for the whole
/// round*, a transfer runs at the slower of its two endpoint shares, and
/// the round ends when its slowest transfer ends.
///
/// # Errors
///
/// Returns [`SimError`] if the schedule is infeasible or the cluster size
/// does not match.
pub fn simulate_rounds(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    check_inputs(problem, schedule, cluster)?;
    let _span = dmig_obs::span_labeled("simulate_rounds", || {
        format!("rounds={}", schedule.makespan())
    });
    let g = problem.graph();
    let n = g.num_nodes();
    let mut round_durations = Vec::with_capacity(schedule.makespan());
    let mut disk_busy = vec![0.0f64; n];
    let mut volume = 0.0f64;
    let mut concurrency = vec![0usize; n];
    let mut ticker = RoundTicker::new(schedule.makespan());
    let mut base = 0.0f64;

    for round in schedule.rounds() {
        dmig_obs::events::emit(dmig_obs::events::Event::RoundStart {
            round: round_durations.len() as u64,
            transfers: round.len() as u64,
            time: base,
        });
        concurrency.iter_mut().for_each(|k| *k = 0);
        for &e in round {
            let ep = g.endpoints(e);
            concurrency[ep.u.index()] += 1;
            concurrency[ep.v.index()] += 1;
        }
        let mut round_time = 0.0f64;
        let mut finish_at = vec![0.0f64; n];
        for &e in round {
            let ep = g.endpoints(e);
            let share_u = cluster.bandwidth(ep.u) / concurrency[ep.u.index()] as f64;
            let share_v = cluster.bandwidth(ep.v) / concurrency[ep.v.index()] as f64;
            let size = cluster.item_size(e);
            let t = size / share_u.min(share_v);
            volume += size;
            round_time = round_time.max(t);
            finish_at[ep.u.index()] = finish_at[ep.u.index()].max(t);
            finish_at[ep.v.index()] = finish_at[ep.v.index()].max(t);
        }
        for v in 0..n {
            disk_busy[v] += finish_at[v];
        }
        base += round_time;
        dmig_obs::events::emit(dmig_obs::events::Event::RoundEnd {
            round: round_durations.len() as u64,
            duration: round_time,
            time: base,
        });
        round_durations.push(round_time);
        record_sim_round(&mut ticker, round.len());
    }

    Ok(SimReport {
        total_time: round_durations.iter().sum(),
        round_durations,
        disk_busy,
        volume,
    })
}

/// Replays the round model of [`simulate_rounds`] and returns, for every
/// round, its duration plus the sparse per-disk busy times — the input the
/// attribution engine ([`dmig_obs::explain::attribute`]) needs to find the
/// binding chain. Emits no events and records no metrics: it is a pure
/// analysis pass over the same arithmetic as the simulator, so the round
/// durations match a [`SimReport`] from `simulate_rounds` exactly.
///
/// # Errors
///
/// Returns [`SimError`] if the schedule is infeasible or the cluster size
/// does not match.
pub fn round_profile(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
) -> Result<Vec<dmig_obs::explain::RoundLoad>, SimError> {
    check_inputs(problem, schedule, cluster)?;
    let g = problem.graph();
    let n = g.num_nodes();
    let mut concurrency = vec![0usize; n];
    let mut rounds = Vec::with_capacity(schedule.makespan());
    for round in schedule.rounds() {
        concurrency.iter_mut().for_each(|k| *k = 0);
        for &e in round {
            let ep = g.endpoints(e);
            concurrency[ep.u.index()] += 1;
            concurrency[ep.v.index()] += 1;
        }
        let mut round_time = 0.0f64;
        let mut finish_at = vec![0.0f64; n];
        for &e in round {
            let ep = g.endpoints(e);
            let share_u = cluster.bandwidth(ep.u) / concurrency[ep.u.index()] as f64;
            let share_v = cluster.bandwidth(ep.v) / concurrency[ep.v.index()] as f64;
            let t = cluster.item_size(e) / share_u.min(share_v);
            round_time = round_time.max(t);
            finish_at[ep.u.index()] = finish_at[ep.u.index()].max(t);
            finish_at[ep.v.index()] = finish_at[ep.v.index()].max(t);
        }
        let busy: Vec<(usize, f64)> = (0..n)
            .filter(|&v| finish_at[v] > 0.0)
            .map(|v| (v, finish_at[v]))
            .collect();
        rounds.push(dmig_obs::explain::RoundLoad {
            duration: round_time,
            busy,
        });
    }
    Ok(rounds)
}

/// Executes a schedule with work-conserving bandwidth reallocation inside
/// each round: whenever a transfer completes, the remaining transfers'
/// rates are recomputed as `min` of the endpoints' fair shares over the
/// transfers *still active*. Rounds remain barriers.
///
/// Always at least as fast per round as [`simulate_rounds`].
///
/// # Errors
///
/// Returns [`SimError`] if the schedule is infeasible or the cluster size
/// does not match.
pub fn simulate_adaptive(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    check_inputs(problem, schedule, cluster)?;
    let _span = dmig_obs::span_labeled("simulate_adaptive", || {
        format!("rounds={}", schedule.makespan())
    });
    let g = problem.graph();
    let n = g.num_nodes();
    let mut round_durations = Vec::with_capacity(schedule.makespan());
    let mut disk_busy = vec![0.0f64; n];
    let mut volume = 0.0f64;
    let mut ticker = RoundTicker::new(schedule.makespan());
    let mut base = 0.0f64;

    for round in schedule.rounds() {
        dmig_obs::events::emit(dmig_obs::events::Event::RoundStart {
            round: round_durations.len() as u64,
            transfers: round.len() as u64,
            time: base,
        });
        let mut remaining: Vec<(EdgeId, f64)> =
            round.iter().map(|&e| (e, cluster.item_size(e))).collect();
        volume += remaining.iter().map(|&(_, s)| s).sum::<f64>();
        let mut clock = 0.0f64;
        let mut active = vec![0usize; n];

        while !remaining.is_empty() {
            active.iter_mut().for_each(|k| *k = 0);
            for &(e, _) in &remaining {
                let ep = g.endpoints(e);
                active[ep.u.index()] += 1;
                active[ep.v.index()] += 1;
            }
            // Current fair-share rate per transfer.
            let rates: Vec<f64> = remaining
                .iter()
                .map(|&(e, _)| {
                    let ep = g.endpoints(e);
                    (cluster.bandwidth(ep.u) / active[ep.u.index()] as f64)
                        .min(cluster.bandwidth(ep.v) / active[ep.v.index()] as f64)
                })
                .collect();
            // Advance to the next completion.
            let dt = remaining
                .iter()
                .zip(&rates)
                .map(|(&(_, left), &r)| left / r)
                .fold(f64::INFINITY, f64::min);
            clock += dt;
            for v in 0..n {
                if active[v] > 0 {
                    disk_busy[v] += dt;
                }
            }
            let mut next = Vec::with_capacity(remaining.len());
            for ((e, left), r) in remaining.into_iter().zip(rates) {
                let left = left - r * dt;
                if left > 1e-9 {
                    next.push((e, left));
                }
            }
            remaining = next;
        }
        base += clock;
        dmig_obs::events::emit(dmig_obs::events::Event::RoundEnd {
            round: round_durations.len() as u64,
            duration: clock,
            time: base,
        });
        round_durations.push(clock);
        record_sim_round(&mut ticker, round.len());
    }

    Ok(SimReport {
        total_time: round_durations.iter().sum(),
        round_durations,
        disk_busy,
        volume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_core::solver::{EvenOptimalSolver, HomogeneousSolver, Solver};
    use dmig_core::MigrationProblem;
    use dmig_graph::builder::{complete_multigraph, star_multigraph};
    use dmig_graph::GraphBuilder;

    fn fig2(m: usize) -> MigrationProblem {
        MigrationProblem::uniform(complete_multigraph(3, m), 2).unwrap()
    }

    #[test]
    fn fig2_round_model_reproduces_paper_numbers() {
        let m = 4;
        let p = fig2(m);
        let cluster = Cluster::uniform(3, 1.0);
        let fast = EvenOptimalSolver.solve(&p).unwrap();
        let report = simulate_rounds(&p, &fast, &cluster).unwrap();
        // M rounds, each a triangle: every disk runs 2 transfers at rate
        // 1/2 → 2 time units per round → 2M total.
        assert_eq!(report.num_rounds(), m);
        assert!((report.total_time - 2.0 * m as f64).abs() < 1e-9);

        let slow = HomogeneousSolver.solve(&p).unwrap();
        let report2 = simulate_rounds(&p, &slow, &cluster).unwrap();
        assert!((report2.total_time - 3.0 * m as f64).abs() < 1e-9);
    }

    #[test]
    fn single_transfer_takes_size_over_bandwidth() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![2.0, 0.5]);
        let r = simulate_rounds(&p, &s, &cluster).unwrap();
        // Bottlenecked by the 0.5 disk: 1 / 0.5 = 2 time units.
        assert!((r.total_time - 2.0).abs() < 1e-9);
        assert!((r.volume - 1.0).abs() < 1e-9);
    }

    #[test]
    fn item_sizes_scale_time() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(2, 1.0).with_item_sizes(vec![3.0]);
        let r = simulate_rounds(&p, &s, &cluster).unwrap();
        assert!((r.total_time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_never_slower_than_rounds() {
        let p = MigrationProblem::uniform(star_multigraph(5, 2), 3).unwrap();
        let s = dmig_core::solver::GreedySolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![2.0, 1.0, 0.5, 1.0, 2.0, 1.0]);
        let fixed = simulate_rounds(&p, &s, &cluster).unwrap();
        let adaptive = simulate_adaptive(&p, &s, &cluster).unwrap();
        assert!(adaptive.total_time <= fixed.total_time + 1e-9);
        assert!((adaptive.volume - fixed.volume).abs() < 1e-9);
    }

    #[test]
    fn adaptive_equal_when_symmetric() {
        let m = 2;
        let p = fig2(m);
        let cluster = Cluster::uniform(3, 1.0);
        let s = EvenOptimalSolver.solve(&p).unwrap();
        let fixed = simulate_rounds(&p, &s, &cluster).unwrap();
        let adaptive = simulate_adaptive(&p, &s, &cluster).unwrap();
        assert!((fixed.total_time - adaptive.total_time).abs() < 1e-9);
    }

    #[test]
    fn infeasible_schedule_rejected() {
        let p = fig2(1);
        let bogus = dmig_core::MigrationSchedule::from_rounds(vec![vec![0.into()]]);
        let err = simulate_rounds(&p, &bogus, &Cluster::uniform(3, 1.0)).unwrap_err();
        assert!(matches!(err, SimError::InfeasibleSchedule(_)));
    }

    #[test]
    fn cluster_size_mismatch_rejected() {
        let p = fig2(1);
        let s = EvenOptimalSolver.solve(&p).unwrap();
        let err = simulate_rounds(&p, &s, &Cluster::uniform(2, 1.0)).unwrap_err();
        assert!(matches!(
            err,
            SimError::ClusterSizeMismatch {
                cluster: 2,
                problem: 3
            }
        ));
    }

    #[test]
    fn empty_schedule_zero_time() {
        let p = MigrationProblem::uniform(dmig_graph::Multigraph::with_nodes(2), 1).unwrap();
        let s = dmig_core::MigrationSchedule::default();
        let r = simulate_rounds(&p, &s, &Cluster::uniform(2, 1.0)).unwrap();
        assert_eq!(r.total_time, 0.0);
        let r2 = simulate_adaptive(&p, &s, &Cluster::uniform(2, 1.0)).unwrap();
        assert_eq!(r2.total_time, 0.0);
    }

    #[test]
    fn round_profile_matches_simulate_rounds() {
        let p = MigrationProblem::uniform(star_multigraph(4, 2), 2).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![1.0, 2.0, 0.5, 1.0, 1.0]);
        let report = simulate_rounds(&p, &s, &cluster).unwrap();
        let profile = round_profile(&p, &s, &cluster).unwrap();
        assert_eq!(profile.len(), report.num_rounds());
        let mut busy = [0.0f64; 5];
        for (load, &dur) in profile.iter().zip(&report.round_durations) {
            assert!((load.duration - dur).abs() < 1e-12);
            // The binding disk's busy time equals the round duration.
            let max_busy = load.busy.iter().map(|&(_, b)| b).fold(0.0, f64::max);
            assert!((max_busy - dur).abs() < 1e-12);
            for w in load.busy.windows(2) {
                assert!(w[0].0 < w[1].0, "busy pairs must ascend by disk id");
            }
            for &(v, b) in &load.busy {
                busy[v] += b;
            }
        }
        for (accumulated, reported) in busy.iter().zip(&report.disk_busy) {
            assert!((accumulated - reported).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_reflects_idle_disks() {
        // Star: hub busy every round, leaves mostly idle.
        let p = MigrationProblem::uniform(star_multigraph(4, 1), 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let r = simulate_rounds(&p, &s, &Cluster::uniform(5, 1.0)).unwrap();
        assert!(r.mean_utilization() <= 1.0);
        assert!(r.disk_busy[0] >= r.disk_busy[1]);
    }
}
