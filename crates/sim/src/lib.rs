//! Storage-cluster simulator for migration schedules.
//!
//! The ICDCS 2011 paper evaluates its algorithms analytically in a simple
//! transfer model (§I): items have unit size, a disk splits its bandwidth
//! evenly across its concurrent transfers, and a schedule executes round by
//! round. This crate implements exactly that model — substituting for the
//! physical storage testbed the scheduling literature reasons about — so
//! that schedule quality can be reported in *wall-clock time units*, not
//! just round counts. That distinction is the whole point of the paper's
//! Fig. 2: on `K3` with `M` parallel items, the homogeneous schedule runs
//! `3M` rounds × 1 time unit, while the capacity-aware schedule runs `M`
//! rounds × 2 time units (each disk halving its bandwidth across two
//! transfers) — a 1.5× wall-clock win.
//!
//! Two execution engines:
//!
//! * [`engine::simulate_rounds`] — barrier semantics: a round ends when its
//!   slowest transfer ends; every transfer runs at the fair-share rate set
//!   by its round-long concurrency. This is the paper's model.
//! * [`engine::simulate_adaptive`] — work-conserving refinement: when a
//!   transfer finishes, the bandwidth it released is immediately
//!   redistributed among the transfers still running in that round
//!   (progressive filling). Rounds remain barriers.
//! * [`events::simulate_with_events`] — failure injection: disk bandwidths
//!   change at specified times (degradation under live traffic, total
//!   failure at bandwidth 0, recovery), and the report shows how the
//!   makespan stretches.
//! * [`executor::execute`] — closed-loop execution: a seeded
//!   [`faults::FaultPlan`] injects crash-stops, degradations, and flaky
//!   transfers; the executor retries with bounded exponential backoff and
//!   replans the residual migration via [`dmig_core::replan`] when disks
//!   die, degrade, or rounds stall.
//!
//! ```
//! use dmig_core::{MigrationProblem, solver::{Solver, HomogeneousSolver, EvenOptimalSolver}};
//! use dmig_graph::builder::complete_multigraph;
//! use dmig_sim::{Cluster, engine::simulate_rounds};
//!
//! let m = 4;
//! let p = MigrationProblem::uniform(complete_multigraph(3, m), 2)?;
//! let cluster = Cluster::uniform(3, 1.0);
//! let fast = simulate_rounds(&p, &EvenOptimalSolver.solve(&p)?, &cluster)?;
//! let slow = simulate_rounds(&p, &HomogeneousSolver.solve(&p)?, &cluster)?;
//! assert_eq!(fast.total_time, 2.0 * m as f64); // M rounds × 2 time units
//! assert_eq!(slow.total_time, 3.0 * m as f64); // 3M rounds × 1 time unit
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod events;
pub mod executor;
pub mod faults;
pub mod progress;
pub mod report;

pub use cluster::Cluster;
pub use engine::SimError;
pub use executor::{
    execute, ExecError, ExecReport, Executor, ExecutorConfig, ItemFate, LostReason, StepOutcome,
};
pub use faults::{FaultPlan, FaultPlanError};
pub use report::SimReport;
