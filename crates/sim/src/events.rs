//! Failure and degradation injection: time-varying disk bandwidth.
//!
//! The paper motivates heterogeneity partly by *live traffic*: "available
//! bandwidth of each disk can be different depending on current user
//! traffic" (§I). This engine executes a schedule while disk bandwidths
//! change at specified times — a disk slowing down under load, degrading
//! before failure, or recovering — and reports how the makespan stretches.
//! Rounds remain barriers; inside a round, rates are recomputed at every
//! completion *and* every bandwidth event (work-conserving fair sharing,
//! as in [`crate::engine::simulate_adaptive`]).

use dmig_core::{MigrationProblem, MigrationSchedule};
use dmig_graph::{EdgeId, NodeId};

use crate::engine::{record_sim_round, SimError};
use crate::progress::RoundTicker;
use crate::{Cluster, SimReport};

/// A step change of one disk's bandwidth at an absolute time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthEvent {
    /// When the change takes effect (global simulation clock).
    pub time: f64,
    /// Which disk changes.
    pub disk: NodeId,
    /// The new bandwidth (must be non-negative and finite). `0.0` models a
    /// total disk failure: the disk moves nothing until a later recovery
    /// event restores it. A migration left waiting only on failed disks
    /// with no recovery event in the queue is a [`SimError::Deadlocked`]
    /// error, not a hang.
    pub bandwidth: f64,
}

/// Executes `schedule` like the adaptive engine, applying `events` as the
/// global clock passes them.
///
/// Events need not be sorted: they are applied in `(time, disk,
/// bandwidth)` order, so same-timestamp events resolve deterministically
/// regardless of how the slice lists them (for one disk at one instant,
/// the highest bandwidth wins). Events for out-of-range disks are
/// rejected.
///
/// # Errors
///
/// Returns [`SimError`] if the schedule is infeasible, the cluster size
/// mismatches, an event is malformed, or the run deadlocks on a failed
/// disk with no recovery event.
pub fn simulate_with_events(
    problem: &MigrationProblem,
    schedule: &MigrationSchedule,
    cluster: &Cluster,
    events: &[BandwidthEvent],
) -> Result<SimReport, SimError> {
    if cluster.num_disks() != problem.num_disks() {
        return Err(SimError::ClusterSizeMismatch {
            cluster: cluster.num_disks(),
            problem: problem.num_disks(),
        });
    }
    schedule
        .validate(problem)
        .map_err(SimError::InfeasibleSchedule)?;
    let n = problem.num_disks();
    for ev in events {
        if ev.disk.index() >= n {
            return Err(SimError::EventDiskOutOfRange {
                disk: ev.disk,
                disks: n,
            });
        }
        if !(ev.bandwidth.is_finite() && ev.bandwidth >= 0.0 && ev.time.is_finite())
            || ev.time < 0.0
        {
            return Err(SimError::MalformedEvent {
                time: ev.time,
                bandwidth: ev.bandwidth,
            });
        }
    }
    let mut queue: Vec<BandwidthEvent> = events.to_vec();
    queue.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.disk.index().cmp(&b.disk.index()))
            .then(a.bandwidth.total_cmp(&b.bandwidth))
    });
    let mut next_event = 0usize;

    let g = problem.graph();
    let mut bandwidth: Vec<f64> = (0..n).map(|v| cluster.bandwidth(NodeId::new(v))).collect();
    let mut clock = 0.0f64;
    let mut round_durations = Vec::with_capacity(schedule.makespan());
    let mut disk_busy = vec![0.0f64; n];
    let mut volume = 0.0f64;
    let mut ticker = RoundTicker::new(schedule.makespan());

    for round in schedule.rounds() {
        let round_start = clock;
        let mut remaining: Vec<(EdgeId, f64)> =
            round.iter().map(|&e| (e, cluster.item_size(e))).collect();
        volume += remaining.iter().map(|&(_, s)| s).sum::<f64>();
        let mut active = vec![0usize; n];

        while !remaining.is_empty() {
            // Apply any events that are already due.
            while next_event < queue.len() && queue[next_event].time <= clock + 1e-12 {
                let ev = queue[next_event];
                bandwidth[ev.disk.index()] = ev.bandwidth;
                next_event += 1;
            }
            active.iter_mut().for_each(|k| *k = 0);
            for &(e, _) in &remaining {
                let ep = g.endpoints(e);
                active[ep.u.index()] += 1;
                active[ep.v.index()] += 1;
            }
            let rates: Vec<f64> = remaining
                .iter()
                .map(|&(e, _)| {
                    let ep = g.endpoints(e);
                    (bandwidth[ep.u.index()] / active[ep.u.index()] as f64)
                        .min(bandwidth[ep.v.index()] / active[ep.v.index()] as f64)
                })
                .collect();
            let to_completion = remaining
                .iter()
                .zip(&rates)
                .map(|(&(_, left), &r)| left / r)
                .fold(f64::INFINITY, f64::min);
            let to_event = queue
                .get(next_event)
                .map_or(f64::INFINITY, |ev| (ev.time - clock).max(0.0));
            let dt = to_completion.min(to_event);
            if !dt.is_finite() {
                // Every remaining transfer is on a failed disk and nothing
                // in the queue will ever change a bandwidth again.
                return Err(SimError::Deadlocked { time: clock });
            }
            clock += dt;
            for v in 0..n {
                if active[v] > 0 {
                    disk_busy[v] += dt;
                }
            }
            let mut next_remaining = Vec::with_capacity(remaining.len());
            for ((e, left), r) in remaining.into_iter().zip(rates) {
                let left = left - r * dt;
                if left > 1e-9 {
                    next_remaining.push((e, left));
                }
            }
            remaining = next_remaining;
            // If we advanced exactly to an event, the loop head applies it.
        }
        round_durations.push(clock - round_start);
        record_sim_round(&mut ticker, round.len());
    }

    Ok(SimReport {
        total_time: clock,
        round_durations,
        disk_busy,
        volume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmig_core::solver::{HomogeneousSolver, Solver};
    use dmig_core::MigrationProblem;
    use dmig_graph::GraphBuilder;

    fn chain_problem() -> (MigrationProblem, MigrationSchedule) {
        // Two sequential rounds through disk 1 at c = 1.
        let g = GraphBuilder::new().edge(0, 1).edge(1, 2).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        (p, s)
    }

    #[test]
    fn no_events_matches_adaptive() {
        let (p, s) = chain_problem();
        let cluster = Cluster::uniform(3, 1.0);
        let a = simulate_with_events(&p, &s, &cluster, &[]).unwrap();
        let b = crate::engine::simulate_adaptive(&p, &s, &cluster).unwrap();
        assert!((a.total_time - b.total_time).abs() < 1e-9);
        assert_eq!(a.num_rounds(), b.num_rounds());
    }

    #[test]
    fn slowdown_stretches_the_tail() {
        let (p, s) = chain_problem();
        let cluster = Cluster::uniform(3, 1.0);
        // Disk 1 degrades to quarter speed after the first transfer.
        let events = [BandwidthEvent {
            time: 1.0,
            disk: 1.into(),
            bandwidth: 0.25,
        }];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        // Round 1 takes 1.0; round 2 runs wholly at 0.25 → 4.0.
        assert!((r.total_time - 5.0).abs() < 1e-9, "got {}", r.total_time);
    }

    #[test]
    fn mid_transfer_slowdown_is_proportional() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(2, 1.0);
        // Half the item moves at rate 1 (0.5 time), then rate drops to 0.5:
        // remaining 0.5 item takes 1.0 → total 1.5.
        let events = [BandwidthEvent {
            time: 0.5,
            disk: 0.into(),
            bandwidth: 0.5,
        }];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        assert!((r.total_time - 1.5).abs() < 1e-9, "got {}", r.total_time);
    }

    #[test]
    fn recovery_speeds_things_up() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::from_bandwidths(vec![0.5, 1.0]);
        // At t=0.5 (quarter done), disk 0 recovers to full speed.
        let events = [BandwidthEvent {
            time: 0.5,
            disk: 0.into(),
            bandwidth: 1.0,
        }];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        assert!((r.total_time - 1.25).abs() < 1e-9, "got {}", r.total_time);
    }

    #[test]
    fn unsorted_events_are_handled() {
        let (p, s) = chain_problem();
        let cluster = Cluster::uniform(3, 1.0);
        let events = [
            BandwidthEvent {
                time: 1.5,
                disk: 1.into(),
                bandwidth: 1.0,
            },
            BandwidthEvent {
                time: 1.0,
                disk: 1.into(),
                bandwidth: 0.25,
            },
        ];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        // Slowdown lasts 0.5 wall-clock (moves 0.125), then full speed.
        assert!(
            (r.total_time - (1.0 + 0.5 + 0.875)).abs() < 1e-9,
            "got {}",
            r.total_time
        );
    }

    #[test]
    fn malformed_events_rejected() {
        let (p, s) = chain_problem();
        let cluster = Cluster::uniform(3, 1.0);
        let bad_disk = [BandwidthEvent {
            time: 0.0,
            disk: 9.into(),
            bandwidth: 1.0,
        }];
        assert!(matches!(
            simulate_with_events(&p, &s, &cluster, &bad_disk),
            Err(SimError::EventDiskOutOfRange { .. })
        ));
        let bad_bw = [BandwidthEvent {
            time: 0.0,
            disk: 0.into(),
            bandwidth: -1.0,
        }];
        assert!(matches!(
            simulate_with_events(&p, &s, &cluster, &bad_bw),
            Err(SimError::MalformedEvent { .. })
        ));
        let bad_time = [BandwidthEvent {
            time: -1.0,
            disk: 0.into(),
            bandwidth: 1.0,
        }];
        assert!(matches!(
            simulate_with_events(&p, &s, &cluster, &bad_time),
            Err(SimError::MalformedEvent { .. })
        ));
    }

    #[test]
    fn total_failure_with_recovery_stretches_but_finishes() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(2, 1.0);
        // Disk 0 fails outright at t=0.5 and comes back at t=3.0: the
        // half-done transfer freezes for 2.5 time units, then finishes.
        let events = [
            BandwidthEvent {
                time: 0.5,
                disk: 0.into(),
                bandwidth: 0.0,
            },
            BandwidthEvent {
                time: 3.0,
                disk: 0.into(),
                bandwidth: 1.0,
            },
        ];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        assert!((r.total_time - 3.5).abs() < 1e-9, "got {}", r.total_time);
    }

    #[test]
    fn unrecovered_failure_is_a_deadlock_error_not_a_hang() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(2, 1.0);
        let events = [BandwidthEvent {
            time: 0.5,
            disk: 0.into(),
            bandwidth: 0.0,
        }];
        let err = simulate_with_events(&p, &s, &cluster, &events).unwrap_err();
        assert!(matches!(err, SimError::Deadlocked { time } if (time - 0.5).abs() < 1e-9));
    }

    #[test]
    fn same_timestamp_events_apply_in_canonical_order() {
        let g = GraphBuilder::new().edge(0, 1).build();
        let p = MigrationProblem::uniform(g, 1).unwrap();
        let s = HomogeneousSolver.solve(&p).unwrap();
        let cluster = Cluster::uniform(2, 1.0);
        // Two conflicting events for disk 0 at the same instant: sorted by
        // bandwidth, the higher one is applied last and wins, no matter
        // how the caller ordered the slice.
        let a = BandwidthEvent {
            time: 0.5,
            disk: 0.into(),
            bandwidth: 0.25,
        };
        let b = BandwidthEvent {
            time: 0.5,
            disk: 0.into(),
            bandwidth: 1.0,
        };
        let r1 = simulate_with_events(&p, &s, &cluster, &[a, b]).unwrap();
        let r2 = simulate_with_events(&p, &s, &cluster, &[b, a]).unwrap();
        assert_eq!(r1.total_time.to_bits(), r2.total_time.to_bits());
        assert!((r1.total_time - 1.0).abs() < 1e-9, "got {}", r1.total_time);
    }

    #[test]
    fn events_after_completion_are_ignored() {
        let (p, s) = chain_problem();
        let cluster = Cluster::uniform(3, 1.0);
        let events = [BandwidthEvent {
            time: 100.0,
            disk: 0.into(),
            bandwidth: 0.1,
        }];
        let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
        assert!((r.total_time - 2.0).abs() < 1e-9);
    }
}
