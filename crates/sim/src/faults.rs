//! Deterministic fault plans: seeded failure injection for the executor.
//!
//! A [`FaultPlan`] describes everything that will go wrong during a run,
//! up front and reproducibly — the paper's §I motivates exactly these
//! disturbances (bandwidth shifting under live traffic, disks failing and
//! recovering mid-reconfiguration):
//!
//! * **crash-stop** — a disk dies at a given time and never comes back;
//!   pending items touching it are redirected to an optional replacement
//!   disk, or reported lost;
//! * **degradation** — a disk's bandwidth collapses to a fraction of its
//!   initial value at one time and optionally recovers at a later one;
//! * **flaky transfers** — every transfer attempt independently fails
//!   with a fixed probability, decided by a seeded hash of
//!   `(seed, item, attempt)` so the same plan always fails the same
//!   attempts.
//!
//! Plans parse from a small TOML subset (`key = value` lines, `[flaky]`,
//! `[[crash]]` and `[[degrade]]` tables — the same shape as
//! `ci-rules.toml`) and compile to a timeline of events sorted by
//! `(time, kind, disk)`, so same-timestamp events apply in one canonical
//! order no matter how the file lists them.

use dmig_graph::NodeId;

/// A crash-stop disk failure: the disk's bandwidth drops to zero at
/// `time` and never recovers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashFault {
    /// The disk that dies.
    pub disk: NodeId,
    /// When it dies (simulated time).
    pub time: f64,
    /// Optional replacement: pending items are redirected here at the
    /// next replan. With `None`, pending items on this disk are lost.
    pub replacement: Option<NodeId>,
}

/// A transient bandwidth collapse with optional recovery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeFault {
    /// The disk that degrades.
    pub disk: NodeId,
    /// When the collapse starts (simulated time).
    pub time: f64,
    /// Multiplier applied to the disk's *initial* bandwidth while
    /// degraded (must be in `(0, 1)`; a total failure is a crash).
    pub factor: f64,
    /// When the disk returns to its initial bandwidth, if ever.
    pub recover_at: Option<f64>,
}

/// Per-transfer flaky failures: each attempt fails independently with
/// probability `probability`, decided by the plan seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlakySpec {
    /// Failure probability per transfer attempt, in `[0, 1]`.
    pub probability: f64,
}

/// A complete, deterministic fault scenario.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the flaky-transfer coin (and any future randomized fault).
    pub seed: u64,
    /// Crash-stop failures.
    pub crashes: Vec<CrashFault>,
    /// Bandwidth degradations.
    pub degradations: Vec<DegradeFault>,
    /// Flaky-transfer behaviour, if any.
    pub flaky: Option<FlakySpec>,
}

/// What one compiled timeline event does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Set the disk's bandwidth to `initial × factor` (1.0 = recovery).
    SetBandwidthFactor(NodeId, f64),
    /// Crash-stop the disk (bandwidth 0 forever; redirect to the
    /// replacement at the next replan).
    Crash(NodeId, Option<NodeId>),
}

/// One event of the compiled fault timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the event fires (simulated time).
    pub time: f64,
    /// What it does.
    pub action: FaultAction,
}

/// Errors from parsing or validating a fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed plan is semantically invalid for the given cluster.
    Invalid(String),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FaultPlanError::Invalid(m) => write!(f, "invalid fault plan: {m}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The section the parser is currently filling.
enum Section {
    Top,
    Crash,
    Degrade,
    Flaky,
}

fn parse_number(line: usize, key: &str, raw: &str) -> Result<f64, FaultPlanError> {
    raw.parse::<f64>().map_err(|_| FaultPlanError::Parse {
        line,
        message: format!("{key}: expected a number, got `{raw}`"),
    })
}

fn parse_disk(line: usize, key: &str, raw: &str) -> Result<NodeId, FaultPlanError> {
    raw.parse::<usize>()
        .map(NodeId::new)
        .map_err(|_| FaultPlanError::Parse {
            line,
            message: format!("{key}: expected a disk index, got `{raw}`"),
        })
}

impl FaultPlan {
    /// Parses a plan from the TOML subset described at module level.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Parse`] with a line number on malformed
    /// input, and [`FaultPlanError::Invalid`] when a table is missing a
    /// required key or carries an out-of-range value.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::default();
        let mut section = Section::Top;
        // Partially built current table; flushed on section change / EOF.
        let mut disk: Option<NodeId> = None;
        let mut time: Option<f64> = None;
        let mut replacement: Option<NodeId> = None;
        let mut factor: Option<f64> = None;
        let mut recover_at: Option<f64> = None;
        let mut probability: Option<f64> = None;
        let flush = |section: &Section,
                     plan: &mut FaultPlan,
                     disk: &mut Option<NodeId>,
                     time: &mut Option<f64>,
                     replacement: &mut Option<NodeId>,
                     factor: &mut Option<f64>,
                     recover_at: &mut Option<f64>,
                     probability: &mut Option<f64>|
         -> Result<(), FaultPlanError> {
            match section {
                Section::Top => {}
                Section::Crash => {
                    plan.crashes.push(CrashFault {
                        disk: disk.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[[crash]] needs `disk`".into())
                        })?,
                        time: time.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[[crash]] needs `time`".into())
                        })?,
                        replacement: replacement.take(),
                    });
                }
                Section::Degrade => {
                    plan.degradations.push(DegradeFault {
                        disk: disk.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[[degrade]] needs `disk`".into())
                        })?,
                        time: time.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[[degrade]] needs `time`".into())
                        })?,
                        factor: factor.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[[degrade]] needs `factor`".into())
                        })?,
                        recover_at: recover_at.take(),
                    });
                }
                Section::Flaky => {
                    plan.flaky = Some(FlakySpec {
                        probability: probability.take().ok_or_else(|| {
                            FaultPlanError::Invalid("[flaky] needs `probability`".into())
                        })?,
                    });
                }
            }
            *disk = None;
            *time = None;
            *replacement = None;
            *factor = None;
            *recover_at = None;
            *probability = None;
            Ok(())
        };

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                flush(
                    &section,
                    &mut plan,
                    &mut disk,
                    &mut time,
                    &mut replacement,
                    &mut factor,
                    &mut recover_at,
                    &mut probability,
                )?;
                section = match header.trim() {
                    "crash" => Section::Crash,
                    "degrade" => Section::Degrade,
                    other => {
                        return Err(FaultPlanError::Parse {
                            line: lineno,
                            message: format!("unknown table `[[{other}]]`"),
                        })
                    }
                };
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush(
                    &section,
                    &mut plan,
                    &mut disk,
                    &mut time,
                    &mut replacement,
                    &mut factor,
                    &mut recover_at,
                    &mut probability,
                )?;
                section = match header.trim() {
                    "flaky" => Section::Flaky,
                    other => {
                        return Err(FaultPlanError::Parse {
                            line: lineno,
                            message: format!("unknown table `[{other}]`"),
                        })
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FaultPlanError::Parse {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            match (&section, key) {
                (Section::Top, "seed") => {
                    plan.seed = value.parse().map_err(|_| FaultPlanError::Parse {
                        line: lineno,
                        message: format!("seed: expected an integer, got `{value}`"),
                    })?;
                }
                (Section::Crash | Section::Degrade, "disk") => {
                    disk = Some(parse_disk(lineno, key, value)?);
                }
                (Section::Crash | Section::Degrade, "time") => {
                    time = Some(parse_number(lineno, key, value)?);
                }
                (Section::Crash, "replacement") => {
                    replacement = Some(parse_disk(lineno, key, value)?);
                }
                (Section::Degrade, "factor") => {
                    factor = Some(parse_number(lineno, key, value)?);
                }
                (Section::Degrade, "recover_at") => {
                    recover_at = Some(parse_number(lineno, key, value)?);
                }
                (Section::Flaky, "probability") => {
                    probability = Some(parse_number(lineno, key, value)?);
                }
                _ => {
                    return Err(FaultPlanError::Parse {
                        line: lineno,
                        message: format!("unknown key `{key}` in this table"),
                    });
                }
            }
        }
        flush(
            &section,
            &mut plan,
            &mut disk,
            &mut time,
            &mut replacement,
            &mut factor,
            &mut recover_at,
            &mut probability,
        )?;
        Ok(plan)
    }

    /// Parses *and* validates against a cluster of `num_disks` disks,
    /// attributing every semantic error to the 1-based line of the table
    /// that caused it — the error a CLI should show when a fault plan
    /// references disks the instance does not have.
    ///
    /// Accepts exactly the plans that [`FaultPlan::parse`] followed by
    /// [`FaultPlan::validate`] accepts (pinned by a unit test); only the
    /// error presentation differs.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Parse`] with the offending line for both
    /// malformed input and semantic violations.
    pub fn parse_checked(text: &str, num_disks: usize) -> Result<FaultPlan, FaultPlanError> {
        let plan = FaultPlan::parse(text)?;
        // Map each table back to the line of its header. `parse` accepted
        // the text, so headers appear exactly once per parsed entity, in
        // order.
        let mut crash_lines = Vec::new();
        let mut degrade_lines = Vec::new();
        let mut flaky_line = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or_default().trim();
            if let Some(h) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                match h.trim() {
                    "crash" => crash_lines.push(i + 1),
                    "degrade" => degrade_lines.push(i + 1),
                    _ => {}
                }
            } else if let Some(h) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                if h.trim() == "flaky" {
                    flaky_line = i + 1;
                }
            }
        }
        let at = |line: usize, message: String| FaultPlanError::Parse { line, message };
        let line_of = |lines: &[usize], i: usize| lines.get(i).copied().unwrap_or(0);
        // Same checks as `validate`, re-run per table for attribution.
        let mut crashed = vec![false; num_disks];
        for (i, c) in plan.crashes.iter().enumerate() {
            let line = line_of(&crash_lines, i);
            if c.disk.index() >= num_disks {
                return Err(at(
                    line,
                    format!(
                        "crash disk {} out of range (cluster has {num_disks} disks)",
                        c.disk
                    ),
                ));
            }
            if !c.time.is_finite() || c.time < 0.0 {
                return Err(at(line, format!("crash time {} invalid", c.time)));
            }
            if crashed[c.disk.index()] {
                return Err(at(line, format!("disk {} crashes twice", c.disk)));
            }
            crashed[c.disk.index()] = true;
        }
        for (i, c) in plan.crashes.iter().enumerate() {
            let line = line_of(&crash_lines, i);
            if let Some(r) = c.replacement {
                if r.index() >= num_disks {
                    return Err(at(
                        line,
                        format!(
                            "replacement disk {r} out of range (cluster has {num_disks} disks)"
                        ),
                    ));
                }
                if crashed[r.index()] {
                    return Err(at(
                        line,
                        format!("replacement {r} for disk {} is itself crashed", c.disk),
                    ));
                }
            }
        }
        for (i, d) in plan.degradations.iter().enumerate() {
            let line = line_of(&degrade_lines, i);
            if d.disk.index() >= num_disks {
                return Err(at(
                    line,
                    format!(
                        "degrade disk {} out of range (cluster has {num_disks} disks)",
                        d.disk
                    ),
                ));
            }
            if !d.time.is_finite() || d.time < 0.0 {
                return Err(at(line, format!("degrade time {} invalid", d.time)));
            }
            if !(d.factor > 0.0 && d.factor < 1.0 && d.factor.is_finite()) {
                return Err(at(
                    line,
                    format!(
                        "degrade factor {} must be in (0, 1) — a total failure is a crash",
                        d.factor
                    ),
                ));
            }
            if let Some(r) = d.recover_at {
                if !r.is_finite() || r < 0.0 {
                    return Err(at(line, format!("recover_at time {r} invalid")));
                }
                if r <= d.time {
                    return Err(at(
                        line,
                        format!("recover_at {r} is not after onset {}", d.time),
                    ));
                }
            }
        }
        if let Some(f) = &plan.flaky {
            if !(0.0..=1.0).contains(&f.probability) || !f.probability.is_finite() {
                return Err(at(
                    flaky_line,
                    format!("flaky probability {} must be in [0, 1]", f.probability),
                ));
            }
        }
        Ok(plan)
    }

    /// Validates the plan against a cluster of `num_disks` disks.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Invalid`] for out-of-range disks,
    /// non-finite or negative times, degradation factors outside `(0, 1)`,
    /// recovery before onset, crash replacements that are themselves
    /// crashed, repeat crashes of one disk, or a flaky probability outside
    /// `[0, 1]`.
    pub fn validate(&self, num_disks: usize) -> Result<(), FaultPlanError> {
        let check_disk = |what: &str, d: NodeId| {
            if d.index() >= num_disks {
                return Err(FaultPlanError::Invalid(format!(
                    "{what} disk {d} out of range (cluster has {num_disks} disks)"
                )));
            }
            Ok(())
        };
        let check_time = |what: &str, t: f64| {
            if !t.is_finite() || t < 0.0 {
                return Err(FaultPlanError::Invalid(format!("{what} time {t} invalid")));
            }
            Ok(())
        };
        let mut crashed = vec![false; num_disks];
        for c in &self.crashes {
            check_disk("crash", c.disk)?;
            check_time("crash", c.time)?;
            if crashed[c.disk.index()] {
                return Err(FaultPlanError::Invalid(format!(
                    "disk {} crashes twice",
                    c.disk
                )));
            }
            crashed[c.disk.index()] = true;
        }
        for c in &self.crashes {
            if let Some(r) = c.replacement {
                check_disk("replacement", r)?;
                if crashed[r.index()] {
                    return Err(FaultPlanError::Invalid(format!(
                        "replacement {r} for disk {} is itself crashed",
                        c.disk
                    )));
                }
            }
        }
        for d in &self.degradations {
            check_disk("degrade", d.disk)?;
            check_time("degrade", d.time)?;
            if !(d.factor > 0.0 && d.factor < 1.0 && d.factor.is_finite()) {
                return Err(FaultPlanError::Invalid(format!(
                    "degrade factor {} must be in (0, 1) — a total failure is a crash",
                    d.factor
                )));
            }
            if let Some(r) = d.recover_at {
                check_time("recover_at", r)?;
                if r <= d.time {
                    return Err(FaultPlanError::Invalid(format!(
                        "recover_at {r} is not after onset {}",
                        d.time
                    )));
                }
            }
        }
        if let Some(f) = &self.flaky {
            if !(0.0..=1.0).contains(&f.probability) || !f.probability.is_finite() {
                return Err(FaultPlanError::Invalid(format!(
                    "flaky probability {} must be in [0, 1]",
                    f.probability
                )));
            }
        }
        Ok(())
    }

    /// Compiles the plan to a timeline sorted by `(time, kind, disk)` —
    /// bandwidth changes before crashes at equal timestamps — so the
    /// apply order is canonical regardless of declaration order.
    #[must_use]
    pub fn timeline(&self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for d in &self.degradations {
            events.push(FaultEvent {
                time: d.time,
                action: FaultAction::SetBandwidthFactor(d.disk, d.factor),
            });
            if let Some(r) = d.recover_at {
                events.push(FaultEvent {
                    time: r,
                    action: FaultAction::SetBandwidthFactor(d.disk, 1.0),
                });
            }
        }
        for c in &self.crashes {
            events.push(FaultEvent {
                time: c.time,
                action: FaultAction::Crash(c.disk, c.replacement),
            });
        }
        events.sort_by(|a, b| {
            let key = |e: &FaultEvent| match e.action {
                FaultAction::SetBandwidthFactor(d, f) => (e.time, 0u8, d.index(), f),
                FaultAction::Crash(d, _) => (e.time, 1u8, d.index(), 0.0),
            };
            let (ta, ka, da, fa) = key(a);
            let (tb, kb, db, fb) = key(b);
            ta.total_cmp(&tb)
                .then(ka.cmp(&kb))
                .then(da.cmp(&db))
                .then(fa.total_cmp(&fb))
        });
        events
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.degradations.is_empty()
            && self.flaky.map_or(true, |f| f.probability == 0.0)
    }
}

/// The seeded flaky-transfer coin: attempt `attempt` of item `item` fails
/// iff a splitmix64-style hash of `(seed, item, attempt)` lands below
/// `probability`. Pure and deterministic — the executor's reproducibility
/// guarantee rests on it.
#[must_use]
pub fn attempt_fails(seed: u64, item: u64, attempt: u64, probability: f64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    if probability >= 1.0 {
        return true;
    }
    let mut x = seed
        ^ item.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // Top 53 bits -> uniform in [0, 1) with exact f64 arithmetic.
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    unit < probability
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# everything that will go wrong, up front
seed = 7

[[degrade]]
disk = 1
time = 2.0
factor = 0.25
recover_at = 6.0

[[crash]]
disk = 3
time = 4.0
replacement = 5

[[crash]]
disk = 0
time = 9.0

[flaky]
probability = 0.05
";

    #[test]
    fn parses_the_sample_plan() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(plan.crashes[0].replacement, Some(NodeId::new(5)));
        assert_eq!(plan.crashes[1].replacement, None);
        assert_eq!(plan.degradations.len(), 1);
        assert_eq!(plan.degradations[0].recover_at, Some(6.0));
        assert_eq!(plan.flaky, Some(FlakySpec { probability: 0.05 }));
        plan.validate(6).unwrap();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, needle) in [
            ("[[explode]]\n", "unknown table"),
            ("[mystery]\n", "unknown table"),
            ("seed = many\n", "expected an integer"),
            ("[[crash]]\ndisk = x\n", "disk index"),
            ("[[crash]]\nwhat = 1\n", "unknown key"),
            ("gibberish\n", "key = value"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(matches!(err, FaultPlanError::Parse { .. }), "{text}: {err}");
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
        // Missing required keys are caught at flush.
        let err = FaultPlan::parse("[[crash]]\ntime = 1\n").unwrap_err();
        assert!(err.to_string().contains("needs `disk`"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let cases: &[(FaultPlan, &str)] = &[
            (
                FaultPlan {
                    crashes: vec![CrashFault {
                        disk: NodeId::new(9),
                        time: 0.0,
                        replacement: None,
                    }],
                    ..FaultPlan::default()
                },
                "out of range",
            ),
            (
                FaultPlan {
                    crashes: vec![
                        CrashFault {
                            disk: NodeId::new(0),
                            time: 0.0,
                            replacement: Some(NodeId::new(1)),
                        },
                        CrashFault {
                            disk: NodeId::new(1),
                            time: 1.0,
                            replacement: None,
                        },
                    ],
                    ..FaultPlan::default()
                },
                "itself crashed",
            ),
            (
                FaultPlan {
                    degradations: vec![DegradeFault {
                        disk: NodeId::new(0),
                        time: 0.0,
                        factor: 0.0,
                        recover_at: None,
                    }],
                    ..FaultPlan::default()
                },
                "total failure is a crash",
            ),
            (
                FaultPlan {
                    degradations: vec![DegradeFault {
                        disk: NodeId::new(0),
                        time: 5.0,
                        factor: 0.5,
                        recover_at: Some(5.0),
                    }],
                    ..FaultPlan::default()
                },
                "not after onset",
            ),
            (
                FaultPlan {
                    flaky: Some(FlakySpec { probability: 1.5 }),
                    ..FaultPlan::default()
                },
                "[0, 1]",
            ),
        ];
        for (plan, needle) in cases {
            let err = plan.validate(4).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn parse_checked_attributes_semantic_errors_to_lines() {
        // disk 9 is out of range for a 6-disk cluster; the error points
        // at the [[crash]] header that declared it (line 5).
        let text = "\
seed = 1

[[degrade]]
disk = 1
time = 1.0
factor = 0.5

[[crash]]
disk = 9
time = 2.0
";
        let err = FaultPlan::parse_checked(text, 6).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::Parse {
                line: 8,
                message: "crash disk v9 out of range (cluster has 6 disks)".into()
            },
            "{err}"
        );

        // Double crash blames the *second* table; bad flaky blames
        // [flaky]; bad degrade factor blames its own table.
        for (text, line, needle) in [
            (
                "[[crash]]\ndisk = 0\ntime = 1.0\n\n[[crash]]\ndisk = 0\ntime = 2.0\n",
                5,
                "crashes twice",
            ),
            (
                "[[crash]]\ndisk = 0\ntime = 1.0\nreplacement = 0\n",
                1,
                "itself crashed",
            ),
            (
                "[[degrade]]\ndisk = 1\ntime = 1.0\nfactor = 1.5\n",
                1,
                "must be in (0, 1)",
            ),
            ("\n[flaky]\nprobability = 2.0\n", 2, "must be in [0, 1]"),
        ] {
            let err = FaultPlan::parse_checked(text, 4).unwrap_err();
            let FaultPlanError::Parse { line: l, message } = &err else {
                panic!("{text}: expected a line-numbered error, got {err}");
            };
            assert_eq!(*l, line, "{text}: {err}");
            assert!(message.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn parse_checked_agrees_with_parse_plus_validate() {
        let bad_semantics = "[[crash]]\ndisk = 99\ntime = 1.0\n";
        for (text, disks) in [
            (SAMPLE, 6),
            (SAMPLE, 4), // replacement 5 out of range
            ("seed = 3\n", 1),
            (bad_semantics, 4),
            (
                "[[degrade]]\ndisk = 0\ntime = 3.0\nfactor = 0.5\nrecover_at = 2.0\n",
                4,
            ),
        ] {
            let checked = FaultPlan::parse_checked(text, disks);
            let two_step = FaultPlan::parse(text).and_then(|p| p.validate(disks).map(|()| p));
            assert_eq!(checked.is_ok(), two_step.is_ok(), "{text} on {disks} disks");
            if let (Ok(a), Ok(b)) = (&checked, &two_step) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn timeline_is_canonically_ordered() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let tl = plan.timeline();
        let times: Vec<f64> = tl.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0, 9.0]);
        // Same-timestamp ties: bandwidth changes before crashes, then by
        // disk index — independent of declaration order.
        let a = FaultPlan {
            crashes: vec![CrashFault {
                disk: NodeId::new(2),
                time: 1.0,
                replacement: None,
            }],
            degradations: vec![DegradeFault {
                disk: NodeId::new(0),
                time: 1.0,
                factor: 0.5,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let tl = a.timeline();
        assert!(matches!(tl[0].action, FaultAction::SetBandwidthFactor(..)));
        assert!(matches!(tl[1].action, FaultAction::Crash(..)));
    }

    #[test]
    fn flaky_coin_is_deterministic_and_roughly_calibrated() {
        for &(seed, item, attempt, p) in
            &[(1u64, 2u64, 3u64, 0.3f64), (42, 0, 1, 0.5), (7, 9, 2, 0.01)]
        {
            assert_eq!(
                attempt_fails(seed, item, attempt, p),
                attempt_fails(seed, item, attempt, p)
            );
        }
        assert!(!attempt_fails(1, 1, 1, 0.0));
        assert!(attempt_fails(1, 1, 1, 1.0));
        let fails = (0..10_000)
            .filter(|&i| attempt_fails(99, i, 1, 0.2))
            .count();
        assert!(
            (1_600..=2_400).contains(&fails),
            "p=0.2 over 10k trials gave {fails} failures"
        );
    }

    #[test]
    fn empty_plan_detection() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan {
            flaky: Some(FlakySpec { probability: 0.0 }),
            ..FaultPlan::default()
        }
        .is_empty());
        assert!(!FaultPlan::parse(SAMPLE).unwrap().is_empty());
    }
}
