//! Cluster hardware model: per-disk bandwidths and item sizes.

use dmig_graph::NodeId;

/// Hardware description of a storage cluster: one bandwidth per disk (in
/// item-sizes per time unit) and a size per data item (default 1.0, the
/// paper's unit-size assumption).
///
/// Transfer constraints `c_v` live on the
/// [`dmig_core::MigrationProblem`], not here: they are scheduling inputs,
/// while the cluster describes the physics the schedule runs against.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    bandwidths: Vec<f64>,
    item_sizes: Option<Vec<f64>>,
}

impl Cluster {
    /// A cluster of `n` identical disks with the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive and finite.
    #[must_use]
    pub fn uniform(n: usize, bandwidth: f64) -> Self {
        Cluster::from_bandwidths(vec![bandwidth; n])
    }

    /// A cluster with explicit per-disk bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth is not strictly positive and finite.
    #[must_use]
    pub fn from_bandwidths(bandwidths: Vec<f64>) -> Self {
        for (i, &b) in bandwidths.iter().enumerate() {
            assert!(
                b.is_finite() && b > 0.0,
                "disk {i} has invalid bandwidth {b}"
            );
        }
        Cluster {
            bandwidths,
            item_sizes: None,
        }
    }

    /// Overrides the unit item-size assumption with explicit sizes
    /// (indexed by edge id).
    ///
    /// # Panics
    ///
    /// Panics if any size is not strictly positive and finite.
    #[must_use]
    pub fn with_item_sizes(mut self, sizes: Vec<f64>) -> Self {
        for (i, &s) in sizes.iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "item {i} has invalid size {s}");
        }
        self.item_sizes = Some(sizes);
        self
    }

    /// Number of disks described.
    #[inline]
    #[must_use]
    pub fn num_disks(&self) -> usize {
        self.bandwidths.len()
    }

    /// Bandwidth of disk `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn bandwidth(&self, v: NodeId) -> f64 {
        self.bandwidths[v.index()]
    }

    /// Size of item `e` (1.0 unless overridden).
    #[inline]
    #[must_use]
    pub fn item_size(&self, e: dmig_graph::EdgeId) -> f64 {
        self.item_sizes.as_ref().map_or(1.0, |s| s[e.index()])
    }

    /// Whether explicit item sizes were provided, and how many.
    #[must_use]
    pub fn explicit_item_sizes(&self) -> Option<usize> {
        self.item_sizes.as_ref().map(Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cluster() {
        let c = Cluster::uniform(4, 2.0);
        assert_eq!(c.num_disks(), 4);
        assert_eq!(c.bandwidth(3.into()), 2.0);
        assert_eq!(c.item_size(0.into()), 1.0);
        assert_eq!(c.explicit_item_sizes(), None);
    }

    #[test]
    fn heterogeneous_bandwidths() {
        let c = Cluster::from_bandwidths(vec![1.0, 0.5, 4.0]);
        assert_eq!(c.bandwidth(1.into()), 0.5);
    }

    #[test]
    fn item_sizes_override() {
        let c = Cluster::uniform(2, 1.0).with_item_sizes(vec![2.0, 0.5]);
        assert_eq!(c.item_size(0.into()), 2.0);
        assert_eq!(c.item_size(1.into()), 0.5);
        assert_eq!(c.explicit_item_sizes(), Some(2));
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Cluster::uniform(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid size")]
    fn negative_item_size_rejected() {
        let _ = Cluster::uniform(1, 1.0).with_item_sizes(vec![-1.0]);
    }
}
