//! Live per-round progress reporting and stall detection.
//!
//! Long simulations (hundreds of thousands of rounds on large instances)
//! were previously silent until the final report. A [`RoundTicker`] hooks
//! the per-round telemetry point shared by both engines and adds:
//!
//! * **Progress lines** — `[sim] round 1200/40000 (3.0%) … eta 12.4s` on
//!   stderr, throttled to one line per [`PRINT_INTERVAL`], behind an
//!   explicit opt-in ([`set_progress`], the CLI's `--progress` flag) so
//!   batch runs and tests stay quiet.
//! * **Stall detection** — each round's wall duration is checked against
//!   [`STALL_FACTOR`] × the rolling median of recent rounds
//!   ([`StallDetector`]); a round that blows past it increments the
//!   `sim.stalls` counter and, when progress is on, prints a warning.
//! * **Obs events** — every round records `sim.round_wall_ns` (histogram)
//!   and `sim.progress_pct` (gauge), so a `--metrics-out` snapshot of a
//!   hung run shows where it stopped.
//!
//! Ticker state is per-simulation (no globals beyond the print opt-in), and
//! nothing here feeds back into the engines: enabling progress can never
//! change a simulation result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A round is a stall when it takes more than this many times the rolling
/// median round duration.
pub const STALL_FACTOR: f64 = 8.0;

/// Rolling window of recent round durations the median is taken over.
const WINDOW: usize = 64;

/// Stall checks only start once this many rounds have been observed — a
/// median over fewer samples is noise.
const MIN_SAMPLES: usize = 5;

/// Minimum gap between progress lines.
const PRINT_INTERVAL: Duration = Duration::from_millis(200);

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns stderr progress lines on or off (process-global; default off).
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Whether progress lines are enabled.
#[must_use]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Flags rounds whose wall duration blows past `factor ×` the rolling
/// median of the last [`WINDOW`] rounds. Pure state machine — no clocks,
/// no I/O — so the threshold logic is unit-testable with synthetic
/// durations.
#[derive(Debug)]
pub struct StallDetector {
    recent: Vec<u64>,
    next: usize,
    factor: f64,
}

impl StallDetector {
    /// Creates a detector with the given multiple-of-median threshold.
    #[must_use]
    pub fn new(factor: f64) -> StallDetector {
        StallDetector {
            recent: Vec::with_capacity(WINDOW),
            next: 0,
            factor,
        }
    }

    /// Feeds one round duration; returns `Some(median_ns)` when the round
    /// is a stall relative to the rolling median *before* this observation.
    pub fn observe(&mut self, dur_ns: u64) -> Option<u64> {
        let verdict = if self.recent.len() >= MIN_SAMPLES {
            let med = self.median();
            (med > 0 && dur_ns as f64 > self.factor * med as f64).then_some(med)
        } else {
            None
        };
        // The stalled round still enters the window: under a persistent
        // slowdown (cluster-wide degradation, not a one-off hang) the
        // median adapts instead of flagging every subsequent round.
        if self.recent.len() < WINDOW {
            self.recent.push(dur_ns);
        } else {
            self.recent[self.next] = dur_ns;
            self.next = (self.next + 1) % WINDOW;
        }
        verdict
    }

    fn median(&self) -> u64 {
        let mut sorted = self.recent.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Snapshot of the rolling window for executor checkpoints: the raw
    /// samples in ring order plus the next overwrite slot.
    #[must_use]
    pub fn window(&self) -> (&[u64], usize) {
        (&self.recent, self.next)
    }

    /// Rebuilds a detector from a [`window`](Self::window) snapshot, so a
    /// restored executor sees exactly the median the interrupted run saw.
    /// Samples beyond the configured window are dropped defensively.
    #[must_use]
    pub fn from_window(factor: f64, mut samples: Vec<u64>, next: usize) -> StallDetector {
        samples.truncate(WINDOW);
        // `next` only steers overwrites once the window is full; a partial
        // window still appends, exactly as a fresh detector would.
        let next = if samples.len() < WINDOW {
            0
        } else {
            next % WINDOW
        };
        StallDetector {
            recent: samples,
            next,
            factor,
        }
    }
}

/// Per-simulation progress/stall tracker; one instance per engine call.
#[derive(Debug)]
pub struct RoundTicker {
    total: usize,
    done: usize,
    items: u64,
    started: Instant,
    round_started: Instant,
    last_print: Instant,
    detector: StallDetector,
}

impl RoundTicker {
    /// Starts tracking a simulation of `total_rounds` rounds.
    #[must_use]
    pub fn new(total_rounds: usize) -> RoundTicker {
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_PHASE, dmig_obs::phase::SIMULATE);
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_ROUND, 0);
        let now = Instant::now();
        RoundTicker {
            total: total_rounds,
            done: 0,
            items: 0,
            started: now,
            round_started: now,
            // Backdate so the first eligible round prints immediately.
            last_print: now.checked_sub(PRINT_INTERVAL).unwrap_or(now),
            detector: StallDetector::new(STALL_FACTOR),
        }
    }

    /// Marks one round complete: records obs events, runs the stall check,
    /// and prints a throttled progress line when enabled.
    pub fn round_done(&mut self, transfers: usize) {
        let now = Instant::now();
        let dur = now.duration_since(self.round_started);
        self.round_started = now;
        self.done += 1;
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        dmig_obs::observe(dmig_obs::keys::SIM_ROUND_WALL_NS, dur_ns);
        let pct = (self.done * 100).checked_div(self.total).unwrap_or(100) as u64;
        dmig_obs::gauge_set(dmig_obs::keys::SIM_PROGRESS_PCT, pct);
        self.items += transfers as u64;
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_ROUND, self.done as u64);
        dmig_obs::gauge_set(dmig_obs::keys::LIVE_ITEMS_DONE, self.items);

        if let Some(median_ns) = self.detector.observe(dur_ns) {
            dmig_obs::counter_add(dmig_obs::keys::SIM_STALLS, 1);
            if progress_enabled() {
                // Wall-clock stall events are interactive-only: their
                // payloads carry host timings, which would break the
                // byte-identical-JSONL guarantee batch runs rely on.
                dmig_obs::events::emit(dmig_obs::events::Event::Stall {
                    round: self.done as u64,
                    duration: dur_ns as f64 / 1e9,
                    median: median_ns as f64 / 1e9,
                    time: f64::NAN,
                });
                eprintln!(
                    "[sim] stall: round {}/{} took {:.1}ms (> {STALL_FACTOR}x rolling median {:.1}ms)",
                    self.done,
                    self.total,
                    dur_ns as f64 / 1e6,
                    median_ns as f64 / 1e6,
                );
            }
        }

        if progress_enabled()
            && (self.done == self.total || now.duration_since(self.last_print) >= PRINT_INTERVAL)
        {
            self.last_print = now;
            let elapsed = now.duration_since(self.started).as_secs_f64();
            let eta = if self.done == 0 {
                0.0
            } else {
                elapsed / self.done as f64 * self.total.saturating_sub(self.done) as f64
            };
            eprintln!(
                "[sim] round {}/{} ({pct}%) {transfers} transfers, elapsed {elapsed:.1}s eta {eta:.1}s",
                self.done, self.total,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_until_enough_samples() {
        let mut d = StallDetector::new(8.0);
        for _ in 0..MIN_SAMPLES - 1 {
            assert_eq!(d.observe(100), None);
        }
        // 5th observation: window has 4 samples, still below MIN_SAMPLES.
        assert_eq!(d.observe(1_000_000), None);
    }

    #[test]
    fn flags_outlier_against_rolling_median() {
        let mut d = StallDetector::new(8.0);
        for _ in 0..10 {
            assert_eq!(d.observe(100), None);
        }
        assert_eq!(d.observe(800), None, "exactly 8x median is not a stall");
        assert_eq!(d.observe(801), Some(100), "strictly above 8x median is");
    }

    #[test]
    fn median_adapts_to_persistent_slowdown() {
        let mut d = StallDetector::new(8.0);
        for _ in 0..WINDOW {
            d.observe(100);
        }
        // A 10x step change: first rounds flag, but once the window fills
        // with the new regime the median catches up and flagging stops.
        let flagged: usize = (0..2 * WINDOW)
            .filter(|_| d.observe(1_000).is_some())
            .count();
        assert!(flagged >= 1, "step change must be flagged at least once");
        assert!(
            flagged < WINDOW,
            "median must adapt before the window cycles twice (flagged {flagged})"
        );
        assert_eq!(d.observe(1_000), None, "new regime is the new normal");
    }

    #[test]
    fn zero_median_never_divides_or_flags() {
        let mut d = StallDetector::new(8.0);
        for _ in 0..10 {
            d.observe(0);
        }
        assert_eq!(d.observe(u64::MAX), None, "zero median disables the check");
    }

    /// Serializes tests that flip global recorder state (only this one in
    /// the sim unit-test binary today, but the lock keeps that invariant
    /// local).
    fn obs_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[test]
    fn ticker_records_obs_events() {
        let _guard = obs_lock().lock().unwrap();
        dmig_obs::reset();
        dmig_obs::set_enabled(true);
        let mut t = RoundTicker::new(3);
        for _ in 0..3 {
            t.round_done(7);
        }
        let snap = dmig_obs::snapshot();
        dmig_obs::set_enabled(false);
        dmig_obs::reset();
        assert_eq!(
            snap.histograms
                .get(dmig_obs::keys::SIM_ROUND_WALL_NS)
                .map(|h| h.count),
            Some(3)
        );
        assert_eq!(
            snap.gauges.get(dmig_obs::keys::SIM_PROGRESS_PCT).copied(),
            Some(100)
        );
        assert_eq!(
            snap.gauges.get(dmig_obs::keys::LIVE_PHASE).copied(),
            Some(dmig_obs::phase::SIMULATE)
        );
        assert_eq!(
            snap.gauges.get(dmig_obs::keys::LIVE_ROUND).copied(),
            Some(3)
        );
        assert_eq!(
            snap.gauges.get(dmig_obs::keys::LIVE_ITEMS_DONE).copied(),
            Some(21),
            "cumulative transfers across rounds"
        );
        assert_eq!(snap.counters.get(dmig_obs::keys::SIM_STALLS), None);
    }
}
