//! Panic-hook crash dump: a run that dies mid-execution leaves a
//! parseable `dmig-crash/1` document whose last ring event is exactly the
//! last line flushed to the JSONL sink.

use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::{MigrationProblem, MigrationSchedule, SolveError};
use dmig_graph::GraphBuilder;
use dmig_sim::faults::CrashFault;
use dmig_sim::{execute, Cluster, ExecutorConfig, FaultPlan};

/// Plans fine the first time (so `execute` gets a real schedule) but dies
/// when the executor comes back for a replan.
struct PanickingSolver;

impl Solver for PanickingSolver {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn solve(&self, _problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
        panic!("injected replan failure for the crash-dump test");
    }
}

#[test]
fn panicking_run_leaves_a_parseable_crash_dump() {
    let g = GraphBuilder::new()
        .nodes(4)
        .edge(0, 1)
        .edge(0, 1)
        .edge(1, 2)
        .edge(1, 2)
        .build();
    let problem = MigrationProblem::uniform(g, 2).unwrap();
    let schedule = AutoSolver.solve(&problem).unwrap();
    let cluster = Cluster::uniform(4, 1.0);
    let faults = FaultPlan {
        crashes: vec![CrashFault {
            disk: 2.into(),
            time: 0.5,
            replacement: Some(3.into()),
        }],
        ..FaultPlan::default()
    };
    let config = ExecutorConfig {
        replan: true,
        ..ExecutorConfig::default()
    };

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let sink = dir.join(format!("dmig-crashtest-{pid}.jsonl"));
    let dump = dir.join(format!("dmig-crashtest-{pid}-crash.json"));
    let _ = std::fs::remove_file(&sink);
    let _ = std::fs::remove_file(&dump);

    dmig_obs::events::reset();
    dmig_obs::events::open_sink(sink.to_str().unwrap()).expect("sink opens");
    dmig_obs::events::set_enabled(true);
    dmig_obs::events::set_crash_path(Some(dump.clone()));

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(
            &problem,
            &schedule,
            &cluster,
            &faults,
            &config,
            &PanickingSolver,
        )
    }));

    dmig_obs::events::set_crash_path(None);
    dmig_obs::events::set_enabled(false);
    dmig_obs::events::close_sink();
    dmig_obs::events::reset();

    assert!(result.is_err(), "the injected replan panic must surface");

    let dump_text = std::fs::read_to_string(&dump).expect("crash dump written");
    let doc = dmig_obs::Value::parse(dump_text.trim()).expect("crash dump parses as JSON");
    assert_eq!(
        doc.get_path("schema").and_then(dmig_obs::Value::as_str),
        Some(dmig_obs::events::CRASH_SCHEMA)
    );
    let message = doc
        .get_path("message")
        .and_then(dmig_obs::Value::as_str)
        .expect("message field");
    assert!(message.contains("injected replan failure"));
    let events = doc
        .get_path("events")
        .and_then(dmig_obs::Value::as_array)
        .expect("events array");
    assert!(!events.is_empty(), "the ring saw the round and the crash");

    // The dump's last ring event is byte-for-byte the last sink line: both
    // views come from the same renderer, and the sink flushes before the
    // ring, so a crash can never leave the file ahead of the dump.
    let jsonl = std::fs::read_to_string(&sink).expect("sink readable");
    let last_line = jsonl.lines().last().expect("sink is non-empty");
    let last_parsed = dmig_obs::Value::parse(last_line).expect("sink line parses");
    assert_eq!(
        events.last().unwrap(),
        &last_parsed,
        "crash dump's last event must match the last flushed JSONL line"
    );

    // The stream contains the crash event that triggered the replan.
    assert!(
        jsonl.lines().any(|l| l.contains("\"kind\":\"crash\"")),
        "crash event missing from the stream: {jsonl}"
    );

    let _ = std::fs::remove_file(&sink);
    let _ = std::fs::remove_file(&dump);
}
