//! Checkpoint/restore property tests for the resumable executor.
//!
//! The load-bearing guarantee of the durable-workspace layer: an executor
//! killed at *any* round boundary and revived from its last checkpoint
//! produces a final report byte-identical to the uninterrupted run — same
//! seed, same fault plan, any solver thread count. On top of that:
//! checkpoints round-trip losslessly (restore → checkpoint is the
//! identity), accounting stays exact across the kill (`delivered + lost
//! == |items|`), and corrupt checkpoints are rejected with a diagnostic
//! instead of resuming into a wrong run.

use dmig_core::parallel::ParallelSolver;
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::MigrationProblem;
use dmig_sim::faults::{CrashFault, DegradeFault, FlakySpec};
use dmig_sim::{Cluster, ExecError, Executor, ExecutorConfig, FaultPlan, StepOutcome};
use dmig_workloads::random::uniform_multigraph;
use proptest::prelude::*;

/// A small random instance that always admits a schedule: `n` live disks
/// plus one idle spare (disk `n`), uniform capacity 2.
fn instance(n: usize, m: usize, seed: u64) -> MigrationProblem {
    let mut b = dmig_graph::GraphBuilder::new();
    for (_, ep) in uniform_multigraph(n, m, seed).edges() {
        b = b.edge(ep.u.index(), ep.v.index());
    }
    let g = b.nodes(n + 1).build();
    MigrationProblem::uniform(g, 2).expect("valid instance")
}

/// A fault plan exercising every recovery path: one crash with the spare
/// as replacement, one degradation with recovery, flaky transfers.
fn plan(n: usize, seed: u64, crash: bool, degrade: bool, flaky: bool) -> FaultPlan {
    let mut p = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    if crash {
        p.crashes.push(CrashFault {
            disk: (seed as usize % n).into(),
            time: 0.25 + (seed % 4) as f64 * 0.5,
            replacement: Some(n.into()),
        });
    }
    if degrade {
        p.degradations.push(DegradeFault {
            disk: ((seed as usize / 3) % n).into(),
            time: 0.5,
            factor: 0.25,
            recover_at: Some(4.0),
        });
    }
    if flaky {
        p.flaky = Some(FlakySpec { probability: 0.3 });
    }
    p
}

fn config() -> ExecutorConfig {
    ExecutorConfig {
        replan: true,
        retry_max: 3,
        ..ExecutorConfig::default()
    }
}

/// Runs to completion, returning every boundary checkpoint (including the
/// pristine pre-first-round state) and the final report JSON.
fn run_with_checkpoints(
    problem: &MigrationProblem,
    cluster: &Cluster,
    faults: &FaultPlan,
    solver: &dyn Solver,
) -> (Vec<String>, String) {
    let cfg = config();
    let schedule = solver.solve(problem).expect("solvable");
    let mut exec =
        Executor::new(problem, &schedule, cluster, faults, &cfg, solver).expect("executor builds");
    let mut checkpoints = vec![exec.checkpoint_json()];
    while exec.step().expect("step") == StepOutcome::Running {
        checkpoints.push(exec.checkpoint_json());
    }
    (checkpoints, exec.into_report().to_json())
}

/// Revives from `checkpoint` and runs to completion.
fn resume_to_report(
    problem: &MigrationProblem,
    cluster: &Cluster,
    faults: &FaultPlan,
    solver: &dyn Solver,
    checkpoint: &str,
) -> dmig_sim::ExecReport {
    let cfg = config();
    let mut exec = Executor::restore(problem, cluster, faults, &cfg, solver, checkpoint)
        .expect("checkpoint restores");
    while exec.step().expect("step") == StepOutcome::Running {}
    exec.into_report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill at any sampled boundary, at any thread count: the resumed
    /// run's report is byte-identical and the accounting exact.
    #[test]
    fn resume_from_any_boundary_is_byte_identical(
        n in 3usize..7,
        m in 4usize..14,
        gseed in 0u64..1000,
        fseed in 0u64..1000,
        crash in proptest::bool::ANY,
        degrade in proptest::bool::ANY,
        flaky in proptest::bool::ANY,
        kill in 0u64..1000,
        threads in 1usize..5,
    ) {
        let problem = instance(n, m, gseed);
        let faults = plan(n, fseed, crash, degrade, flaky);
        faults.validate(problem.num_disks()).expect("plan valid");
        let cluster = Cluster::uniform(problem.num_disks(), 1.0);
        let solver = ParallelSolver::with_threads(Box::new(AutoSolver), threads);
        let (checkpoints, reference) =
            run_with_checkpoints(&problem, &cluster, &faults, &solver);

        // Sample one kill boundary from the run's own length.
        let at = (kill as usize * checkpoints.len() / 1000).min(checkpoints.len() - 1);
        let resumed = resume_to_report(&problem, &cluster, &faults, &solver, &checkpoints[at]);
        prop_assert_eq!(
            resumed.to_json(),
            reference.clone(),
            "kill at boundary {} of {} diverged",
            at,
            checkpoints.len()
        );
        prop_assert_eq!(resumed.delivered() + resumed.lost(), problem.num_items());

        // A restored executor re-serializes to the exact same document.
        let cfg = config();
        let revived = Executor::restore(&problem, &cluster, &faults, &cfg, &solver, &checkpoints[at])
            .expect("restores");
        prop_assert_eq!(&revived.checkpoint_json(), &checkpoints[at]);
    }
}

/// Exhaustive sweep on a CI-shaped scenario: every boundary of a run with
/// a crash, a degradation, and flaky transfers is a valid resume point.
#[test]
fn every_boundary_of_a_faulty_run_resumes_exactly() {
    let problem = instance(5, 12, 42);
    let faults = FaultPlan {
        seed: 2026,
        crashes: vec![CrashFault {
            disk: 2.into(),
            time: 0.5,
            replacement: Some(5.into()),
        }],
        degradations: vec![DegradeFault {
            disk: 1.into(),
            time: 0.25,
            factor: 0.4,
            recover_at: Some(8.0),
        }],
        flaky: Some(FlakySpec { probability: 0.1 }),
    };
    faults.validate(problem.num_disks()).unwrap();
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    for threads in [1usize, 4] {
        let solver = ParallelSolver::with_threads(Box::new(AutoSolver), threads);
        let (checkpoints, reference) = run_with_checkpoints(&problem, &cluster, &faults, &solver);
        assert!(checkpoints.len() >= 2, "the scenario must span rounds");
        for (at, ck) in checkpoints.iter().enumerate() {
            let resumed = resume_to_report(&problem, &cluster, &faults, &solver, ck);
            assert_eq!(
                resumed.to_json(),
                reference,
                "threads {threads}: boundary {at} diverged"
            );
        }
    }
}

/// Double interruption: checkpoint, resume, checkpoint again mid-flight,
/// resume again — the chain still lands on the reference report.
#[test]
fn chained_resumes_compose() {
    let problem = instance(4, 10, 7);
    let faults = plan(4, 99, true, true, true);
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let solver = ParallelSolver::with_threads(Box::new(AutoSolver), 2);
    let (checkpoints, reference) = run_with_checkpoints(&problem, &cluster, &faults, &solver);
    let cfg = config();
    let first = &checkpoints[checkpoints.len() / 3];
    let mut exec =
        Executor::restore(&problem, &cluster, &faults, &cfg, &solver, first).expect("restores");
    // Advance a couple of boundaries, then get killed again.
    for _ in 0..2 {
        if exec.step().expect("step") == StepOutcome::Finished {
            break;
        }
    }
    let second = exec.checkpoint_json();
    let resumed = resume_to_report(&problem, &cluster, &faults, &solver, &second);
    assert_eq!(resumed.to_json(), reference);
}

#[test]
fn corrupt_checkpoints_are_rejected_with_diagnostics() {
    let problem = instance(3, 6, 1);
    let faults = FaultPlan::default();
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let solver = AutoSolver;
    let cfg = config();
    let (checkpoints, _) = run_with_checkpoints(&problem, &cluster, &faults, &solver);
    let good = &checkpoints[0];

    for (mangle, needle) in [
        ("not json at all".to_string(), "unparseable"),
        (
            good.replace("dmig-exec-ckpt/1", "dmig-exec-ckpt/999"),
            "schema",
        ),
        (good.replace("\"disks\": 4", "\"disks\": 9"), "disk"),
    ] {
        let err = Executor::restore(&problem, &cluster, &faults, &cfg, &solver, &mangle)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, ExecError::Checkpoint(_)),
            "{mangle:.60}: {err}"
        );
        assert!(err.to_string().contains(needle), "{err}");
    }

    // A checkpoint from a different instance shape must not restore.
    let other = instance(5, 6, 1);
    let err = Executor::restore(
        &other,
        &Cluster::uniform(6, 1.0),
        &faults,
        &cfg,
        &solver,
        good,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, ExecError::Checkpoint(_)), "{err}");
}
