//! Flight-recorder transparency and determinism.
//!
//! The two guarantees the `--events-out` stream ships with:
//!
//! * **Schedule transparency** — enabling the recorder changes neither the
//!   schedule nor a byte of the final `ExecReport::to_json`.
//! * **Thread invariance** — the JSONL stream itself is byte-identical at
//!   any solver thread count, because event payloads carry only
//!   simulated-time quantities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dmig_core::parallel::ParallelSolver;
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::MigrationProblem;
use dmig_sim::faults::{CrashFault, FlakySpec};
use dmig_sim::{execute, Cluster, ExecutorConfig, FaultPlan};
use dmig_workloads::random::uniform_multigraph;
use proptest::prelude::*;

/// Event state is process-global; every test body holds this lock.
fn events_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dmig-events-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

/// `n` live disks plus one spare, uniform capacity 2 (mirrors the
/// executor proptests).
fn instance(n: usize, m: usize, seed: u64) -> MigrationProblem {
    let mut b = dmig_graph::GraphBuilder::new();
    for (_, ep) in uniform_multigraph(n, m, seed).edges() {
        b = b.edge(ep.u.index(), ep.v.index());
    }
    let g = b.nodes(n + 1).build();
    MigrationProblem::uniform(g, 2).expect("valid instance")
}

fn plan(n: usize, seed: u64, crash: bool, flaky: bool) -> FaultPlan {
    let mut p = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    if crash {
        p.crashes.push(CrashFault {
            disk: (seed as usize % n).into(),
            time: 0.25 + (seed % 4) as f64 * 0.5,
            replacement: Some(n.into()),
        });
    }
    if flaky {
        p.flaky = Some(FlakySpec { probability: 0.3 });
    }
    p
}

/// Solves and executes; returns the schedule (debug form) and report JSON.
fn run(problem: &MigrationProblem, faults: &FaultPlan, threads: usize) -> (String, String) {
    let solver = ParallelSolver::with_threads(Box::new(AutoSolver), threads);
    let schedule = solver.solve(problem).expect("solvable");
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let config = ExecutorConfig {
        replan: true,
        retry_max: 3,
        ..ExecutorConfig::default()
    };
    let report = execute(problem, &schedule, &cluster, faults, &config, &solver).expect("executes");
    (format!("{:?}", schedule.rounds()), report.to_json())
}

/// Same as [`run`] with the recorder streaming to a fresh sink; returns
/// `(schedule, report, jsonl)`.
fn run_with_events(
    problem: &MigrationProblem,
    faults: &FaultPlan,
    threads: usize,
) -> (String, String, String) {
    let path = temp_path(&format!("t{threads}"));
    dmig_obs::events::reset();
    dmig_obs::events::open_sink(path.to_str().expect("utf-8 temp path")).expect("sink opens");
    dmig_obs::events::set_enabled(true);
    let (sched, rep) = run(problem, faults, threads);
    dmig_obs::events::set_enabled(false);
    dmig_obs::events::close_sink();
    dmig_obs::events::reset();
    let jsonl = std::fs::read_to_string(&path).expect("jsonl readable");
    let _ = std::fs::remove_file(&path);
    (sched, rep, jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Recorder on vs off: identical schedule, byte-identical report.
    /// Recorder on at 1 vs 4 threads: byte-identical JSONL.
    #[test]
    fn events_are_schedule_transparent_and_thread_invariant(
        n in 3usize..6,
        m in 4usize..10,
        gseed in 0u64..500,
        fseed in 0u64..500,
        crash in proptest::bool::ANY,
        flaky in proptest::bool::ANY,
    ) {
        let _guard = events_lock();
        let problem = instance(n, m, gseed);
        let faults = plan(n, fseed, crash, flaky);
        faults.validate(problem.num_disks()).expect("plan valid");

        let (sched_off, rep_off) = run(&problem, &faults, 1);
        let (sched_1, rep_1, jsonl_1) = run_with_events(&problem, &faults, 1);
        let (_sched_4, rep_4, jsonl_4) = run_with_events(&problem, &faults, 4);

        prop_assert_eq!(&sched_off, &sched_1, "recorder changed the schedule");
        prop_assert_eq!(&rep_off, &rep_1, "recorder changed the report");
        prop_assert_eq!(&rep_1, &rep_4, "report diverged across threads");
        prop_assert_eq!(&jsonl_1, &jsonl_4, "JSONL diverged across threads");

        // The stream is non-empty, schema-stamped, line-parseable, and its
        // delivered/lost accounting agrees with the report's fates.
        prop_assert!(!jsonl_1.is_empty());
        let mut delivered = 0usize;
        let mut lost = 0usize;
        for line in jsonl_1.lines() {
            let v = dmig_obs::Value::parse(line).expect("each line is JSON");
            prop_assert_eq!(
                v.get_path("schema").and_then(dmig_obs::Value::as_str),
                Some(dmig_obs::events::EVENTS_SCHEMA)
            );
            match v.get_path("kind").and_then(dmig_obs::Value::as_str) {
                Some("item_delivered") => delivered += 1,
                Some("item_lost") => lost += 1,
                _ => {}
            }
        }
        prop_assert_eq!(delivered + lost, problem.num_items());
    }

    /// The sampling profiler is report-transparent: with the recorder on
    /// and the sampler ticking at an aggressive 1ms interval, both the
    /// schedule and the final report JSON stay byte-identical to the
    /// uninstrumented single-thread run, at 1 and 4 solver threads. The
    /// sampler only reads open spans and writes its own `prof.*`/`mem.*`
    /// keys — nothing the executor consults.
    #[test]
    fn sampler_is_report_transparent(
        n in 3usize..6,
        m in 4usize..10,
        gseed in 0u64..500,
        fseed in 0u64..500,
    ) {
        let _guard = events_lock();
        let problem = instance(n, m, gseed);
        let faults = plan(n, fseed, true, true);
        faults.validate(problem.num_disks()).expect("plan valid");

        let (sched_off, rep_off) = run(&problem, &faults, 1);
        for threads in [1usize, 4] {
            dmig_obs::reset();
            dmig_obs::set_enabled(true);
            let sampler = dmig_obs::sampler::start(std::time::Duration::from_millis(1));
            let (sched, rep) = run(&problem, &faults, threads);
            sampler.stop();
            dmig_obs::set_enabled(false);
            dmig_obs::reset();
            if threads == 1 {
                prop_assert_eq!(&sched_off, &sched, "sampler changed the schedule");
            }
            prop_assert_eq!(
                &rep_off, &rep,
                "sampler changed the report (threads = {})", threads
            );
        }
    }
}
