//! Property tests for the fault-injecting executor.
//!
//! The two load-bearing guarantees:
//!
//! * **Determinism** — one fault plan (seed and all) yields a byte-identical
//!   final report no matter how many solver threads run underneath, and no
//!   matter how often the run is repeated.
//! * **Fault-free equivalence** — an empty plan makes `execute` a drop-in
//!   for `simulate_adaptive`: same times, same volumes, bitwise.
//!
//! Both are checked over randomized instances and fault plans, with full
//! item accounting (`delivered + lost == |items|`) along the way.

use dmig_core::parallel::ParallelSolver;
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::MigrationProblem;
use dmig_sim::engine::simulate_adaptive;
use dmig_sim::faults::{CrashFault, DegradeFault, FlakySpec};
use dmig_sim::{execute, Cluster, ExecutorConfig, FaultPlan};
use dmig_workloads::random::uniform_multigraph;
use proptest::prelude::*;

/// A small random instance that always admits a schedule: `n` live disks
/// plus one idle spare (disk `n`), uniform capacity 2.
fn instance(n: usize, m: usize, seed: u64) -> MigrationProblem {
    let mut b = dmig_graph::GraphBuilder::new();
    for (_, ep) in uniform_multigraph(n, m, seed).edges() {
        b = b.edge(ep.u.index(), ep.v.index());
    }
    // Materialize the spare even if no edge touches it.
    let g = b.nodes(n + 1).build();
    MigrationProblem::uniform(g, 2).expect("valid instance")
}

/// Derives a fault plan from three bytes of proptest entropy: maybe one
/// crash (with the spare as replacement), maybe one degradation with
/// recovery, maybe flaky transfers.
fn plan(n: usize, seed: u64, crash: bool, degrade: bool, flaky: bool) -> FaultPlan {
    let mut p = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    if crash {
        p.crashes.push(CrashFault {
            disk: (seed as usize % n).into(),
            time: 0.25 + (seed % 4) as f64 * 0.5,
            replacement: Some(n.into()),
        });
    }
    if degrade {
        p.degradations.push(DegradeFault {
            disk: ((seed as usize / 3) % n).into(),
            time: 0.5,
            factor: 0.25,
            recover_at: Some(4.0),
        });
    }
    if flaky {
        p.flaky = Some(FlakySpec { probability: 0.3 });
    }
    p
}

fn run(problem: &MigrationProblem, faults: &FaultPlan, threads: usize) -> dmig_sim::ExecReport {
    let solver = ParallelSolver::with_threads(Box::new(AutoSolver), threads);
    let schedule = solver.solve(problem).expect("solvable");
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let config = ExecutorConfig {
        replan: true,
        retry_max: 3,
        ..ExecutorConfig::default()
    };
    execute(problem, &schedule, &cluster, faults, &config, &solver).expect("executes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same plan, any thread count, any repetition: byte-identical report.
    #[test]
    fn report_is_deterministic_across_threads(
        n in 3usize..7,
        m in 4usize..14,
        gseed in 0u64..1000,
        fseed in 0u64..1000,
        crash in proptest::bool::ANY,
        degrade in proptest::bool::ANY,
        flaky in proptest::bool::ANY,
    ) {
        let problem = instance(n, m, gseed);
        let faults = plan(n, fseed, crash, degrade, flaky);
        faults.validate(problem.num_disks()).expect("plan valid");
        let reports: Vec<String> = [1usize, 4, 4]
            .iter()
            .map(|&t| run(&problem, &faults, t).to_json())
            .collect();
        prop_assert_eq!(&reports[0], &reports[1], "threads 1 vs 4 diverged");
        prop_assert_eq!(&reports[1], &reports[2], "repeat run diverged");

        // Full accounting: every item is delivered or lost, never both.
        let r = run(&problem, &faults, 2);
        prop_assert_eq!(r.delivered() + r.lost(), problem.num_items());
        if faults.crashes.iter().all(|c| c.replacement.is_some())
            && faults.flaky.is_none()
        {
            // With a replacement for every crash and no flaky transfers,
            // replanning must save everything.
            prop_assert_eq!(r.lost(), 0, "lost items despite full redundancy");
        }
    }

    /// An empty fault plan makes the executor a bitwise drop-in for the
    /// work-conserving simulator.
    #[test]
    fn zero_faults_matches_adaptive_bitwise(
        n in 3usize..7,
        m in 4usize..14,
        gseed in 0u64..1000,
    ) {
        let problem = instance(n, m, gseed);
        let solver = ParallelSolver::with_threads(Box::new(AutoSolver), 2);
        let schedule = solver.solve(&problem).expect("solvable");
        let cluster = Cluster::uniform(problem.num_disks(), 1.0);
        let adaptive = simulate_adaptive(&problem, &schedule, &cluster).expect("simulates");
        let r = execute(
            &problem,
            &schedule,
            &cluster,
            &FaultPlan::default(),
            &ExecutorConfig::default(),
            &solver,
        )
        .expect("executes");
        prop_assert_eq!(r.sim.total_time.to_bits(), adaptive.total_time.to_bits());
        prop_assert_eq!(r.sim.volume.to_bits(), adaptive.volume.to_bits());
        prop_assert_eq!(r.sim.round_durations.len(), adaptive.round_durations.len());
        for (a, b) in r.sim.round_durations.iter().zip(&adaptive.round_durations) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(r.delivered(), problem.num_items());
        prop_assert_eq!(r.replans, 0);
    }
}
