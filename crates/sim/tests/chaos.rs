//! Availability-model chaos: compile rack/zone failure statistics into
//! fault plans and drive the executor through them, with a mid-run
//! kill/resume for good measure.
//!
//! `dmig-workloads` emits fault-plan *text*; this test closes the loop by
//! feeding that text to the simulator's `parse_checked` (the single
//! validation authority) and executing the result. Sweeping the compile
//! seed sweeps chaos scenarios drawn from one availability model.

use dmig_core::parallel::ParallelSolver;
use dmig_core::solver::{AutoSolver, Solver};
use dmig_core::MigrationProblem;
use dmig_sim::{Cluster, Executor, ExecutorConfig, FaultPlan, StepOutcome};
use dmig_workloads::availability::AvailabilityModel;
use dmig_workloads::random::uniform_multigraph;

/// Six live disks (0..6) under the model, two spares (6..8), capacity 2.
const MODEL: &str = "\
horizon = 6.0

[[domain]]
name = \"rack-a\"
disks = \"0-2\"
mode = \"degrade\"
mtbf = 2.0
mttr = 1.0
factor = 0.3
correlated = true

[[domain]]
name = \"aging\"
disks = \"3,4\"
mode = \"crash\"
mtbf = 3.0

[spares]
disks = \"6-7\"

[flaky]
probability = 0.05
";

fn instance() -> MigrationProblem {
    let mut b = dmig_graph::GraphBuilder::new();
    for (_, ep) in uniform_multigraph(6, 18, 9).edges() {
        b = b.edge(ep.u.index(), ep.v.index());
    }
    let g = b.nodes(8).build();
    MigrationProblem::uniform(g, 2).expect("valid instance")
}

#[test]
fn compiled_chaos_plans_load_and_execute() {
    let model = AvailabilityModel::parse(MODEL).unwrap();
    model.validate().unwrap();
    let problem = instance();
    assert!(model.max_disk().unwrap() < problem.num_disks());
    let cluster = Cluster::uniform(problem.num_disks(), 1.0);
    let solver = ParallelSolver::with_threads(Box::new(AutoSolver), 2);
    let config = ExecutorConfig {
        replan: true,
        retry_max: 3,
        ..ExecutorConfig::default()
    };
    let mut scenarios_with_faults = 0;
    for seed in 0..12u64 {
        let text = model.compile(seed);
        // The simulator's loader is the validation authority for the
        // generated text — including disk references vs the instance.
        let faults = FaultPlan::parse_checked(&text, problem.num_disks())
            .unwrap_or_else(|e| panic!("seed {seed}: compiled plan rejected: {e}"));
        if !faults.is_empty() {
            scenarios_with_faults += 1;
        }
        let schedule = solver.solve(&problem).unwrap();
        let mut exec =
            Executor::new(&problem, &schedule, &cluster, &faults, &config, &solver).unwrap();
        // Run the first half, get killed, resume from the checkpoint.
        let mut checkpoint = exec.checkpoint_json();
        for _ in 0..3 {
            if exec.step().unwrap() == StepOutcome::Finished {
                break;
            }
            checkpoint = exec.checkpoint_json();
        }
        let mut revived =
            Executor::restore(&problem, &cluster, &faults, &config, &solver, &checkpoint).unwrap();
        while revived.step().unwrap() == StepOutcome::Running {}
        let resumed = revived.into_report();
        // Reference: the same scenario uninterrupted.
        let reference = dmig_sim::execute(
            &problem,
            &solver.solve(&problem).unwrap(),
            &cluster,
            &faults,
            &config,
            &solver,
        )
        .unwrap();
        assert_eq!(
            resumed.to_json(),
            reference.to_json(),
            "seed {seed}: resumed chaos run diverged"
        );
        assert_eq!(resumed.delivered() + resumed.lost(), problem.num_items());
    }
    // The statistics make quiet scenarios possible but a silent sweep
    // means the sampler broke.
    assert!(
        scenarios_with_faults >= 8,
        "only {scenarios_with_faults}/12 scenarios injected faults"
    );
}

#[test]
fn oversized_model_is_rejected_against_the_instance() {
    let model = AvailabilityModel::parse(
        "horizon = 4.0\n[[domain]]\nname = \"big\"\ndisks = \"10-12\"\nmode = \"crash\"\nmtbf = 1.0\n",
    )
    .unwrap();
    let problem = instance();
    // Find a seed whose compiled plan actually injects a crash.
    let text = (0..64u64)
        .map(|s| model.compile(s))
        .find(|t| t.contains("[[crash]]"))
        .expect("some seed fires within the horizon");
    let err = FaultPlan::parse_checked(&text, problem.num_disks()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of range"), "{msg}");
    assert!(msg.starts_with("line "), "line-numbered: {msg}");
}
