//! Closed-form scenario tests for the simulation engines.

use dmig_core::solver::{AutoSolver, HomogeneousSolver, Solver};
use dmig_core::{Capacities, MigrationProblem, MigrationSchedule};
use dmig_graph::builder::{complete_multigraph, star_multigraph};
use dmig_graph::GraphBuilder;
use dmig_sim::events::{simulate_with_events, BandwidthEvent};
use dmig_sim::{
    engine::{simulate_adaptive, simulate_rounds},
    Cluster,
};

/// Star with hub capacity k: every round k transfers share the hub's
/// bandwidth: round time = k / B_hub (leaves are not binding at B = 1).
#[test]
fn star_round_time_is_hub_concurrency() {
    let leaves = 8;
    let g = star_multigraph(leaves, 1);
    let mut caps = vec![4u32; leaves + 1];
    caps[0] = 4;
    let p = MigrationProblem::new(g, Capacities::from_vec(caps)).unwrap();
    let s = AutoSolver.solve(&p).unwrap();
    s.validate(&p).unwrap();
    assert_eq!(s.makespan(), 2); // ⌈8/4⌉
    let r = simulate_rounds(&p, &s, &Cluster::uniform(leaves + 1, 1.0)).unwrap();
    // Each round: 4 transfers at hub rate 1/4 → 4 time units; 2 rounds.
    assert!((r.total_time - 8.0).abs() < 1e-9);
    // Work-conserving cannot help: all transfers in a round are symmetric.
    let a = simulate_adaptive(&p, &s, &Cluster::uniform(leaves + 1, 1.0)).unwrap();
    assert!((a.total_time - 8.0).abs() < 1e-9);
}

/// Fig. 2 with non-unit bandwidth scales inversely.
#[test]
fn bandwidth_scales_time() {
    let p = MigrationProblem::uniform(complete_multigraph(3, 4), 2).unwrap();
    let s = AutoSolver.solve(&p).unwrap();
    let slow = simulate_rounds(&p, &s, &Cluster::uniform(3, 0.5)).unwrap();
    let fast = simulate_rounds(&p, &s, &Cluster::uniform(3, 2.0)).unwrap();
    assert!((slow.total_time - 4.0 * fast.total_time).abs() < 1e-9);
}

/// Asymmetric bandwidths: the transfer runs at the slower side's share.
#[test]
fn min_rate_semantics() {
    let g = GraphBuilder::new().edge(0, 1).edge(0, 2).build();
    let p = MigrationProblem::uniform(g, 2).unwrap();
    let s = MigrationSchedule::from_rounds(vec![vec![0.into(), 1.into()]]);
    s.validate(&p).unwrap();
    // Disk 0 splits bandwidth 2.0 across both transfers (share 1.0);
    // disks 1 (B=0.25) and 2 (B=1.0) are sole users of their side.
    let cluster = Cluster::from_bandwidths(vec![2.0, 0.25, 1.0]);
    let r = simulate_rounds(&p, &s, &cluster).unwrap();
    // Transfer to disk 1 runs at 0.25 → 4 time units; round time 4.
    assert!((r.total_time - 4.0).abs() < 1e-9);
    // Work-conserving: the fast transfer finishes at t=1; disk 0's share
    // then rises to 2.0, but the bottleneck 0.25 stays → still 4.0.
    let a = simulate_adaptive(&p, &s, &cluster).unwrap();
    assert!((a.total_time - 4.0).abs() < 1e-9);
}

/// Stacked slowdown events: rates integrate piecewise.
#[test]
fn stacked_events_integrate() {
    let g = GraphBuilder::new().edge(0, 1).build();
    let p = MigrationProblem::uniform(g, 1).unwrap();
    let s = HomogeneousSolver.solve(&p).unwrap();
    let cluster = Cluster::uniform(2, 1.0);
    // Rate = min of both endpoint shares; disk 1 stays at 1.0 throughout.
    // [0, 0.25]: rate 1 → 0.25 moved. [0.25, 0.75]: rate 0.5 → 0.25 moved.
    // After the "recovery" to 4.0, disk 1 still caps the rate at 1.0 →
    // the remaining 0.5 volume takes 0.5. Total = 1.25.
    let events = [
        BandwidthEvent {
            time: 0.25,
            disk: 0.into(),
            bandwidth: 0.5,
        },
        BandwidthEvent {
            time: 0.75,
            disk: 0.into(),
            bandwidth: 4.0,
        },
    ];
    let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
    assert!((r.total_time - 1.25).abs() < 1e-9, "got {}", r.total_time);
}

/// Events on disks not participating in the current round change nothing.
#[test]
fn irrelevant_events_are_harmless() {
    let g = GraphBuilder::new().nodes(4).edge(0, 1).build();
    let p = MigrationProblem::uniform(g, 1).unwrap();
    let s = HomogeneousSolver.solve(&p).unwrap();
    let cluster = Cluster::uniform(4, 1.0);
    let events = [BandwidthEvent {
        time: 0.5,
        disk: 3.into(),
        bandwidth: 0.01,
    }];
    let r = simulate_with_events(&p, &s, &cluster, &events).unwrap();
    assert!((r.total_time - 1.0).abs() < 1e-9);
}

/// Busy time never exceeds total time, and utilization is within [0, 1].
#[test]
fn metric_sanity_on_mixed_scenarios() {
    let p = MigrationProblem::uniform(complete_multigraph(5, 3), 2).unwrap();
    let s = AutoSolver.solve(&p).unwrap();
    let cluster = Cluster::from_bandwidths(vec![0.5, 1.0, 2.0, 1.5, 0.75]);
    for r in [
        simulate_rounds(&p, &s, &cluster).unwrap(),
        simulate_adaptive(&p, &s, &cluster).unwrap(),
    ] {
        for &busy in &r.disk_busy {
            assert!(busy <= r.total_time + 1e-9);
        }
        let u = r.mean_utilization();
        assert!((0.0..=1.0 + 1e-9).contains(&u));
        assert!(r.throughput() > 0.0);
        assert_eq!(
            r.timeline_csv().lines().count(),
            r.num_rounds() + r.disk_busy.len() + 1
        );
    }
}
