//! Shared infrastructure for the experiment harnesses (`src/bin/e*.rs`)
//! and Criterion benchmarks reproducing the ICDCS 2011 paper's figures and
//! theorem-level claims. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod seed_baseline;
pub mod table;

/// Milliseconds elapsed while running `f`, along with its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}
