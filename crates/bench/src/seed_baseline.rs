//! Frozen copies of the seed-revision kernels, for honest before/after
//! timing in `perf_report`.
//!
//! The optimized crates rebuild their flow networks in place over flat CSR
//! arrays; the seed revision allocated a fresh network per extraction with
//! one `Vec` of arc ids per vertex. The seed crates no longer build as-is
//! (their dependencies pre-date the vendored workspace), so the relevant
//! kernels are copied here verbatim from the seed commit — measurement
//! code only, never used by the solvers.

use dmig_core::{MigrationProblem, MigrationSchedule, SolveError};
use dmig_graph::{euler::euler_orientation, EdgeId, NodeId};

#[derive(Clone, Debug)]
struct Arc {
    to: usize,
    cap: i64,
}

/// The seed revision's Dinic network: boxed adjacency lists, a fresh
/// allocation per instance, per-`max_flow` BFS/DFS scratch allocations.
#[derive(Clone, Debug, Default)]
pub struct SeedFlowNetwork {
    arcs: Vec<Arc>,
    original_cap: Vec<i64>,
    adjacency: Vec<Vec<usize>>,
}

impl SeedFlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        SeedFlowNetwork {
            arcs: Vec::new(),
            original_cap: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds a directed edge and returns its handle index.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range endpoint or negative capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> usize {
        let n = self.adjacency.len();
        assert!(from < n && to < n, "flow edge endpoint out of range");
        assert!(cap >= 0, "flow capacity must be non-negative");
        let id = self.arcs.len();
        self.arcs.push(Arc { to, cap });
        self.arcs.push(Arc { to: from, cap: 0 });
        self.adjacency[from].push(id);
        self.adjacency[to].push(id + 1);
        self.original_cap.push(cap);
        id / 2
    }

    /// Flow carried by edge `handle` after [`SeedFlowNetwork::max_flow`].
    #[must_use]
    pub fn flow(&self, handle: usize) -> i64 {
        self.original_cap[handle] - self.arcs[handle * 2].cap
    }

    /// Dinic's algorithm, exactly as in the seed revision.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.adjacency.len();
        assert!(s < n && t < n, "source/sink out of range");
        if s == t {
            return 0;
        }
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &a in &self.adjacency[v] {
                    let arc = &self.arcs[a];
                    if arc.cap > 0 && level[arc.to] < 0 {
                        level[arc.to] = level[v] + 1;
                        queue.push_back(arc.to);
                    }
                }
            }
            if level[t] < 0 {
                return total;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, v: usize, t: usize, limit: i64, level: &[i32], iter: &mut [usize]) -> i64 {
        if v == t {
            return limit;
        }
        while iter[v] < self.adjacency[v].len() {
            let a = self.adjacency[v][iter[v]];
            let (to, cap) = {
                let arc = &self.arcs[a];
                (arc.to, arc.cap)
            };
            if cap > 0 && level[to] == level[v] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.arcs[a].cap -= pushed;
                    self.arcs[a ^ 1].cap += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }
}

/// The seed revision's Fig. 3 extraction: one fresh [`SeedFlowNetwork`]
/// per call.
///
/// # Panics
///
/// Panics on out-of-range arcs or short quota slices, and on an infeasible
/// instance (the even pipeline never produces one).
#[must_use]
pub fn seed_exact_degree_subgraph(
    num_nodes: usize,
    arcs: &[(usize, usize)],
    out_quota: &[u32],
    in_quota: &[u32],
) -> Vec<bool> {
    let s = 0usize;
    let t = 1usize;
    let out_base = 2usize;
    let in_base = 2 + num_nodes;
    let mut net = SeedFlowNetwork::new(2 + 2 * num_nodes);
    let mut required = 0i64;
    for v in 0..num_nodes {
        net.add_edge(s, out_base + v, i64::from(out_quota[v]));
        net.add_edge(in_base + v, t, i64::from(in_quota[v]));
        required += i64::from(out_quota[v]);
    }
    let handles: Vec<usize> = arcs
        .iter()
        .map(|&(u, v)| net.add_edge(out_base + u, in_base + v, 1))
        .collect();
    let achieved = net.max_flow(s, t);
    assert_eq!(
        achieved, required,
        "even pipeline instances are always feasible"
    );
    handles.into_iter().map(|h| net.flow(h) == 1).collect()
}

/// The seed revision's even-capacity solver: same algorithm as
/// `dmig_core::even::solve_even`, but rebuilding the arc list and the
/// Fig. 3 network from scratch every round, exactly as the seed did.
///
/// # Errors
///
/// Same contract as `dmig_core::even::solve_even`.
pub fn solve_even_seed(problem: &MigrationProblem) -> Result<MigrationSchedule, SolveError> {
    let g = problem.graph();
    let caps = problem.capacities();
    for v in g.nodes() {
        let c = caps.get(v);
        if g.degree(v) > 0 && c % 2 != 0 {
            return Err(SolveError::OddCapacity {
                node: v,
                capacity: c,
            });
        }
    }
    let delta_prime = problem.delta_prime();
    if delta_prime == 0 {
        return Ok(MigrationSchedule::default());
    }

    let mut padded = g.clone();
    let target = |v: NodeId| caps.get(v) as usize * delta_prime;
    let mut deficient: Vec<NodeId> = Vec::new();
    for v in g.nodes() {
        if caps.get(v) == 0 || g.degree(v) == 0 {
            continue;
        }
        let t = target(v);
        while padded.degree(v) + 2 <= t {
            padded.add_edge(v, v);
        }
        if padded.degree(v) < t {
            deficient.push(v);
        }
    }
    for pair in deficient.chunks(2) {
        padded.add_edge(pair[0], pair[1]);
    }

    let orientation = euler_orientation(&padded)
        .map_err(|e| SolveError::Internal(format!("euler orientation failed: {e}")))?;
    let n = g.num_nodes();
    let original_edges = g.num_edges();
    let mut remaining: Vec<(usize, usize, EdgeId)> = orientation
        .iter()
        .map(|(e, t, h)| (t.index(), h.index(), e))
        .collect();

    let half_quota: Vec<u32> = (0..n)
        .map(|v| {
            let v = NodeId::new(v);
            if g.degree(v) == 0 {
                0
            } else {
                caps.get(v) / 2
            }
        })
        .collect();
    let mut rounds: Vec<Vec<EdgeId>> = Vec::with_capacity(delta_prime);
    for _ in 0..delta_prime {
        let arcs: Vec<(usize, usize)> = remaining.iter().map(|&(t, h, _)| (t, h)).collect();
        let selection = seed_exact_degree_subgraph(n, &arcs, &half_quota, &half_quota);
        let mut round = Vec::new();
        let mut rest = Vec::with_capacity(remaining.len());
        for (pos, &(t, h, e)) in remaining.iter().enumerate() {
            if selection[pos] {
                if e.index() < original_edges {
                    round.push(e);
                }
            } else {
                rest.push((t, h, e));
            }
        }
        remaining = rest;
        rounds.push(round);
    }
    if !remaining.is_empty() {
        return Err(SolveError::Internal(format!(
            "{} arcs left unscheduled after Δ' rounds",
            remaining.len()
        )));
    }

    let mut schedule = MigrationSchedule::from_rounds(rounds);
    schedule.trim_empty_rounds();
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn seed_dinic_agrees_with_optimized() {
        let mut seed = SeedFlowNetwork::new(4);
        let mut opt = dmig_flow::FlowNetwork::new(4);
        for &(u, v, c) in &[
            (0usize, 1usize, 3i64),
            (0, 2, 2),
            (1, 3, 2),
            (2, 3, 3),
            (1, 2, 5),
        ] {
            seed.add_edge(u, v, c);
            opt.add_edge(u, v, c);
        }
        assert_eq!(seed.max_flow(0, 3), opt.max_flow(0, 3));
    }

    #[test]
    fn seed_solver_matches_optimized_solver() {
        let p = corpus::random_case(20, 80, "even", 0xBA5E).problem;
        let seed = solve_even_seed(&p).unwrap();
        let opt = dmig_core::even::solve_even(&p).unwrap();
        seed.validate(&p).unwrap();
        opt.validate(&p).unwrap();
        assert_eq!(seed.makespan(), p.delta_prime());
        assert_eq!(opt.makespan(), p.delta_prime());
    }
}
