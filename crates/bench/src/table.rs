//! Minimal fixed-width table rendering for experiment output.
//!
//! Experiments print plain-text tables (captured into `EXPERIMENTS.md`);
//! this keeps the format consistent without pulling in a dependency.

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use dmig_bench::table::Table;
/// let mut t = Table::new(&["M", "rounds"]);
/// t.row(&["1", "3"]);
/// let text = t.render();
/// assert!(text.contains("rounds"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with a separator line under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                line.push_str(&" ".repeat(pad));
                line.push_str(&cells[i]);
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxx", "1"]);
        t.row_owned(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
