//! E8 — the two lower bounds of §III: `Δ'` vs `Γ'` and their tightness.
//!
//! Findings this harness demonstrates (and `EXPERIMENTS.md` records):
//!
//! 1. `Γ' ≤ Δ'` on *every* instance — the paper states `LB1 ≥ LB2` for
//!    even capacities; a mediant-inequality argument makes it
//!    unconditional (`2|E(S)| = Σ_S d_v(S) ≤ Σ_S d_v` and
//!    `Σd/Σc ≤ max d/c`).
//! 2. The exact flow-based `Γ'` matches the `O(2^n)` brute force.
//! 3. `Δ'` is usually tight: the general solver certifies `OPT = Δ'` on
//!    most random instances; the homogeneous triangle family (`c = 1`,
//!    odd cycles) shows the bounds can be off by one factor ~1.5 of OPT.

use dmig_bench::table::Table;
use dmig_core::{bounds, general::solve_general, MigrationProblem};
use dmig_workloads::{capacities, random};

fn main() {
    println!("E8: lower bounds Δ' and Γ' — dominance and tightness\n");
    let mut t = Table::new(&["case", "Δ'", "Γ'", "Γ''", "achieved", "gap(sharp)"]);

    // Structured + random cases; brute-force cross-check on the small ones.
    let mut cases: Vec<(String, MigrationProblem)> = vec![
        (
            "K3 m=1 c=1 (odd cycle)".into(),
            MigrationProblem::uniform(dmig_graph::builder::complete_multigraph(3, 1), 1)
                .expect("valid"),
        ),
        (
            "K5 m=2 c=3".into(),
            MigrationProblem::uniform(dmig_graph::builder::complete_multigraph(5, 2), 3)
                .expect("valid"),
        ),
        (
            "C7 m=3 c=2".into(),
            MigrationProblem::uniform(dmig_graph::builder::cycle_multigraph(7, 3), 2)
                .expect("valid"),
        ),
    ];
    for seed in 0..6u64 {
        let n = 8 + 2 * seed as usize;
        let m = 30 * (seed as usize + 1);
        let g = random::uniform_multigraph(n, m, seed);
        let caps = capacities::mixed_parity(n, 1, 5, seed);
        cases.push((
            format!("random n={n} m={m}"),
            MigrationProblem::new(g, caps).expect("valid"),
        ));
    }

    for (label, p) in &cases {
        let d = bounds::lb1(p);
        let gamma = bounds::lb2(p);
        let gamma2 = bounds::lb3(p);
        if p.num_disks() <= 18 {
            assert_eq!(
                gamma,
                bounds::lb2_bruteforce(p),
                "flow Γ' must match brute force"
            );
        }
        assert!(gamma <= d, "Γ' must never exceed Δ'");
        let report = solve_general(p);
        report.schedule.validate(p).expect("feasible");
        let achieved = report.schedule.makespan();
        let sharp = bounds::lower_bound_sharp(p);
        assert!(achieved >= sharp, "Γ'' must stay a valid lower bound");
        t.row_owned(vec![
            label.clone(),
            d.to_string(),
            gamma.to_string(),
            gamma2.to_string(),
            achieved.to_string(),
            (achieved - sharp).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("findings: (1) Γ' ≤ Δ' unconditionally (mediant inequality) — the paper's Γ'");
    println!("is an analysis tool, not a stronger bound; (2) the integral sharpening");
    println!("Γ'' = max ⌈E(S)/⌊Σc/2⌋⌉ (beyond the paper) closes the odd-structure gap:");
    println!("on K3/C_odd at c=1 it certifies OPT = 3 where max(Δ',Γ') says 2");
}
