//! E13 — secondary objectives from the related work (§II): total
//! completion time (Kim, J. Alg. '05; Gandhi et al., ICALP '04) and
//! schedule post-compaction.
//!
//! For a fixed round partition, running larger rounds first provably
//! minimizes the sum of item completion times without touching the
//! makespan; and greedy baselines can sometimes be compacted. This
//! harness quantifies both effects on the standard face-off suite.

use dmig_bench::{corpus::faceoff_suite, table::Table};
use dmig_core::solver::{GeneralSolver, GreedySolver, Solver};

fn main() {
    println!("E13: total completion time and round compaction\n");
    let mut t = Table::new(&[
        "case",
        "rounds",
        "Σ completion",
        "Σ after reorder",
        "gain %",
        "Σ disk completion",
        "greedy rounds",
        "after compaction",
    ]);
    for case in faceoff_suite(0x13) {
        let p = &case.problem;
        let mut s = GeneralSolver::default().solve(p).expect("infallible");
        s.validate(p).expect("feasible");
        let before = s.total_completion_time();
        let makespan = s.makespan();
        s.order_rounds_for_completion();
        s.validate(p).expect("reordering preserves feasibility");
        assert_eq!(s.makespan(), makespan);
        let after = s.total_completion_time();
        assert!(after <= before);

        let mut greedy = GreedySolver.solve(p).expect("infallible");
        let greedy_before = greedy.makespan();
        greedy.compact_rounds(p);
        greedy
            .validate(p)
            .expect("compaction preserves feasibility");
        assert!(greedy.makespan() <= greedy_before);

        t.row_owned(vec![
            case.label.clone(),
            makespan.to_string(),
            before.to_string(),
            after.to_string(),
            format!("{:.1}", 100.0 * (1.0 - after as f64 / before as f64)),
            s.total_disk_completion_time(p).to_string(),
            greedy_before.to_string(),
            greedy.makespan().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("reading: reordering is free makespan-neutral latency; compaction rarely");
    println!("helps greedy here because first-fit rounds are already maximal");
}
