//! Robustness fuzzer for the general solver: 200 000 seeded random
//! instances checked for (a) per-instance wall-clock blowups, (b) the
//! Saia-dominance-within-one-round property, and (c) the 1.5 envelope.
//!
//! This harness caught two real defects during development: unbounded
//! walk×shift work on fat triangles (fixed by the per-edge work budget)
//! and the false assumption that the general solver strictly dominates
//! Saia (it can trail by one round on adversarial multiplicities).

use dmig_core::{general::solve_general, saia::solve_saia, Capacities, MigrationProblem};
use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    for seed in 0..200_000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..10);
        let m = rng.gen_range(0..60);
        let mut g = Multigraph::with_nodes(n);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u.into(), v.into());
            }
        }
        let caps: Capacities = (0..n).map(|_| rng.gen_range(1..6u32)).collect();
        let p = MigrationProblem::new(g, caps).unwrap();
        let t = std::time::Instant::now();
        let r = solve_general(&p);
        let s = solve_saia(&p);
        let el = t.elapsed();
        if el.as_millis() > 200 {
            println!(
                "SLOW seed={} n={} m={} elapsed={:?}",
                seed,
                n,
                p.num_items(),
                el
            );
        }
        if r.schedule.makespan() > s.schedule.makespan() + 1 {
            println!(
                "ORDER2 seed={} general={} saia={}",
                seed,
                r.schedule.makespan(),
                s.schedule.makespan()
            );
        }
        let lb1 = p.delta_prime();
        let envelope = (3 * lb1).div_ceil(2) + 1;
        if r.schedule.makespan() > envelope {
            println!(
                "ENVELOPE seed={} general={} envelope={}",
                seed,
                r.schedule.makespan(),
                envelope
            );
        }
        if seed % 50000 == 0 {
            eprintln!("... {}", seed);
        }
    }
    println!("done");
}
