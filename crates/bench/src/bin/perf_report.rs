//! Emits `BENCH_perf.json`: wall-clock timings of the optimized kernels
//! against the recorded seed baseline, the component-parallel solve
//! against whole-graph solving, the intra-component thread-scaling
//! series on a single giant component, the chunked Euler orientation
//! against the serial walk on a 1e6-edge even multigraph, and the sharded
//! solve pipeline (graph-cut cells + boundary reconciliation) against the
//! unsharded solve on a clustered giant.
//!
//! Run with `cargo run --release -p dmig-bench --bin perf_report`.
//! Pass `--smoke` to shrink the instance sizes for a CI sanity run (the
//! JSON is still written, with `"smoke": true`). Pass `--out PATH` to
//! redirect the JSON file (default `BENCH_perf.json` in the working
//! directory); the JSON is always echoed to stdout as well.
//!
//! After the measurements, every run:
//!
//! 1. appends exactly one entry to the JSONL history (`--history PATH`,
//!    default `BENCH_history.jsonl`) with run metadata — git revision,
//!    thread counts, config fingerprint, wall time — plus the flattened
//!    metrics, and
//! 2. evaluates the declarative perf gate (`--rules PATH`, default
//!    `ci-rules.toml`, falling back to the copy at the repo root). The
//!    closed-form counter cross-checks that used to live here as
//!    hardcoded asserts (flow solves / Euler splits per quota level,
//!    Theorem 4.1) are now rules in that file; a failed rule exits
//!    nonzero *after* the JSON and history are written, so regression
//!    artifacts survive for debugging.
//!
//! Honesty notes, recorded in the JSON itself:
//!
//! * `hardware_threads` is what `available_parallelism()` reports — once
//!   at the top level and again inside each measurement section, so a
//!   section copied out of context still says what machine produced it.
//!   On a host with fewer hardware threads than a measurement needs, the
//!   corresponding speedup is recorded as `null` rather than a misleading
//!   sub-1.0 number (the timings still measure pool overhead and remain);
//!   the gate's `when` guards then skip those rules instead of failing
//!   them. The component *split* itself still pays off on any host
//!   because Dinic's cost is superlinear in the network size, so solving
//!   8 small networks beats one large one even sequentially.
//! * The seed baseline is a verbatim copy of the seed kernels (the seed
//!   tree no longer builds offline), driven by today's instance
//!   generators.

use std::fmt::Write as _;
use std::time::Instant;

use dmig_bench::corpus::{
    clustered_giant, giant_component_odd_delta, giant_even_multigraph, multi_component_even,
};
use dmig_bench::seed_baseline::solve_even_seed;
use dmig_core::even::solve_even;
use dmig_core::parallel::{default_threads, solve_split};
use dmig_core::shard::{solve_sharded, ShardConfig};
use dmig_core::solver::Solver as _;
use dmig_core::MigrationProblem;
use dmig_flow::{quota_euler_splits, quota_flow_solves};
use dmig_graph::euler::{euler_orientation, euler_orientation_parallel, OrientScratch};
use dmig_workloads::{capacities, random};

/// Median-of-`reps` wall time in milliseconds.
fn time_ms<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let sink = f();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert!(sink != u64::MAX, "keep the result alive");
            elapsed
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn even_instance(n: usize, seed: u64) -> MigrationProblem {
    let g = random::uniform_multigraph(n, 4 * n, seed);
    let caps = capacities::random_even(n, 3, seed ^ 1);
    MigrationProblem::new(g, caps).expect("generated instance is valid")
}

/// Writes a section's `"hardware_threads"` line. The value is resolved
/// once in `main`; every section repeats it so a section copied out of
/// context still says what machine produced it.
fn hardware_threads_line(json: &mut String, threads: usize) {
    let _ = writeln!(json, "    \"hardware_threads\": {threads},");
}

/// Writes a `"key": value,` line where the value is `base / other` when
/// the host could measure it and `null` otherwise (fewer hardware threads
/// than the measurement needs).
fn speedup_line(json: &mut String, key: &str, base: f64, other: f64, measurable: bool, last: bool) {
    let comma = if last { "" } else { "," };
    if measurable {
        let _ = writeln!(json, "    \"{key}\": {:.2}{comma}", base / other.max(1e-6));
    } else {
        let _ = writeln!(json, "    \"{key}\": null{comma}");
    }
}

/// Writes a `"key": value,` line with measured milliseconds, or `null`
/// when the host skipped the measurement (fewer hardware threads than the
/// timing needs — a multi-thread number taken on one core reads as a
/// regression when it only measures oversubscription).
fn opt_ms_line(json: &mut String, key: &str, ms: Option<f64>, last: bool) {
    let comma = if last { "" } else { "," };
    match ms {
        Some(v) => {
            let _ = writeln!(json, "    \"{key}\": {v:.3}{comma}");
        }
        None => {
            let _ = writeln!(json, "    \"{key}\": null{comma}");
        }
    }
}

/// Writes the section's `"skipped_reason"` line: `null` when the host
/// has at least `needed` hardware threads, otherwise a human-readable
/// explanation of which timings were withheld and why.
fn skipped_reason_line(json: &mut String, threads: usize, needed: usize, what: &str, last: bool) {
    let comma = if last { "" } else { "," };
    if threads >= needed {
        let _ = writeln!(json, "    \"skipped_reason\": null{comma}");
    } else {
        let _ = writeln!(
            json,
            "    \"skipped_reason\": \"host has {threads} hardware thread(s), fewer than \
             {needed}: {what} skipped\"{comma}"
        );
    }
}

fn flag<'a>(args: &'a [String], name: &str, default: &'a str) -> &'a str {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map_or(default, String::as_str)
}

fn main() {
    let run_started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag(&args, "--out", "BENCH_perf.json");
    let history_path = flag(&args, "--history", "BENCH_history.jsonl");
    let rules_path = flag(&args, "--rules", "ci-rules.toml");

    let sizes: &[usize] = if smoke { &[100] } else { &[100, 1_000, 10_000] };
    let reps = if smoke { 1 } else { 5 };
    let threads = default_threads();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"hardware_threads\": {threads},");

    // Part 1: flat-kernel solve_even vs the seed kernels, n ∈ sizes.
    let _ = writeln!(json, "  \"solve_even\": [");
    for (i, &n) in sizes.iter().enumerate() {
        let problem = even_instance(n, 0xD16);
        let seed_ms = time_ms(reps, || {
            solve_even_seed(&problem)
                .expect("even instance solves")
                .makespan() as u64
        });
        let opt_ms = time_ms(reps, || {
            solve_even(&problem)
                .expect("even instance solves")
                .makespan() as u64
        });
        let comma = if i + 1 == sizes.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"seed_ms\": {seed_ms:.3}, \"optimized_ms\": {opt_ms:.3}, \
             \"speedup\": {:.2}}}{comma}",
            seed_ms / opt_ms.max(1e-6)
        );
    }
    let _ = writeln!(json, "  ],");

    // Part 2: component-parallel vs whole-graph on a multi-component
    // instance (8 components, 10k nodes total in the full run).
    let (components, nodes_per, extra) = if smoke {
        (8, 25, 50)
    } else {
        (8, 1_250, 5_000)
    };
    let problem = multi_component_even(components, nodes_per, extra, 0xC0);
    let whole_ms = time_ms(reps, || {
        solve_even(&problem)
            .expect("even instance solves")
            .makespan() as u64
    });
    let split1_ms = time_ms(reps, || {
        solve_split(&problem, 1, solve_even)
            .expect("even instance solves")
            .makespan() as u64
    });
    // With one hardware thread `split_n_threads_ms` would duplicate the
    // 1-thread number under a misleading name; withhold it instead.
    let splitn_ms = (threads >= 2).then(|| {
        time_ms(reps, || {
            solve_split(&problem, threads, solve_even)
                .expect("even instance solves")
                .makespan() as u64
        })
    });
    let _ = writeln!(json, "  \"component_parallel\": {{");
    let _ = writeln!(json, "    \"components\": {components},");
    let _ = writeln!(json, "    \"nodes\": {},", problem.num_disks());
    let _ = writeln!(json, "    \"items\": {},", problem.num_items());
    hardware_threads_line(&mut json, threads);
    let _ = writeln!(json, "    \"whole_graph_ms\": {whole_ms:.3},");
    // `split_n_threads_ms` + an explicit `split_threads` field: the old
    // interpolated key (`split_{threads}_threads_ms`) collided with
    // `split_1_thread_ms` on single-core hosts and made the schema
    // depend on the machine.
    let _ = writeln!(json, "    \"split_1_thread_ms\": {split1_ms:.3},");
    let _ = writeln!(json, "    \"split_threads\": {threads},");
    opt_ms_line(&mut json, "split_n_threads_ms", splitn_ms, false);
    // Split-vs-whole is algorithmic (fewer, smaller Dinic networks), real
    // at any core count — on a 1-thread host the split still runs, just
    // sequentially. Thread speedup needs actual parallel hardware.
    let _ = writeln!(
        json,
        "    \"split_speedup_vs_whole\": {:.2},",
        whole_ms / splitn_ms.unwrap_or(split1_ms).max(1e-6)
    );
    speedup_line(
        &mut json,
        "thread_speedup",
        split1_ms,
        splitn_ms.unwrap_or(f64::NAN),
        threads >= 2,
        false,
    );
    skipped_reason_line(
        &mut json,
        threads,
        2,
        "multi-thread component-split timings",
        true,
    );
    let _ = writeln!(json, "  }},");

    // Part 2b: intra-component thread scaling. A single giant component
    // with odd Δ' — component splitting is useless here, so every spare
    // thread lands on the quota recursion's Euler-split fan-out. Odd Δ'
    // guarantees the recursion reaches flow solves, so the greedy warm
    // start must register hits.
    // Full-size even under --smoke (reps drop to 1 instead): a smaller
    // instance would make the CI speedup gate meaningless.
    let problem = giant_component_odd_delta(10_000, 40_000, 0xA1);
    let intra_delta = problem.delta_prime();

    // Determinism spot-check before timing: byte-identical schedules at
    // every thread count (the proptest suite covers small instances; this
    // covers the big one the timings are taken on).
    let baseline = solve_split(&problem, 1, solve_even).expect("even instance solves");
    for t in [2usize, 4] {
        let s = solve_split(&problem, t, solve_even).expect("even instance solves");
        assert_eq!(baseline, s, "schedule must not depend on thread count");
    }

    // Timings at t threads are taken only when the host actually has t
    // hardware threads: an oversubscribed number would read as a thread-
    // scaling regression when it measures nothing but context switching.
    let mut intra_ms: [Option<f64>; 3] = [None; 3];
    for (slot, t) in [1usize, 2, 4].into_iter().enumerate() {
        if threads >= t {
            intra_ms[slot] = Some(time_ms(reps, || {
                solve_split(&problem, t, solve_even)
                    .expect("even instance solves")
                    .makespan() as u64
            }));
        }
    }

    // Instrumented pass: warm-start and pool counters for this instance.
    dmig_obs::reset();
    dmig_obs::set_enabled(true);
    let _ = solve_split(&problem, 4, solve_even).expect("even instance solves");
    dmig_obs::set_enabled(false);
    let intra_snap = dmig_obs::snapshot();
    dmig_obs::reset();
    let intra_counter = |key: &str| intra_snap.counters.get(key).copied().unwrap_or(0);
    // Warm-start and closed-form expectations for this section are now
    // gate rules (ci-rules.toml), not asserts: the run always produces
    // its artifacts, and the gate decides afterwards.
    let intra_warm = intra_counter(dmig_obs::keys::WARM_START_HITS);
    let intra_predicted_flow = quota_flow_solves(intra_delta);

    let _ = writeln!(json, "  \"intra_parallel\": {{");
    let _ = writeln!(json, "    \"components\": 1,");
    let _ = writeln!(json, "    \"nodes\": {},", problem.num_disks());
    let _ = writeln!(json, "    \"items\": {},", problem.num_items());
    hardware_threads_line(&mut json, threads);
    let _ = writeln!(json, "    \"delta_prime\": {intra_delta},");
    let _ = writeln!(
        json,
        "    \"predicted_flow_solves\": {intra_predicted_flow},"
    );
    let _ = writeln!(json, "    \"warm_start_hits\": {intra_warm},");
    let _ = writeln!(json, "    \"pool_tasks\": {},", {
        intra_counter(dmig_obs::keys::POOL_TASKS)
    });
    let _ = writeln!(json, "    \"pool_steals\": {},", {
        intra_counter(dmig_obs::keys::POOL_STEALS)
    });
    let _ = writeln!(json, "    \"scratch_reuses\": {},", {
        intra_counter(dmig_obs::keys::SCRATCH_REUSES)
    });
    let intra_1 = intra_ms[0].expect("1-thread timing always runs");
    opt_ms_line(&mut json, "solve_1_thread_ms", intra_ms[0], false);
    opt_ms_line(&mut json, "solve_2_threads_ms", intra_ms[1], false);
    opt_ms_line(&mut json, "solve_4_threads_ms", intra_ms[2], false);
    speedup_line(
        &mut json,
        "thread_speedup_2",
        intra_1,
        intra_ms[1].unwrap_or(f64::NAN),
        threads >= 2,
        false,
    );
    speedup_line(
        &mut json,
        "thread_speedup_4",
        intra_1,
        intra_ms[2].unwrap_or(f64::NAN),
        threads >= 4,
        false,
    );
    skipped_reason_line(&mut json, threads, 4, "multi-thread solve timings", true);
    let _ = writeln!(json, "  }},");

    // Part 2c: chunked Euler orientation vs serial on a padding-free
    // giant even multigraph — the serial tail the pairing-cycle
    // decomposition parallelizes. The full-size instance is the 1e6-edge
    // single component where the old Hierholzer walk pinned one core;
    // `--smoke` shrinks it so CI exercises the same code path cheaply.
    let (go_nodes, go_edges) = if smoke {
        (2_000, 20_000)
    } else {
        (50_000, 1_000_000)
    };
    let giant = giant_even_multigraph(go_nodes, go_edges, 0xE6);
    let mut orient_scratch = OrientScratch::default();

    // Byte-equality before timing: the orientation is a pure function of
    // the CSR, so every worker count must reproduce the serial output
    // exactly. `cycles` comes from the 1-worker pass — unlike `chunks` /
    // `stitches` it is a property of the graph, not of the race.
    let serial_orientation = euler_orientation(&giant).expect("even-degree multigraph orients");
    let mut euler_cycles = 0u64;
    for w in [1usize, 2, 4] {
        let (par, stats) = euler_orientation_parallel(&giant, w, &mut orient_scratch)
            .expect("even-degree multigraph orients");
        assert_eq!(
            serial_orientation, par,
            "orientation must not depend on worker count"
        );
        if w == 1 {
            euler_cycles = stats.cycles;
        }
    }

    let serial_ms = time_ms(reps, || {
        euler_orientation(&giant)
            .expect("even-degree multigraph orients")
            .len() as u64
    });
    let mut chunked_ms: [Option<f64>; 3] = [None; 3];
    for (slot, w) in [1usize, 2, 4].into_iter().enumerate() {
        if threads >= w {
            chunked_ms[slot] = Some(time_ms(reps, || {
                euler_orientation_parallel(&giant, w, &mut orient_scratch)
                    .expect("even-degree multigraph orients")
                    .0
                    .len() as u64
            }));
        }
    }
    let chunked_1 = chunked_ms[0].expect("1-worker timing always runs");

    let _ = writeln!(json, "  \"euler_parallel\": {{");
    let _ = writeln!(json, "    \"nodes\": {go_nodes},");
    let _ = writeln!(json, "    \"edges\": {go_edges},");
    hardware_threads_line(&mut json, threads);
    let _ = writeln!(json, "    \"cycles\": {euler_cycles},");
    let _ = writeln!(json, "    \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(
        json,
        "    \"serial_medges_per_s\": {:.3},",
        go_edges as f64 / 1e3 / serial_ms.max(1e-6)
    );
    opt_ms_line(&mut json, "chunked_1_thread_ms", chunked_ms[0], false);
    opt_ms_line(&mut json, "chunked_2_threads_ms", chunked_ms[1], false);
    opt_ms_line(&mut json, "chunked_4_threads_ms", chunked_ms[2], false);
    speedup_line(
        &mut json,
        "thread_speedup_2",
        chunked_1,
        chunked_ms[1].unwrap_or(f64::NAN),
        threads >= 2,
        false,
    );
    speedup_line(
        &mut json,
        "thread_speedup_4",
        chunked_1,
        chunked_ms[2].unwrap_or(f64::NAN),
        threads >= 4,
        false,
    );
    skipped_reason_line(
        &mut json,
        threads,
        4,
        "multi-thread orientation timings",
        true,
    );
    let _ = writeln!(json, "  }},");

    // Part 2d: the sharded solve pipeline on a clustered giant — one
    // connected component far heavier than the cell budget, so the
    // graph-cut partitioner must actually cut. The clustered shape (dense
    // blocks on a sparse ring) is what the partitioner is designed for:
    // cuts land on the block seams, keeping the boundary pass tiny. The
    // full run uses the canonical cell budget; `--smoke` shrinks both the
    // instance and the budget so CI exercises the same cut-and-reconcile
    // path cheaply.
    let (sh_nodes, sh_edges, sh_clusters, sh_budget) = if smoke {
        (2_000, 40_000, 16, 8_192)
    } else {
        (
            50_000,
            1_000_000,
            64,
            dmig_graph::partition::DEFAULT_MAX_CELL_EDGES,
        )
    };
    let problem = clustered_giant(sh_nodes, sh_edges, sh_clusters, 0x5A);
    let shard_delta = problem.delta_prime();
    let shard_cfg = |shards| ShardConfig {
        shards,
        max_cell_edges: sh_budget,
    };

    // Byte-equality spot-check before timing: the sharded schedule is a
    // function of the cells alone, so every (shards × threads)
    // combination must reproduce it exactly.
    let (shard_base, shard_report) =
        solve_sharded(&problem, shard_cfg(4), 1, solve_even).expect("even instance solves");
    for shards in [1usize, 2, 4] {
        for t in [1usize, 4] {
            let (s, _) = solve_sharded(&problem, shard_cfg(shards), t, solve_even).expect("solves");
            assert_eq!(
                shard_base, s,
                "schedule must not depend on shards={shards} threads={t}"
            );
        }
    }

    let unsharded_ms = time_ms(reps, || {
        solve_split(&problem, threads, solve_even)
            .expect("even instance solves")
            .makespan() as u64
    });
    let sharded1_ms = time_ms(reps, || {
        solve_sharded(&problem, shard_cfg(4), 1, solve_even)
            .expect("even instance solves")
            .0
            .makespan() as u64
    });
    let shardedn_ms = (threads >= 2).then(|| {
        time_ms(reps, || {
            solve_sharded(&problem, shard_cfg(4), threads, solve_even)
                .expect("even instance solves")
                .0
                .makespan() as u64
        })
    });

    let _ = writeln!(json, "  \"shard_parallel\": {{");
    let _ = writeln!(json, "    \"nodes\": {sh_nodes},");
    let _ = writeln!(json, "    \"edges\": {sh_edges},");
    let _ = writeln!(json, "    \"clusters\": {sh_clusters},");
    let _ = writeln!(json, "    \"max_cell_edges\": {sh_budget},");
    hardware_threads_line(&mut json, threads);
    let _ = writeln!(json, "    \"shards\": {},", shard_report.shards);
    let _ = writeln!(json, "    \"cells\": {},", shard_report.cells);
    let _ = writeln!(json, "    \"cut_edges\": {},", shard_report.cut_edges);
    let _ = writeln!(
        json,
        "    \"cut_fraction\": {:.6},",
        shard_report.cut_fraction()
    );
    let _ = writeln!(
        json,
        "    \"boundary_rounds\": {},",
        shard_report.boundary_rounds
    );
    let _ = writeln!(json, "    \"delta_prime\": {shard_delta},");
    let _ = writeln!(json, "    \"makespan\": {},", shard_base.makespan());
    let _ = writeln!(json, "    \"round_gap\": {},", shard_report.round_gap);
    let _ = writeln!(json, "    \"gap_bound\": {},", shard_report.gap_bound);
    let _ = writeln!(json, "    \"gap_asserted\": {},", shard_report.gap_asserted);
    let _ = writeln!(json, "    \"reconcile_ms\": {},", shard_report.reconcile_ms);
    let per_shard: Vec<String> = shard_report
        .per_shard_edges
        .iter()
        .map(ToString::to_string)
        .collect();
    let _ = writeln!(json, "    \"per_shard_edges\": [{}],", per_shard.join(", "));
    let _ = writeln!(json, "    \"unsharded_ms\": {unsharded_ms:.3},");
    let _ = writeln!(json, "    \"sharded_1_thread_ms\": {sharded1_ms:.3},");
    opt_ms_line(&mut json, "sharded_n_threads_ms", shardedn_ms, false);
    // Like the component split, sharding pays off at any core count:
    // Dinic's cost is superlinear, so K bounded cells beat one giant
    // network even solved sequentially. Thread speedup on top of that
    // needs actual parallel hardware.
    let _ = writeln!(
        json,
        "    \"speedup_vs_unsharded\": {:.2},",
        unsharded_ms / shardedn_ms.unwrap_or(sharded1_ms).max(1e-6)
    );
    speedup_line(
        &mut json,
        "thread_speedup",
        sharded1_ms,
        shardedn_ms.unwrap_or(f64::NAN),
        threads >= 4,
        false,
    );
    skipped_reason_line(&mut json, threads, 4, "multi-thread sharded timings", true);
    let _ = writeln!(json, "  }},");

    // Part 3: observability. Machine-checked counter cross-check — the
    // quota recursion of Theorem 4.1 performs exactly one flow solve per
    // odd level and one Euler split per even level, so an instrumented
    // solve_even must report precisely the closed-form counts — plus the
    // recorder's measured cost, enabled and disabled.
    let problem = even_instance(if smoke { 100 } else { 1_000 }, 0xD16);
    let delta_prime = problem.delta_prime();
    let disabled_ms = time_ms(reps, || {
        solve_even(&problem)
            .expect("even instance solves")
            .makespan() as u64
    });
    dmig_obs::reset();
    dmig_obs::set_enabled(true);
    let enabled_ms = time_ms(reps, || {
        solve_even(&problem)
            .expect("even instance solves")
            .makespan() as u64
    });
    dmig_obs::set_enabled(false);
    let snap = dmig_obs::snapshot();
    dmig_obs::reset();
    let counter = |key: &str| snap.counters.get(key).copied().unwrap_or(0);
    let flow_solves = counter(dmig_obs::keys::FLOW_SOLVES);
    let euler_splits = counter(dmig_obs::keys::EULER_SPLITS);
    // Informational only — the gate re-derives these from
    // `quota_flow_solves`/`quota_euler_splits` rules and fails the run if
    // the measured counters drift from the Theorem 4.1 closed forms.
    let predicted_flow = reps as u64 * quota_flow_solves(delta_prime);
    let predicted_splits = reps as u64 * quota_euler_splits(delta_prime);

    // Marginal cost of the background sampling profiler on an already
    // instrumented run (measured after the counter snapshot above so the
    // cross-checked totals stay untouched). The sampler only reads open
    // spans under the recorder's span lock, so this is the contention it
    // adds — gated at <= 2% by ci-rules.toml.
    dmig_obs::reset();
    dmig_obs::set_enabled(true);
    let sampler = dmig_obs::sampler::start(dmig_obs::sampler::DEFAULT_INTERVAL);
    let sampler_ms = time_ms(reps, || {
        solve_even(&problem)
            .expect("even instance solves")
            .makespan() as u64
    });
    sampler.stop();
    dmig_obs::set_enabled(false);
    dmig_obs::reset();

    // Direct cost of the disabled fast path: one facade call.
    let noop_iters: u64 = if smoke { 1_000_000 } else { 10_000_000 };
    let start = Instant::now();
    for _ in 0..noop_iters {
        dmig_obs::counter_add(dmig_obs::keys::FLOW_SOLVES, 0);
    }
    let noop_ns = start.elapsed().as_nanos() as f64 / noop_iters as f64;

    let _ = writeln!(json, "  \"observability\": {{");
    let _ = writeln!(json, "    \"delta_prime\": {delta_prime},");
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"flow_solves\": {flow_solves},");
    let _ = writeln!(json, "    \"predicted_flow_solves\": {predicted_flow},");
    let _ = writeln!(json, "    \"euler_splits\": {euler_splits},");
    let _ = writeln!(json, "    \"predicted_euler_splits\": {predicted_splits},");
    let _ = writeln!(json, "    \"warm_start_hits\": {},", {
        counter(dmig_obs::keys::WARM_START_HITS)
    });
    let _ = writeln!(json, "    \"spans_recorded\": {},", snap.spans.len());
    let _ = writeln!(json, "    \"disabled_ms\": {disabled_ms:.3},");
    let _ = writeln!(json, "    \"enabled_ms\": {enabled_ms:.3},");
    let _ = writeln!(
        json,
        "    \"enabled_overhead_pct\": {:.2},",
        (enabled_ms / disabled_ms.max(1e-6) - 1.0) * 100.0
    );
    let _ = writeln!(json, "    \"sampler_ms\": {sampler_ms:.3},");
    let _ = writeln!(
        json,
        "    \"sampler_overhead_pct\": {:.2},",
        (sampler_ms / enabled_ms.max(1e-6) - 1.0) * 100.0
    );
    let _ = writeln!(json, "    \"disabled_noop_ns_per_call\": {noop_ns:.2}");
    let _ = writeln!(json, "  }},");

    // Part 4: makespan attribution on the paper's E7 bottleneck shape — a
    // star whose hub carries every item and the lowest bandwidth. The
    // attribution engine must name the hub as the LB1 argmax; the gate
    // cross-checks `lb1_disk` against `expected_lb1_disk`, which is
    // computed here independently from the raw degrees and capacities.
    let (leaves, mult) = if smoke { (4usize, 2usize) } else { (16, 8) };
    let star = dmig_graph::builder::star_multigraph(leaves, mult);
    let problem = MigrationProblem::uniform(star, 1).expect("star instance is valid");
    let schedule = dmig_core::solver::AutoSolver
        .solve(&problem)
        .expect("star instance solves");
    let mut bandwidths = vec![1.0f64; problem.num_disks()];
    bandwidths[0] = 0.25; // the hub is also the slowest disk
    let cluster = dmig_sim::Cluster::from_bandwidths(bandwidths);
    let rounds = dmig_sim::engine::round_profile(&problem, &schedule, &cluster)
        .expect("planned schedule replays");
    let g = problem.graph();
    let caps = problem.capacities();
    let disks: Vec<dmig_obs::explain::DiskLoad> = g
        .nodes()
        .map(|v| dmig_obs::explain::DiskLoad {
            degree: g.degree(v) as u64,
            capacity: u64::from(caps.get(v)),
        })
        .collect();
    let expected_lb1_disk = disks
        .iter()
        .enumerate()
        .max_by_key(|(_, d)| d.ratio())
        .map_or(0, |(v, _)| v);
    let witness = dmig_core::bounds::lb2_witness(&problem).map(|w| dmig_obs::explain::WitnessSet {
        nodes: w.nodes.iter().map(|n| n.index()).collect(),
        internal_edges: w.internal_edges,
        capacity_sum: w.capacity_sum,
        bound: w.bound as u64,
    });
    let input = dmig_obs::explain::ExplainInput {
        disks,
        witness,
        rounds,
    };
    let attribute_ms = time_ms(reps, || {
        dmig_obs::explain::attribute(&input).chain.len() as u64
    });
    let attr = dmig_obs::explain::attribute(&input);
    let top = attr.ranking.first();

    let _ = writeln!(json, "  \"attribution\": {{");
    let _ = writeln!(json, "    \"nodes\": {},", problem.num_disks());
    let _ = writeln!(json, "    \"items\": {},", problem.num_items());
    let _ = writeln!(json, "    \"lb1\": {},", attr.lb1);
    match attr.lb1_disk {
        Some(v) => {
            let _ = writeln!(json, "    \"lb1_disk\": {v},");
        }
        None => {
            let _ = writeln!(json, "    \"lb1_disk\": null,");
        }
    }
    let _ = writeln!(json, "    \"expected_lb1_disk\": {expected_lb1_disk},");
    let _ = writeln!(json, "    \"lb2\": {},", attr.lb2);
    let _ = writeln!(json, "    \"binding\": \"{}\",", attr.binding.tag());
    let _ = writeln!(json, "    \"binding_bound\": {},", attr.binding_bound);
    let _ = writeln!(json, "    \"rounds\": {},", attr.chain.len());
    let _ = writeln!(json, "    \"total_time\": {:.6},", attr.total_time);
    let _ = writeln!(
        json,
        "    \"top_disk\": {},",
        top.map_or(-1i64, |r| r.disk as i64)
    );
    let _ = writeln!(
        json,
        "    \"top_disk_utilization\": {:.6},",
        top.map_or(0.0, |r| r.utilization)
    );
    let _ = writeln!(json, "    \"attribute_ms\": {attribute_ms:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("warning: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // The flattened metrics (same view `dmig obs gate` takes of the file)
    // feed both the history entry and the gate.
    let metrics = dmig_obs::Value::parse(&json)
        .expect("perf_report emits well-formed JSON")
        .flatten();

    // Exactly one history entry per run, appended before the gate so a
    // regressed run still leaves its record behind.
    let config = format!(
        "perf_report smoke={smoke} sizes={sizes:?} components={components} \
         nodes_per={nodes_per} extra={extra} euler={go_nodes}x{go_edges} \
         shard={sh_nodes}x{sh_edges}@{sh_budget} reps={reps}"
    );
    let meta = dmig_obs::history::RunMeta {
        git_rev: dmig_obs::history::detect_git_rev(),
        threads: Some(threads as u64),
        hardware_threads: Some(threads as u64),
        instance: Some(dmig_obs::history::fingerprint(&config)),
        wall_ms: Some(run_started.elapsed().as_secs_f64() * 1e3),
        source: "perf_report".to_string(),
    };
    match dmig_obs::history::append(history_path, &meta, &metrics) {
        Ok(()) => eprintln!("appended history entry to {history_path}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    // Perf gate: declarative replacement for the hardcoded asserts. The
    // repo-root copy is the fallback so the binary also works when run
    // from another working directory.
    let rules_text = std::fs::read_to_string(rules_path).or_else(|_| {
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci-rules.toml"))
    });
    let rules_text = match rules_text {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read gate rules {rules_path}: {e}");
            std::process::exit(1);
        }
    };
    let rules = match dmig_obs::gate::parse_rules(&rules_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {rules_path}: {e}");
            std::process::exit(1);
        }
    };
    let mut funcs = dmig_obs::gate::FunctionRegistry::default();
    funcs.register("quota_flow_solves", 1, |a| {
        quota_flow_solves(a[0].max(0.0) as usize) as f64
    });
    funcs.register("quota_euler_splits", 1, |a| {
        quota_euler_splits(a[0].max(0.0) as usize) as f64
    });
    let report = dmig_obs::gate::evaluate(&rules, &metrics, &funcs);
    eprint!("{}", report.render());
    if report.failed() {
        eprintln!("error: perf gate failed ({rules_path})");
        std::process::exit(1);
    }
}
