//! E11 — ablation of the general solver's design knobs (DESIGN.md §3.2):
//! how much do the alternating-walk flips and the orbit-style shift moves
//! contribute, and how deep do shifts need to go?
//!
//! Knobs: `shift_depth ∈ {0, 2, 6, 12}` and `shift_fanout ∈ {1, 4}`.
//! With depth 0 the solver has only direct coloring + walks; escalations
//! then reveal how much work the shifts were doing.

use dmig_bench::{table::Table, timed};
use dmig_core::general::{solve_general_with, EdgeOrder, GeneralConfig};
use dmig_core::{bounds, Capacities, MigrationProblem};
use dmig_graph::builder::{complete_multigraph, cycle_multigraph};
use dmig_workloads::random;

/// Tight instances: degrees saturate `c_v · LB1`, so direct coloring runs
/// out of mutually-free colors and the recoloring moves must work.
/// (Loose random instances — E4's corpus — are solved by direct coloring
/// alone; the ablation is only informative under pressure.)
fn tight_suite() -> Vec<MigrationProblem> {
    let mut suite = Vec::new();
    // Odd complete multigraphs at c = 1: classic class-2 pressure.
    for (n, m) in [(5usize, 1usize), (5, 3), (7, 2), (9, 1), (7, 4)] {
        suite.push(MigrationProblem::uniform(complete_multigraph(n, m), 1).expect("valid"));
    }
    // Odd cycles with multiplicity equal to capacity: LB = 2, tight.
    for (n, c) in [(5usize, 3u32), (7, 2), (9, 4)] {
        suite.push(MigrationProblem::uniform(cycle_multigraph(n, c as usize), c).expect("valid"));
    }
    // Near-regular random graphs at c = 1 (edge-coloring regime).
    for seed in 0..4u64 {
        let n = 10 + 2 * seed as usize;
        let g = random::uniform_multigraph(n, n * 4, seed + 77);
        suite.push(MigrationProblem::new(g, Capacities::uniform(n, 1)).expect("valid"));
    }
    suite
}

fn main() {
    println!("E11: general-solver ablation (shift depth × fanout) on tight instances\n");
    let mut t = Table::new(&[
        "depth",
        "fanout",
        "mean excess",
        "max excess",
        "walks",
        "shifts",
        "escalations",
        "ms",
    ]);
    let suite = tight_suite();

    for &(depth, fanout) in &[(0usize, 1usize), (2, 1), (2, 4), (6, 4), (12, 4)] {
        let config = GeneralConfig {
            shift_depth: depth,
            shift_fanout: fanout,
            ..Default::default()
        };
        let mut excess = Vec::new();
        let mut walks = 0usize;
        let mut shifts = 0usize;
        let mut escalations = 0usize;
        let mut total_ms = 0.0;
        for p in &suite {
            let lb = bounds::lower_bound(p);
            let (report, ms) = timed(|| solve_general_with(p, &config));
            report.schedule.validate(p).expect("feasible");
            excess.push((report.schedule.makespan() - lb) as f64);
            walks += report.stats.walk_flips;
            shifts += report.stats.shifts;
            escalations += report.stats.escalations;
            total_ms += ms;
        }
        let mean = excess.iter().sum::<f64>() / excess.len() as f64;
        let max = excess.iter().fold(0.0f64, |a, &b| a.max(b));
        t.row_owned(vec![
            depth.to_string(),
            fanout.to_string(),
            format!("{mean:.2}"),
            format!("{max:.0}"),
            walks.to_string(),
            shifts.to_string(),
            escalations.to_string(),
            format!("{total_ms:.1}"),
        ]);
    }
    println!("{}", t.render());

    // Edge-order ablation at the default configuration.
    let mut t2 = Table::new(&["edge order", "mean excess", "max excess", "escalations"]);
    for (label, order) in [
        ("input", EdgeOrder::Input),
        ("heavy-first", EdgeOrder::HeavyFirst),
    ] {
        let config = GeneralConfig {
            edge_order: order,
            ..Default::default()
        };
        let mut excess = Vec::new();
        let mut escalations = 0usize;
        for p in &suite {
            let lb = bounds::lower_bound(p);
            let report = solve_general_with(p, &config);
            report.schedule.validate(p).expect("feasible");
            excess.push((report.schedule.makespan() - lb) as f64);
            escalations += report.stats.escalations;
        }
        t2.row_owned(vec![
            label.to_string(),
            format!("{:.2}", excess.iter().sum::<f64>() / excess.len() as f64),
            format!("{:.0}", excess.iter().fold(0.0f64, |a, &b| a.max(b))),
            escalations.to_string(),
        ]);
    }
    println!("{}", t2.render());
    println!("reading: walks alone already close most of the gap (depth 0); shift");
    println!("depth 2 removes the remaining escalations; deeper search buys nothing");
    println!("but costs an order of magnitude in time — hence the default depth 4");
    println!(
        "with a {}-unit per-edge work budget",
        dmig_core::general::GeneralConfig::default().work_budget
    );
}
