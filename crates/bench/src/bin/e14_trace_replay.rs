//! E14 — trace-driven end-to-end replay: from an item trace with sizes,
//! through planning, to simulated wall-clock under three execution
//! engines.
//!
//! The experimental-study line of related work (Anderson et al., WAE '01)
//! evaluates migration algorithms on item traces rather than synthetic
//! graphs; this harness closes that loop for the reproduction: a synthetic
//! trace (skewed placements, variable item sizes) is written to the trace
//! format, parsed back, planned by the capacity-aware and homogeneous
//! schedulers, and executed under (a) the paper's round-barrier model,
//! (b) work-conserving sharing, and (c) a mid-migration disk slowdown.

use dmig_bench::table::Table;
use dmig_core::solver::{GeneralSolver, HomogeneousSolver, Solver};
use dmig_core::{bounds, MigrationProblem};
use dmig_graph::NodeId;
use dmig_sim::events::{simulate_with_events, BandwidthEvent};
use dmig_sim::{
    engine::{simulate_adaptive, simulate_rounds},
    Cluster,
};
use dmig_workloads::trace::{parse_trace, to_trace_text, Trace};
use dmig_workloads::{capacities, random};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn synthetic_trace(n: usize, items: usize, seed: u64) -> Trace {
    let graph = random::power_law_multigraph(n, items, 1.2, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let sizes: Vec<f64> = (0..items).map(|_| 0.25 + rng.gen::<f64>() * 1.75).collect();
    Trace { graph, sizes }
}

fn main() {
    println!("E14: trace replay — plan and execute an item trace with sizes\n");
    let mut t = Table::new(&[
        "trace",
        "LB",
        "solver",
        "rounds",
        "barrier",
        "work-conserving",
        "with slowdown",
    ]);
    for &(n, items, seed) in &[(16usize, 200usize, 1u64), (32, 600, 2), (48, 1200, 3)] {
        // Round-trip through the on-disk format, as a real deployment would.
        let trace = synthetic_trace(n, items, seed);
        let text = to_trace_text(&trace);
        let trace = parse_trace(&text).expect("self-emitted trace parses");
        assert_eq!(trace.graph.num_edges(), items);

        let caps = capacities::mixed_parity(trace.graph.num_nodes(), 1, 5, seed);
        let nn = trace.graph.num_nodes();
        let p = MigrationProblem::new(trace.graph, caps).expect("valid");
        let lb = bounds::lower_bound(&p);
        let cluster = Cluster::uniform(nn, 1.0).with_item_sizes(trace.sizes.clone());
        // Disk 0 (the power-law hot spot) degrades halfway through.
        let events = [BandwidthEvent {
            time: lb as f64,
            disk: NodeId::new(0),
            bandwidth: 0.5,
        }];

        for solver in [&GeneralSolver::default() as &dyn Solver, &HomogeneousSolver] {
            let s = solver.solve(&p).expect("infallible");
            s.validate(&p).expect("feasible");
            let barrier = simulate_rounds(&p, &s, &cluster).expect("ok").total_time;
            let adaptive = simulate_adaptive(&p, &s, &cluster).expect("ok").total_time;
            let degraded = simulate_with_events(&p, &s, &cluster, &events)
                .expect("ok")
                .total_time;
            assert!(adaptive <= barrier + 1e-9);
            assert!(degraded >= adaptive - 1e-9);
            t.row_owned(vec![
                format!("n={nn} items={items}"),
                lb.to_string(),
                solver.name().to_string(),
                s.makespan().to_string(),
                format!("{barrier:.0}"),
                format!("{adaptive:.0}"),
                format!("{degraded:.0}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("finding: with *unit* sizes minimizing rounds minimizes time (E2); with");
    println!("variable sizes the barrier model penalizes wide rounds (a round waits on");
    println!("its largest item at split bandwidth), so the homogeneous plan can win");
    println!("wall-clock despite needing far more rounds — work-conserving execution");
    println!("recovers most of the gap for the capacity-aware plan. The paper's model");
    println!("(unit items) is exactly the regime where round-count = time.");
}
