//! E12 — certified optimality gaps: on instances small enough for the
//! branch-and-bound exact solver, compare every heuristic against true
//! OPT (not just the lower bound).
//!
//! This closes the loop the paper leaves open (OPT is NP-hard): the
//! measured `rounds − LB` gaps of E4/E5 could in principle hide a slack
//! lower bound; here OPT is certified.

use dmig_bench::table::Table;
use dmig_core::exact::solve_exact;
use dmig_core::solver::{GeneralSolver, GreedySolver, SaiaSolver, Solver};
use dmig_core::{bounds, Capacities, MigrationProblem};
use dmig_graph::Multigraph;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    println!("E12: certified optimality gaps on exactly-solved instances\n");
    let mut t = Table::new(&[
        "instance", "LB", "OPT", "general", "saia", "greedy", "LB=OPT",
    ]);
    let mut rng = StdRng::seed_from_u64(0x0127);
    let mut stats = (0usize, 0usize, 0usize, 0usize); // (cases, lb_tight, general_opt, saia_opt)
    let mut made = 0usize;
    while made < 20 {
        let n = rng.gen_range(3..7);
        let mut g = Multigraph::with_nodes(n);
        for _ in 0..rng.gen_range(3..15) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u.into(), v.into());
            }
        }
        if g.num_edges() < 3 {
            continue;
        }
        let caps: Capacities = (0..n).map(|_| rng.gen_range(1..4u32)).collect();
        let p = MigrationProblem::new(g, caps).expect("valid");
        let exact = solve_exact(&p).expect("small instance");
        exact.schedule.validate(&p).expect("feasible");
        let lb = bounds::lower_bound(&p);
        let general = GeneralSolver::default().solve(&p).expect("infallible");
        let saia = SaiaSolver.solve(&p).expect("infallible");
        let greedy = GreedySolver.solve(&p).expect("infallible");
        assert!(general.makespan() >= exact.optimum);

        stats.0 += 1;
        stats.1 += usize::from(lb == exact.optimum);
        stats.2 += usize::from(general.makespan() == exact.optimum);
        stats.3 += usize::from(saia.makespan() == exact.optimum);
        t.row_owned(vec![
            format!("n={} m={}", p.num_disks(), p.num_items()),
            lb.to_string(),
            exact.optimum.to_string(),
            general.makespan().to_string(),
            saia.makespan().to_string(),
            greedy.makespan().to_string(),
            if lb == exact.optimum { "yes" } else { "no" }.to_string(),
        ]);
        made += 1;
    }
    println!("{}", t.render());
    println!(
        "LB tight on {}/{} instances; general solver hits OPT on {}/{}; saia on {}/{}",
        stats.1, stats.0, stats.2, stats.0, stats.3, stats.0
    );
    assert!(
        stats.2 * 10 >= stats.0 * 8,
        "general solver should hit OPT on ≥80% of cases"
    );
}
