//! E10 — Phase 2 of the general algorithm (§V-C3) and the residue-strategy
//! ablation.
//!
//! Part A checks Lemma 5.8's constructive content on sparse simple graphs:
//! node-splitting + Vizing colors `G_0` with at most
//! `max_v ⌈d_v(G_0)/c_v⌉ + 1` colors.
//!
//! Part B ablates the general solver's residue strategy: escalating one
//! color at a time (the witness case) against finishing with a one-shot
//! Phase-2 coloring. Escalation should win or tie on schedule length —
//! the paper uses Phase 2 for its *analysis*, not for schedule quality.

use dmig_bench::table::Table;
use dmig_color::misra_gries::misra_gries_coloring;
use dmig_core::general::{solve_general_with, GeneralConfig, ResidueStrategy};
use dmig_core::split::split_graph_round_robin;
use dmig_core::{bounds, Capacities, MigrationProblem};
use dmig_graph::Multigraph;
use dmig_workloads::{capacities, random};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn sparse_simple_graph(n: usize, p: f64, seed: u64) -> Multigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Multigraph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u.into(), v.into());
            }
        }
    }
    g
}

fn main() {
    println!("E10a: Phase-2 coloring bound (Lemma 5.8) on sparse simple graphs\n");
    let mut ta = Table::new(&["n", "edges", "max ⌈d/c⌉", "colors", "bound", "ok"]);
    for &(n, prob) in &[(16usize, 0.15f64), (32, 0.08), (64, 0.05), (128, 0.03)] {
        for seed in 0..3u64 {
            let g = sparse_simple_graph(n, prob, seed + 100);
            let caps: Capacities = capacities::mixed_parity(n, 1, 3, seed);
            let split = split_graph_round_robin(&g, &caps);
            assert!(
                split.graph.is_simple(),
                "split of a simple graph stays simple"
            );
            let coloring = misra_gries_coloring(&split.graph);
            coloring.validate_proper(&split.graph).expect("proper");
            let target = split.max_degree();
            let used = coloring.num_colors() as usize;
            let ok = used <= target + 1;
            ta.row_owned(vec![
                n.to_string(),
                g.num_edges().to_string(),
                target.to_string(),
                used.to_string(),
                (target + 1).to_string(),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
            assert!(ok, "Lemma 5.8 bound violated");
        }
    }
    println!("{}", ta.render());

    println!("E10b: residue-strategy ablation (escalate vs split-color)\n");
    let mut tb = Table::new(&["case", "LB", "escalate", "split-color", "winner"]);
    for seed in 0..6u64 {
        let n = 12 + 4 * seed as usize;
        let m = 80 * (seed as usize + 1);
        let g = random::uniform_multigraph(n, m, seed * 3 + 1);
        let caps = capacities::mixed_parity(n, 1, 5, seed * 3 + 2);
        let p = MigrationProblem::new(g, caps).expect("valid");
        let lb = bounds::lower_bound(&p);
        let esc = solve_general_with(&p, &GeneralConfig::default());
        let phase2 = solve_general_with(
            &p,
            &GeneralConfig {
                residue_strategy: ResidueStrategy::SplitColor,
                ..Default::default()
            },
        );
        esc.schedule.validate(&p).expect("feasible");
        phase2.schedule.validate(&p).expect("feasible");
        let (a, b) = (esc.schedule.makespan(), phase2.schedule.makespan());
        tb.row_owned(vec![
            format!("random n={n} m={m}"),
            lb.to_string(),
            a.to_string(),
            b.to_string(),
            if a < b {
                "escalate"
            } else if a == b {
                "tie"
            } else {
                "split-color"
            }
            .to_string(),
        ]);
        assert!(a <= b, "escalation should never lose to one-shot phase 2");
    }
    println!("{}", tb.render());
}
